"""Simulator configuration and machine factories.

Before this module existed every experiment, benchmark and example
built its machines inline (``COMMachine()`` here, ``FithMachine(
trace=True)`` there), so changing a structure size for a study meant
hunting down a dozen call sites.  :class:`SimConfig` is the single
description of a simulated machine -- the paper's structure sizes are
its defaults -- and :func:`make_com` / :func:`make_fith` are the only
constructors the rest of the repository should use.

``SimConfig`` is a frozen dataclass: configurations hash, compare and
``dataclasses.replace`` cleanly, which the parallel experiment engine
relies on (a config travels to worker processes by value).

Quickstart::

    from repro.config import SimConfig, make_com, make_fith

    machine = make_com()                       # the paper's COM
    small = make_com(itlb_size=8, itlb_associativity=1)
    tracer = make_fith(trace=True)             # section-5 tracing Fith

    study = SimConfig(icache_size=1024).replace(icache_associativity=4)
    machine = study.com()
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.machine import COMMachine
from repro.fith.interp import FithMachine


@dataclass(frozen=True)
class SimConfig:
    """One simulated machine, by value.

    The fields mirror the paper's hardware structures: a 36-bit
    floating-point address, a 512-entry 2-way ITLB (figure 10's
    operating point), a 4096-entry 2-way instruction cache (figure
    11's), and a 32-block context cache (section 2.3).  ``trace``
    only affects the Fith machine (the COM records its trace through
    the profile instead); ``predecode`` selects the PR-1 fast path
    and never changes observable results.
    """

    address_bits: int = 36
    itlb_size: int = 512
    itlb_associativity: Union[int, str] = 2
    icache_size: int = 4096
    icache_associativity: Union[int, str] = 2
    context_blocks: int = 32
    context_pool_limit: Optional[int] = None
    predecode: bool = True
    trace: bool = False

    def replace(self, **overrides) -> "SimConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **overrides)

    def com(self, *, cycle_params=None, hierarchy=None) -> COMMachine:
        """Build a COM functional simulator from this config.

        ``cycle_params`` and ``hierarchy`` carry live objects (cost
        tables, a shared memory hierarchy) and therefore stay
        per-call arguments rather than config fields.
        """
        return COMMachine(
            address_bits=self.address_bits,
            itlb_size=self.itlb_size,
            itlb_associativity=self.itlb_associativity,
            icache_size=self.icache_size,
            icache_associativity=self.icache_associativity,
            context_blocks=self.context_blocks,
            context_pool_limit=self.context_pool_limit,
            predecode=self.predecode,
            cycle_params=cycle_params,
            hierarchy=hierarchy,
        )

    def fith(self) -> FithMachine:
        """Build a Fith interpreter from this config."""
        return FithMachine(trace=self.trace)


#: The paper's machine: every structure at its published size.
DEFAULT_CONFIG = SimConfig()


def make_com(config: Optional[SimConfig] = None, *, cycle_params=None,
             hierarchy=None, **overrides) -> COMMachine:
    """Build a COM machine; keyword overrides patch the config."""
    base = config or DEFAULT_CONFIG
    if overrides:
        base = base.replace(**overrides)
    return base.com(cycle_params=cycle_params, hierarchy=hierarchy)


def make_fith(config: Optional[SimConfig] = None,
              **overrides) -> FithMachine:
    """Build a Fith interpreter; keyword overrides patch the config."""
    base = config or DEFAULT_CONFIG
    if overrides:
        base = base.replace(**overrides)
    return base.fith()
