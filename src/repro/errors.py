"""Exception hierarchy for the COM reproduction.

The paper's machine signals *traps* for events that must be handled by
system software (bounds violations, segment aliasing, ITLB double
misses, free-list exhaustion).  We model each trap as an exception so
that simulator clients can either handle them (as the COM trap routines
would) or let them propagate as hard errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class TrapError(ReproError):
    """Base class for conditions the COM would raise as a hardware trap."""


class BoundsTrap(TrapError):
    """A segment access fell outside the segment's length.

    Carries enough context for the alias-forwarding trap handler of
    section 2.2 to decide whether the access should be retried through
    a forwarded (grown) segment.
    """

    def __init__(self, message: str, *, segment=None, offset=None, length=None):
        super().__init__(message)
        self.segment = segment
        self.offset = offset
        self.length = length


class AliasTrap(TrapError):
    """An access through a stale floating point address must be forwarded.

    Raised when an object has been grown out of the exponent range of an
    old pointer; the handler rewrites the pointer with the new segment
    name (paper section 2.2).
    """

    def __init__(self, message: str, *, old_address=None, new_address=None):
        super().__init__(message)
        self.old_address = old_address
        self.new_address = new_address


class SegmentFault(TrapError):
    """A virtual address named a segment with no descriptor."""


class ProtectionTrap(TrapError):
    """A capability did not permit the attempted access.

    Includes executing the conditionally privileged ``as`` instruction
    (tag forging) from unprivileged code.
    """


class DoesNotUnderstandTrap(TrapError):
    """Method lookup failed for (selector, receiver class) in every dictionary.

    The Smalltalk ``doesNotUnderstand:`` condition: an abstract
    instruction was executed whose opcode has no method for the operand
    classes, even after the full dictionary search on an ITLB miss.
    """

    def __init__(self, message: str, *, selector=None, receiver_class=None):
        super().__init__(message)
        self.selector = selector
        self.receiver_class = receiver_class


class FreeListExhausted(TrapError):
    """The context free list (or heap) had no block to allocate."""


class UninitializedAccess(TrapError):
    """A word with the *uninitialized* tag was used as an operand."""


class InvalidAddress(ReproError):
    """An address could not be encoded/decoded in the floating point format."""


class TagMismatch(ReproError):
    """A primitive operation was applied to words of the wrong tag.

    Note: in the COM this is *not* an error — it causes a method call.
    The simulator raises this only from internal function units that
    were invoked with operands the ITLB should never have routed there.
    """


class EncodingError(ReproError):
    """An instruction could not be encoded into or decoded from 32 bits."""


class AssemblerError(ReproError):
    """Source-level error in a COM assembly program."""


class CompileError(ReproError):
    """Source-level error in a Smalltalk-subset program."""


class FithError(ReproError):
    """Source-level or runtime error in a Fith program."""


class MachineHalted(ReproError):
    """The simulator was stepped after halting."""


class SimulationLimitExceeded(ReproError):
    """A watchdog instruction budget was exceeded (runaway program)."""
