"""Exception hierarchy for the COM reproduction.

The paper's machine signals *traps* for events that must be handled by
system software (bounds violations, segment aliasing, ITLB double
misses, free-list exhaustion).  We model each trap as an exception so
that simulator clients can either handle them (as the COM trap routines
would) or let them propagate as hard errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class TrapError(ReproError):
    """Base class for conditions the COM would raise as a hardware trap."""


class BoundsTrap(TrapError):
    """A segment access fell outside the segment's length.

    Carries enough context for the alias-forwarding trap handler of
    section 2.2 to decide whether the access should be retried through
    a forwarded (grown) segment.
    """

    def __init__(self, message: str, *, segment=None, offset=None, length=None):
        super().__init__(message)
        self.segment = segment
        self.offset = offset
        self.length = length


class AliasTrap(TrapError):
    """An access through a stale floating point address must be forwarded.

    Raised when an object has been grown out of the exponent range of an
    old pointer; the handler rewrites the pointer with the new segment
    name (paper section 2.2).
    """

    def __init__(self, message: str, *, old_address=None, new_address=None):
        super().__init__(message)
        self.old_address = old_address
        self.new_address = new_address


class SegmentFault(TrapError):
    """A virtual address named a segment with no descriptor."""


class ProtectionTrap(TrapError):
    """A capability did not permit the attempted access.

    Includes executing the conditionally privileged ``as`` instruction
    (tag forging) from unprivileged code.
    """


class DoesNotUnderstandTrap(TrapError):
    """Method lookup failed for (selector, receiver class) in every dictionary.

    The Smalltalk ``doesNotUnderstand:`` condition: an abstract
    instruction was executed whose opcode has no method for the operand
    classes, even after the full dictionary search on an ITLB miss.
    """

    def __init__(self, message: str, *, selector=None, receiver_class=None):
        super().__init__(message)
        self.selector = selector
        self.receiver_class = receiver_class


class FreeListExhausted(TrapError):
    """The context free list (or heap) had no block to allocate."""


class UninitializedAccess(TrapError):
    """A word with the *uninitialized* tag was used as an operand."""


class InvalidAddress(ReproError):
    """An address could not be encoded/decoded in the floating point format."""


class TagMismatch(ReproError):
    """A primitive operation was applied to words of the wrong tag.

    Note: in the COM this is *not* an error — it causes a method call.
    The simulator raises this only from internal function units that
    were invoked with operands the ITLB should never have routed there.
    """


class EncodingError(ReproError):
    """An instruction could not be encoded into or decoded from 32 bits."""


class AssemblerError(ReproError):
    """Source-level error in a COM assembly program."""


class CompileError(ReproError):
    """Source-level error in a Smalltalk-subset program."""


class FithError(ReproError):
    """Source-level or runtime error in a Fith program."""


class MachineHalted(ReproError):
    """The simulator was stepped after halting."""


class BackendUnavailable(ReproError):
    """An optional acceleration backend was requested but cannot run.

    Raised when ``engine="numpy"`` is forced while numpy is not
    importable in the environment.  The message says how to get the
    backend; ``engine="auto"`` never raises this -- it falls back to
    the pure-python single-pass engine instead.
    """


class SimulationLimitExceeded(ReproError):
    """A watchdog instruction budget was exceeded (runaway program)."""


# -- pipeline robustness taxonomy ------------------------------------
#
# Every failure the fault-tolerant experiment pipeline handles is
# typed, so the harness can count, log and route each path (retry vs
# quarantine vs degrade) instead of pattern-matching on messages.


class PipelineError(ReproError):
    """Base class for failures of the experiment pipeline itself
    (store integrity, worker management, retry budgets) as opposed to
    simulated-machine conditions."""


class PayloadFormatError(PipelineError, ValueError):
    """Bytes that are not a current trace-store payload at all.

    Raised for a wrong magic, an unknown (e.g. legacy v1/v2) format
    version, or a blob too short to carry a header.  The store treats
    this as a *clean miss* -- the file belongs to an older layout or
    another tool -- never as corruption.  Subclasses ``ValueError``
    for callers that predate the taxonomy.
    """


class StoreCorruption(PipelineError):
    """A recognized trace-store payload failed its integrity check.

    The payload carried the current magic and version but its length
    or a CRC32 block checksum does not match: the file was truncated
    or bit-flipped after it was written.  The store quarantines such
    files (they are evidence, not cache entries) instead of silently
    regenerating over them.
    """

    def __init__(self, message: str, *, path=None):
        super().__init__(message)
        self.path = path

    @property
    def reason(self) -> str:
        return str(self.args[0]) if self.args else "corrupt payload"


class MappedBufferClosed(PipelineError):
    """A memory-mapped trace was used after its store released the map.

    Raised by every accessor of a
    :class:`~repro.trace.columnar.MappedTrace` once it (or the store
    holding the mmap) has been closed.  Views handed out *before* the
    close stay valid -- they hold their own buffer reference, so the
    mapping is not unmapped under them -- and a trace that must
    outlive its store should be deep-copied first
    (:meth:`~repro.trace.columnar.Trace.copy`).  Typed so callers see
    a clean lifetime error instead of an interpreter crash or an
    opaque ``ValueError`` from a released memoryview.
    """


class TaskTimeout(PipelineError):
    """A pool task exceeded the per-task wall-clock budget.

    The worker may be hung; the harness abandons the pool (hung
    workers are terminated) and accounts the attempt against the
    task's retry budget.
    """

    def __init__(self, message: str, *, task=None, timeout=None):
        super().__init__(message)
        self.task = task
        self.timeout = timeout


class WorkerCrash(PipelineError):
    """A worker process died (or an injected crash fired serially).

    In pool mode this surfaces as ``BrokenProcessPool``; the harness
    re-submits unfinished tasks into a fresh pool.  In serial mode an
    injected ``crash`` fault raises this directly so the retry path
    stays testable without killing the parent process.
    """


class RetryExhausted(PipelineError):
    """A task failed on every attempt its retry budget allowed.

    Carries the last underlying error; the harness records a failure
    result for the experiment and lets the rest of the suite finish.
    """

    def __init__(self, message: str, *, task=None, attempts=None,
                 last_error=None):
        super().__init__(message)
        self.task = task
        self.attempts = attempts
        self.last_error = last_error


class FaultInjected(PipelineError):
    """Base class for errors raised by the fault-injection framework
    (:mod:`repro.faults`).  Real failures never subclass this, so
    tests can assert that an observed error was (or was not) one the
    chaos plan produced."""


class InjectedIOError(FaultInjected, OSError):
    """An injected IO failure; also an ``OSError`` so the injected
    path exercises exactly the handlers real IO errors would."""


class InjectedTaskError(FaultInjected):
    """An injected transient task failure (the retryable kind)."""
