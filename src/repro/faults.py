"""Seeded, deterministic fault injection for the experiment pipeline.

Production experiment clusters prove their fault tolerance by
*injecting* faults, not by waiting for them.  This module is the
reproduction's chaos layer: a registry of named **injection sites**
threaded through the store and the harness, and a :class:`FaultPlan`
(seed + per-site specs) that decides -- deterministically -- which
calls fail and how.

Sites
-----

========================  ==================================================
``store.read``            a trace payload was read from disk (key: filename)
``store.write``           a trace payload is about to be written (key: filename)
``store.manifest``        the library manifest/catalog was read (key: filename);
                          a torn manifest must rebuild, never fail a load
``store.result_cache``    a sweep result-cache entry was read (key: result
                          key); a corrupt entry must be a clean miss
``worker.start``          a pool worker process initialized
``worker.task``           a pool task is about to run (key: experiment id)
``serve.request``         a serve front-end request arrived (key: request
                          sequence number); payload kinds mangle the raw
                          request bytes, so corruption exercises the
                          bad-request path, never a crash
========================  ==================================================

Kinds
-----

``io-error``   raise :class:`~repro.errors.InjectedIOError` (an OSError)
``corrupt``    flip a deterministic bit in the payload bytes
``truncate``   drop the second half of the payload bytes
``crash``      kill the worker process (``os._exit``); raises
               :class:`~repro.errors.WorkerCrash` outside a worker so
               serial runs exercise the retry path without dying
``slow``       sleep ``delay`` seconds (a hung-worker stand-in)
``error``      raise :class:`~repro.errors.InjectedTaskError`
               (a transient, retryable task failure)

Determinism
-----------

Every decision is a pure function of ``(seed, epoch, site, key,
call-counter)`` -- a SHA-256 roll compared against the spec's
probability -- so the same seed reproduces the same injection
sequence regardless of worker scheduling.  The **epoch** is bumped by
the harness each time it builds a fresh pool (or degrades to serial),
so a deterministic fault does not re-fire identically forever on the
retry path; with the epoch fixed, replays are exact.

The active plan travels through the environment
(``REPRO_FAULTS`` / ``REPRO_FAULTS_EPOCH``): pool children inherit it
automatically, and :func:`install` keeps the parent's module state
and the environment in sync.  ``times`` caps fires per ``(site,
key)`` per process, which is what makes "crash once, then succeed"
plans terminate.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro import telemetry
from repro.errors import (FaultInjected, InjectedIOError,
                          InjectedTaskError, WorkerCrash)

#: The named injection sites the pipeline is instrumented with.
SITES = ("store.read", "store.write", "store.manifest",
         "store.result_cache", "worker.start", "worker.task",
         "serve.request")

#: Supported fault kinds (see module docstring).
KINDS = ("io-error", "corrupt", "truncate", "crash", "slow", "error")

#: Kinds that transform a byte payload instead of raising/sleeping.
_PAYLOAD_KINDS = ("corrupt", "truncate")

ENV_PLAN = "REPRO_FAULTS"
ENV_EPOCH = "REPRO_FAULTS_EPOCH"

#: Set (per process) by the pool initializer: ``crash`` faults only
#: ``os._exit`` inside a worker; in the parent they raise
#: :class:`WorkerCrash` so serial degradation stays survivable.
_IN_WORKER = False


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, what, how often."""

    site: str
    kind: str
    probability: float = 1.0
    #: Max fires per (site, key) per process; None = unlimited.
    times: Optional[int] = None
    #: Sleep length for ``slow`` faults, seconds.
    delay: float = 0.25

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {SITES}")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("fault times must be >= 0")
        if self.delay < 0:
            raise ValueError("fault delay must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the injection rules it drives.

    Serializes to canonical JSON (:meth:`to_json`) for the
    environment hand-off, and parses from the compact CLI syntax
    (:meth:`parse`)::

        site:kind[:p=0.5][:times=2][:delay=1.5][,site:kind...]
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def for_site(self, site: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.site == site)

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed,
             "specs": [{"site": s.site, "kind": s.kind,
                        "probability": s.probability, "times": s.times,
                        "delay": s.delay} for s in self.specs]},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        return cls(seed=int(raw.get("seed", 0)),
                   specs=tuple(FaultSpec(**spec)
                               for spec in raw.get("specs", ())))

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the CLI plan syntax (or a JSON plan) into a plan."""
        text = text.strip()
        if not text:
            return cls(seed=seed)
        if text.startswith("{"):
            plan = cls.from_json(text)
            return cls(seed=seed, specs=plan.specs) if seed else plan
        specs = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) < 2:
                raise ValueError(
                    f"fault spec {entry!r} is not site:kind[:k=v...]")
            kwargs: Dict[str, object] = {"site": parts[0],
                                         "kind": parts[1]}
            for option in parts[2:]:
                if "=" not in option:
                    raise ValueError(
                        f"fault option {option!r} is not key=value")
                key, value = option.split("=", 1)
                key = {"p": "probability"}.get(key, key)
                if key == "times":
                    kwargs[key] = int(value)
                elif key in ("probability", "delay"):
                    kwargs[key] = float(value)
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            specs.append(FaultSpec(**kwargs))
        return cls(seed=seed, specs=tuple(specs))


class ActiveFaults:
    """A plan armed in this process: counters plus the decision rolls."""

    def __init__(self, plan: FaultPlan, epoch: int = 0) -> None:
        self.plan = plan
        self.epoch = epoch
        #: (site, key, spec-index) -> calls seen / fires so far.
        self._calls: Dict[Tuple[str, str, int], int] = {}
        self._fires: Dict[Tuple[str, str, int], int] = {}
        self.fired: int = 0

    def _roll(self, site: str, key: str, index: int, call: int) -> float:
        """A uniform [0, 1) draw, pure in (seed, epoch, site, key,
        spec index, call counter) -- scheduling cannot perturb it."""
        token = (f"{self.plan.seed}:{self.epoch}:{site}:{key}:"
                 f"{index}:{call}")
        digest = hashlib.sha256(token.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def pick(self, site: str, key: str) -> Optional[FaultSpec]:
        """The spec that fires for this call, or None.  Advances the
        per-(site, key) call counters either way."""
        chosen = None
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            slot = (site, key, index)
            call = self._calls.get(slot, 0)
            self._calls[slot] = call + 1
            if chosen is not None:
                continue  # still advance later specs' counters
            if spec.times is not None \
                    and self._fires.get(slot, 0) >= spec.times:
                continue
            if spec.probability < 1.0 \
                    and self._roll(site, key, index, call) >= spec.probability:
                continue
            self._fires[slot] = self._fires.get(slot, 0) + 1
            self.fired += 1
            chosen = spec
        return chosen


#: The process-wide armed plan; (env-plan, env-epoch) it was built
#: from, so env changes (a test's monkeypatch, an epoch bump) rebuild.
_ACTIVE: Optional[ActiveFaults] = None
_ACTIVE_SOURCE: Optional[Tuple[str, str]] = None


def install(plan: Optional[FaultPlan], *, epoch: int = 0) -> None:
    """Arm *plan* in this process and export it to child processes.

    ``install(None)`` disarms and clears the environment.
    """
    global _ACTIVE, _ACTIVE_SOURCE
    if plan is None or not plan.specs:
        _ACTIVE = None
        _ACTIVE_SOURCE = None
        os.environ.pop(ENV_PLAN, None)
        os.environ.pop(ENV_EPOCH, None)
        return
    os.environ[ENV_PLAN] = plan.to_json()
    os.environ[ENV_EPOCH] = str(epoch)
    _ACTIVE = ActiveFaults(plan, epoch)
    _ACTIVE_SOURCE = (os.environ[ENV_PLAN], os.environ[ENV_EPOCH])


def advance_epoch() -> int:
    """Bump the injection epoch (the harness calls this per fresh
    pool / serial degrade) so retries see fresh probability rolls.
    Returns the new epoch; a no-op 0 when no plan is armed."""
    active = _active()
    if active is None:
        return 0
    install(active.plan, epoch=active.epoch + 1)
    return active.epoch + 1


def ensure(plan_json: Optional[str]) -> None:
    """Arm a plan from its JSON form unless one is already armed.

    Pool workers call this with the plan threaded through the run
    context: normally the inherited ``REPRO_FAULTS`` environment has
    already armed it (and wins -- it carries the current epoch), but
    a scrubbed environment still gets the plan.
    """
    if not plan_json or _active() is not None:
        return
    try:
        epoch = int(os.environ.get(ENV_EPOCH, "0") or 0)
    except ValueError:
        epoch = 0
    install(FaultPlan.from_json(plan_json), epoch=epoch)


def mark_worker() -> None:
    """Record that this process is a pool worker (crash faults may
    really ``os._exit`` here)."""
    global _IN_WORKER
    _IN_WORKER = True


def _active() -> Optional[ActiveFaults]:
    """The armed plan, rebuilt lazily whenever the environment's
    (plan, epoch) pair changed -- which is how pool children arm
    themselves and how epoch bumps reach the parent's instance."""
    global _ACTIVE, _ACTIVE_SOURCE
    source = (os.environ.get(ENV_PLAN), os.environ.get(ENV_EPOCH))
    if source[0] is None:
        if _ACTIVE_SOURCE is not None:
            _ACTIVE = None
            _ACTIVE_SOURCE = None
        return _ACTIVE
    if source != _ACTIVE_SOURCE:
        try:
            plan = FaultPlan.from_json(source[0])
            epoch = int(source[1] or 0)
        except (ValueError, TypeError):
            return _ACTIVE
        _ACTIVE = ActiveFaults(plan, epoch)
        _ACTIVE_SOURCE = source
    return _ACTIVE


def active_plan() -> Optional[FaultPlan]:
    """The armed plan (module state or inherited environment)."""
    active = _active()
    return active.plan if active is not None else None


def fired_count() -> int:
    """Faults fired in this process so far (telemetry for summaries)."""
    active = _active()
    return active.fired if active is not None else 0


def _flip_bit(payload: bytes, roll: float) -> bytes:
    if not payload:
        return payload
    bit = int(roll * len(payload) * 8) % (len(payload) * 8)
    mutated = bytearray(payload)
    mutated[bit >> 3] ^= 1 << (bit & 7)
    return bytes(mutated)


def inject(site: str, key: str = "", payload: Optional[bytes] = None):
    """Maybe inject a fault at *site* for *key*.

    Returns *payload* (possibly corrupted/truncated) for byte-level
    sites; raises or sleeps for the others.  With no plan armed this
    is a near-free no-op, so production paths call it unconditionally.
    """
    active = _active()
    if active is None:
        return payload
    spec = active.pick(site, key)
    if spec is None:
        return payload
    # The fired log goes to telemetry BEFORE the fault acts: a
    # ``crash`` kind ``os._exit``s immediately, so the event (flushed
    # per record) and the flushed counters are all that survive it.
    telemetry.event("fault.fired", site=site, kind=spec.kind, key=key,
                    epoch=active.epoch)
    telemetry.inc("faults.fired", site=site, kind=spec.kind)
    telemetry.flush()
    label = f"injected {spec.kind} at {site}" + (f" [{key}]" if key else "")
    if spec.kind == "io-error":
        raise InjectedIOError(label)
    if spec.kind == "error":
        raise InjectedTaskError(label)
    if spec.kind == "slow":
        time.sleep(spec.delay)
        return payload
    if spec.kind == "crash":
        if _IN_WORKER:
            os._exit(43)
        raise WorkerCrash(label)
    if payload is None:
        # A payload kind at a non-payload call: surface as IO error
        # rather than silently doing nothing.
        raise InjectedIOError(label + " (no payload to mutate)")
    if spec.kind == "truncate":
        return payload[:len(payload) // 2]
    # corrupt: flip one deterministic bit.
    roll = active._roll(site, key, -1, active.fired)
    return _flip_bit(payload, roll)


__all__ = ["SITES", "KINDS", "FaultSpec", "FaultPlan", "ActiveFaults",
           "install", "ensure", "advance_epoch", "mark_worker",
           "inject", "active_plan", "fired_count", "FaultInjected"]
