"""Load a run's telemetry and build the ``repro report`` views.

The report answers the post-hoc questions the raw JSONL cannot:

* **phase-time breakdown tree** -- spans aggregated by their
  name-path (``harness.run/harness.task/store.load``), with total,
  self (total minus instrumented children) and call counts, so the
  totals reconcile against the root span's wall-clock;
* **top-N slowest tasks** -- the individual ``harness.task`` spans,
  worst first, with wall and CPU seconds;
* **store hit rates** -- disk hits / misses / generator executions /
  memo hits / quarantines from the metrics counters;
* **robustness ledger** -- retries, timeouts, pool breaks, task
  failures, resumed experiments and every fault that fired;
* the merged **counters / gauges / histograms** verbatim, for CI
  consumption via ``--format json``.

Loading is non-destructive: the merged ``spans.jsonl`` /
``metrics.json`` are combined with any *unmerged* per-process shards
(a run that crashed before finalizing is still reportable), with
span records deduplicated by id.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.telemetry import (ENVIRONMENT_FILE, METRICS_FILE, SPANS_FILE,
                             merge_metrics, split_metric_key)

#: The telemetry subdirectory of a ``.repro_runs/<run-key>/`` entry.
TELEMETRY_DIR = "telemetry"


def find_run_directory(root: os.PathLike,
                       run: Optional[str] = None) -> Path:
    """The newest run directory under *root* that carries telemetry.

    ``run`` narrows the search to run keys starting with the given
    prefix.  Raises :class:`FileNotFoundError` when nothing matches.
    """
    root = Path(root)
    candidates = []
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if not child.is_dir():
                continue
            if run and not child.name.startswith(run):
                continue
            if (child / TELEMETRY_DIR).is_dir():
                candidates.append(child)
    if not candidates:
        wanted = f" matching {run!r}" if run else ""
        raise FileNotFoundError(
            f"no telemetry-bearing run{wanted} under {root} -- run "
            f"`repro run --telemetry` first")
    return max(candidates,
               key=lambda path: (path / TELEMETRY_DIR).stat().st_mtime)


def _read_jsonl(path: Path) -> List[dict]:
    records = []
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return records
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _read_json(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def load_run(run_dir: os.PathLike) -> dict:
    """All telemetry for one run directory, shards included.

    Returns ``{"run", "directory", "spans", "events", "metrics",
    "environment", "manifest"}``.  Never mutates the directory.
    """
    run_dir = Path(run_dir)
    tdir = run_dir / TELEMETRY_DIR
    records: List[dict] = []
    seen = set()
    for path in [tdir / SPANS_FILE] + sorted(tdir.glob("spans-*.jsonl")):
        for record in _read_jsonl(path):
            record_id = record.get("id")
            if record_id is not None and record_id in seen:
                continue
            seen.add(record_id)
            records.append(record)
    metrics = _read_json(tdir / METRICS_FILE)
    metrics.setdefault("counters", {})
    metrics.setdefault("gauges", {})
    metrics.setdefault("histograms", {})
    for shard in sorted(tdir.glob("metrics-*.json")):
        data = _read_json(shard)
        if data:
            merge_metrics(metrics, data)
    return {
        "run": run_dir.name,
        "directory": str(run_dir),
        "spans": [r for r in records if r.get("kind") == "span"],
        "events": [r for r in records if r.get("kind") == "event"],
        "metrics": metrics,
        "environment": _read_json(tdir / ENVIRONMENT_FILE),
        "manifest": _read_json(run_dir / "manifest.json"),
    }


def counter_total(metrics: dict, name: str) -> float:
    """Sum of a counter across every label combination."""
    total = 0
    for key, value in (metrics.get("counters") or {}).items():
        if split_metric_key(key)[0] == name:
            total += value
    return total


def counter_by_labels(metrics: dict, name: str) -> Dict[str, float]:
    """label-string -> value for one counter family."""
    out = {}
    for key, value in (metrics.get("counters") or {}).items():
        base, labels = split_metric_key(key)
        if base == name:
            label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out[label or "(total)"] = value
    return out


def _span_paths(spans: List[dict]) -> List[Tuple[Tuple[str, ...], dict]]:
    """Each span with its name-path (root-first ancestor names)."""
    by_id = {span["id"]: span for span in spans if "id" in span}
    paths = []
    for span in spans:
        names = [span.get("name", "?")]
        parent = span.get("parent")
        hops = 0
        while parent is not None and hops < 64:
            ancestor = by_id.get(parent)
            if ancestor is None:
                break  # parent never closed (crash): treat as a root
            names.append(ancestor.get("name", "?"))
            parent = ancestor.get("parent")
            hops += 1
        paths.append((tuple(reversed(names)), span))
    return paths


def build_report(data: dict, top: int = 10) -> dict:
    """The report document (JSON-serializable) for one run's data."""
    spans = data["spans"]
    metrics = data["metrics"]
    paths = _span_paths(spans)

    # Aggregate the tree: one node per distinct name-path.
    nodes: Dict[Tuple[str, ...], dict] = {}
    child_seconds: Dict[str, float] = {}
    for path, span in paths:
        node = nodes.setdefault(path, {"count": 0, "total": 0.0,
                                       "cpu": 0.0, "errors": 0})
        node["count"] += 1
        node["total"] += span.get("dur", 0.0)
        node["cpu"] += span.get("cpu", 0.0)
        if str(span.get("status", "ok")) != "ok":
            node["errors"] += 1
        parent = span.get("parent")
        if parent is not None:
            child_seconds[parent] = (child_seconds.get(parent, 0.0)
                                     + span.get("dur", 0.0))
    self_by_path: Dict[Tuple[str, ...], float] = {}
    for path, span in paths:
        own = span.get("dur", 0.0) - child_seconds.get(span.get("id"), 0.0)
        self_by_path[path] = self_by_path.get(path, 0.0) + own

    roots = [span for path, span in paths if len(path) == 1]
    wall = max((span.get("dur", 0.0) for span in roots
                if span.get("name") == "harness.run"),
               default=max((span.get("dur", 0.0) for span in roots),
                           default=0.0))

    # Depth-first ordering, siblings by total seconds descending.
    ordered: List[dict] = []

    def emit(prefix: Tuple[str, ...]) -> None:
        children = sorted(
            (path for path in nodes
             if len(path) == len(prefix) + 1 and path[:-1] == prefix),
            key=lambda path: -nodes[path]["total"])
        for path in children:
            node = nodes[path]
            ordered.append({
                "path": "/".join(path),
                "name": path[-1],
                "depth": len(path) - 1,
                "count": node["count"],
                "errors": node["errors"],
                "total_seconds": round(node["total"], 6),
                "self_seconds": round(max(0.0, self_by_path.get(path, 0.0)),
                                      6),
                "cpu_seconds": round(node["cpu"], 6),
                "fraction_of_wall": (round(node["total"] / wall, 4)
                                     if wall else None),
            })
            emit(path)

    emit(())

    tasks = sorted((span for span in spans
                    if span.get("name") == "harness.task"),
                   key=lambda span: -span.get("dur", 0.0))
    slowest = [{
        "task": (span.get("attrs") or {}).get("task", "?"),
        "seconds": round(span.get("dur", 0.0), 6),
        "cpu_seconds": round(span.get("cpu", 0.0), 6),
        "pid": span.get("pid"),
        "status": span.get("status", "ok"),
        "mode": (span.get("attrs") or {}).get("mode"),
    } for span in tasks[:top]]

    counters = metrics.get("counters") or {}
    hits = counter_total(metrics, "store.hit")
    misses = counter_total(metrics, "store.miss")
    memo = counter_total(metrics, "store.memo_hit")
    lookups = hits + misses
    store = {
        "hits": hits,
        "misses": misses,
        "memo_hits": memo,
        "generated": counter_total(metrics, "store.generated"),
        "quarantined": counter_total(metrics, "store.quarantined"),
        "hit_rate": round(hits / lookups, 4) if lookups else None,
        "memo_hit_rate": (round((hits + memo) / (lookups + memo), 4)
                          if lookups + memo else None),
        "mmap_opens": counter_total(metrics, "store.mmap_open"),
        "manifest_rebuilds": counter_total(metrics,
                                           "store.manifest_rebuilt"),
    }
    cache_hits = counter_total(metrics, "result_cache.hit")
    cache_misses = counter_total(metrics, "result_cache.miss")
    cache_lookups = cache_hits + cache_misses
    result_cache = {
        "hits": cache_hits,
        "misses": cache_misses,
        "puts": counter_total(metrics, "result_cache.put"),
        "evictions": counter_total(metrics, "result_cache.evict"),
        "hit_rate": (round(cache_hits / cache_lookups, 4)
                     if cache_lookups else None),
        "cache_served_experiments": counter_total(
            metrics, "harness.cache_served"),
        "sweep_replays": counter_total(metrics, "sweep.replay"),
        "sweep_replays_by_labels": counter_by_labels(metrics,
                                                     "sweep.replay"),
    }
    cache_hit_tiers = {"memory": 0.0, "disk": 0.0, "superset": 0.0}
    for key, value in counters.items():
        base, labels = split_metric_key(key)
        if base == "planner.cache_hit":
            tier = labels.get("tier", "memory")
            cache_hit_tiers[tier] = cache_hit_tiers.get(tier, 0) + value
    qpr = {key: hist
           for key, hist in (metrics.get("histograms") or {}).items()
           if split_metric_key(key)[0] == "planner.queries_per_replay"}
    qpr_count = sum(hist.get("count", 0) for hist in qpr.values())
    qpr_sum = sum(hist.get("sum", 0.0) for hist in qpr.values())
    serving = {
        "requests": counter_total(metrics, "serve.requests"),
        "queries": counter_total(metrics, "serve.queries"),
        "rejected": counter_total(metrics, "serve.rejected"),
        "request_errors": counter_total(metrics, "serve.errors"),
        "planner_queries": counter_total(metrics, "planner.queries"),
        "replays": counter_total(metrics, "planner.replays"),
        "coalesced": counter_total(metrics, "planner.coalesced"),
        "fallbacks": counter_total(metrics, "planner.fallback"),
        "singleflight_shared": counter_total(
            metrics, "planner.singleflight_shared"),
        "cache_hits_memory": cache_hit_tiers["memory"],
        "cache_hits_disk": cache_hit_tiers["disk"],
        "cache_hits_superset": cache_hit_tiers["superset"],
        "queries_per_replay": (round(qpr_sum / qpr_count, 4)
                               if qpr_count else None),
    }
    robustness = {
        "retries": counter_total(metrics, "harness.retries"),
        "timeouts": counter_total(metrics, "harness.timeouts"),
        "pool_breaks": counter_total(metrics, "harness.pool_breaks"),
        "task_failures": counter_total(metrics, "harness.task_failures"),
        "degraded": counter_total(metrics, "harness.degraded"),
        "resumed": counter_total(metrics, "harness.resumed"),
        "faults_fired": counter_total(metrics, "faults.fired"),
        "faults_by_site": counter_by_labels(metrics, "faults.fired"),
        "fault_events": len([e for e in data["events"]
                             if e.get("name") == "fault.fired"]),
    }
    task_spans = len([s for s in spans if s.get("name") == "harness.task"])
    return {
        "run": data["run"],
        "directory": data["directory"],
        "manifest": data["manifest"],
        "environment": data["environment"],
        "wall_seconds": round(wall, 6),
        "span_count": len(spans),
        "event_count": len(data["events"]),
        "task_spans": task_spans,
        "task_counter": counter_total(metrics, "harness.tasks"),
        "phases": ordered,
        "slowest_tasks": slowest,
        "store": store,
        "result_cache": result_cache,
        "serving": serving,
        "robustness": robustness,
        "counters": counters,
        "gauges": metrics.get("gauges") or {},
        "histograms": metrics.get("histograms") or {},
    }


def _seconds(value: float) -> str:
    return f"{value:8.3f}s"


def render(report: dict) -> str:
    """The human-readable report text."""
    lines = []
    manifest = report.get("manifest") or {}
    env = report.get("environment") or {}
    lines.append(f"run:        {report['run']}")
    if manifest:
        knobs = ", ".join(f"{key}={manifest[key]}"
                          for key in ("scale", "quick", "jobs")
                          if key in manifest)
        if knobs:
            lines.append(f"manifest:   {knobs}")
    if env:
        numpy_note = (f"numpy {env['numpy']}" if env.get("numpy")
                      else "numpy absent")
        lines.append(f"host:       {env.get('implementation')} "
                     f"{env.get('python')} on {env.get('system')} "
                     f"{env.get('machine')}, {env.get('cpus')} cpu(s), "
                     f"{numpy_note}")
    lines.append(f"telemetry:  {report['span_count']} spans, "
                 f"{report['event_count']} events "
                 f"[{report['directory']}]")
    lines.append("")
    lines.append(f"phase-time breakdown "
                 f"({report['wall_seconds']:.3f}s wall):")
    lines.append(f"  {'phase':<44}{'total':>9}{'self':>10}"
                 f"{'calls':>7}  %wall")
    for phase in report["phases"]:
        indent = "  " * phase["depth"]
        label = f"{indent}{phase['name']}"
        errors = f" !{phase['errors']}" if phase["errors"] else ""
        pct = (f"{100.0 * phase['fraction_of_wall']:5.1f}%"
               if phase["fraction_of_wall"] is not None else "     ")
        lines.append(
            f"  {label:<44}{_seconds(phase['total_seconds'])}"
            f"{_seconds(phase['self_seconds'])}"
            f"{phase['count']:>7}  {pct}{errors}")
    if report["slowest_tasks"]:
        lines.append("")
        lines.append(f"slowest tasks (top {len(report['slowest_tasks'])}):")
        for entry in report["slowest_tasks"]:
            status = ("" if entry["status"] == "ok"
                      else f"  [{entry['status']}]")
            lines.append(f"  {_seconds(entry['seconds'])}  "
                         f"(cpu {entry['cpu_seconds']:.3f}s)  "
                         f"{entry['task']}{status}")
    store = report["store"]
    lines.append("")
    lines.append("trace store:")
    rate = ("n/a" if store["hit_rate"] is None
            else f"{100.0 * store['hit_rate']:.1f}%")
    lines.append(f"  disk hits {store['hits']:.0f} / misses "
                 f"{store['misses']:.0f} (hit rate {rate}), "
                 f"memo hits {store['memo_hits']:.0f}, "
                 f"generated {store['generated']:.0f}, "
                 f"quarantined {store['quarantined']:.0f}")
    lines.append(f"  mmap opens {store['mmap_opens']:.0f}, "
                 f"manifest rebuilds {store['manifest_rebuilds']:.0f}")
    cache = report.get("result_cache") or {}
    if cache:
        cache_rate = ("n/a" if cache["hit_rate"] is None
                      else f"{100.0 * cache['hit_rate']:.1f}%")
        lines.append("")
        lines.append("sweep-result cache:")
        lines.append(f"  hits {cache['hits']:.0f} / misses "
                     f"{cache['misses']:.0f} (hit rate {cache_rate}), "
                     f"puts {cache['puts']:.0f}, "
                     f"evictions {cache['evictions']:.0f}")
        lines.append(f"  engine replays {cache['sweep_replays']:.0f}, "
                     f"experiments served inline from cache "
                     f"{cache['cache_served_experiments']:.0f}")
    serving = report.get("serving") or {}
    if serving.get("requests") or serving.get("planner_queries"):
        lines.append("")
        lines.append("query planner / serving:")
        lines.append(f"  {serving['requests']:.0f} request(s), "
                     f"{serving['queries']:.0f} wire quer(ies), "
                     f"{serving['rejected']:.0f} rejected overloaded, "
                     f"{serving['request_errors']:.0f} bad")
        qpr = serving.get("queries_per_replay")
        lines.append(f"  planner: {serving['planner_queries']:.0f} "
                     f"quer(ies) -> {serving['replays']:.0f} "
                     f"replay(s) ({serving['coalesced']:.0f} "
                     f"coalesced, {serving['fallbacks']:.0f} "
                     f"fallback(s)"
                     + (f", {qpr:.1f} queries/replay" if qpr else "")
                     + ")")
        lines.append(f"  cache hits: "
                     f"memory {serving['cache_hits_memory']:.0f}, "
                     f"disk {serving['cache_hits_disk']:.0f}, "
                     f"superset {serving['cache_hits_superset']:.0f}; "
                     f"single-flight shared "
                     f"{serving['singleflight_shared']:.0f}")
    robustness = report["robustness"]
    lines.append("")
    lines.append("robustness ledger:")
    lines.append(f"  {robustness['retries']:.0f} retries, "
                 f"{robustness['timeouts']:.0f} timeouts, "
                 f"{robustness['pool_breaks']:.0f} pool breaks, "
                 f"{robustness['task_failures']:.0f} task failures, "
                 f"{robustness['resumed']:.0f} resumed, "
                 f"degraded {robustness['degraded']:.0f}")
    if robustness["faults_by_site"]:
        fired = ", ".join(f"{label}: {count:.0f}" for label, count
                          in sorted(robustness["faults_by_site"].items()))
        lines.append(f"  faults fired: {robustness['faults_fired']:.0f} "
                     f"({fired})")
    else:
        lines.append("  faults fired: 0")
    counters = report["counters"]
    replay = counter_by_labels({"counters": counters},
                               "sweep.refs_replayed")
    if replay:
        lines.append("")
        lines.append("sweep replay:")
        for label, count in sorted(replay.items()):
            lines.append(f"  {label}: {count:.0f} references replayed")
    histograms = report["histograms"]
    eps = {key: hist for key, hist in histograms.items()
           if split_metric_key(key)[0] == "sweep.replay_events_per_sec"}
    for key, hist in sorted(eps.items()):
        mean = hist["sum"] / hist["count"] if hist.get("count") else 0.0
        lines.append(f"  {key}: mean {mean:,.0f} ev/s over "
                     f"{hist['count']} replay(s)")
    tasks = report["task_spans"]
    counted = report["task_counter"]
    lines.append("")
    lines.append(f"tasks: {tasks} task span(s), {counted:.0f} counted "
                 f"in the registry"
                 + ("" if tasks == counted else "  [MISMATCH]"))
    return "\n".join(lines)
