"""Zero-dependency tracing + metrics for the experiment pipeline.

The pipeline's only after-the-fact visibility used to be the
harness's one-line robustness summary: there was no way to answer
"where did the time go?", "what was the store hit rate?" or "which
retry fired?" once a run finished.  This package is the observability
layer: **spans** (nested, monotonic-clock timed trace sections),
**events** (point-in-time markers such as a fault firing) and a
**metrics registry** (counters / gauges / histograms), all behind a
no-op fast path so the instrumented seams cost one dict lookup when
telemetry is off.

Arming and the process model
----------------------------

``install(directory)`` arms recording in this process and exports the
sink directory through the ``REPRO_TELEMETRY`` environment variable
-- the same hand-off discipline as :mod:`repro.faults` -- so pool
worker processes arm themselves lazily on their first span.  Every
process writes its own shard files (no cross-process locking, ever):

* ``spans-<pid>-<token>.jsonl`` -- one JSON record per finished span
  or event, appended and flushed immediately (a crashed worker keeps
  everything it completed);
* ``metrics-<pid>-<token>.json`` -- the process-local registry,
  rewritten atomically on :func:`flush` (the harness flushes after
  every pool task, so a later crash loses at most one task's counts).

The ``<token>`` is per-process-unique, so a recycled PID (e.g. across
a crashed run and its ``--resume``) can never overwrite another
process's shard.  :func:`finalize` -- called once by the parent at
run end -- merges every shard into the canonical ``spans.jsonl`` /
``metrics.json`` / ``environment.json`` and deletes the shards;
merging dedupes span records by id, so a resume (or a finalize retry)
never double-counts.  ``repro report`` reads the merged files *and*
any leftover shards (non-destructively), so a run that died before
finalizing is still reportable.

With telemetry disabled nothing is ever opened or created: the
disabled :func:`span` returns a shared no-op context manager and the
metric calls return after one environment lookup.
"""

from __future__ import annotations

import atexit
import json
import os
import platform
import shutil
import tempfile
import time
import uuid
from pathlib import Path
from typing import Dict, Optional

#: Environment variable carrying the telemetry sink directory to
#: child processes (the same discipline as ``REPRO_FAULTS``).
ENV_DIR = "REPRO_TELEMETRY"

#: Canonical (merged) sink files under the telemetry directory.
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
ENVIRONMENT_FILE = "environment.json"


def _metric_key(name: str, labels: Dict[str, object]) -> str:
    """``name`` or ``name{k=v,...}`` with labels sorted -- flat keys
    keep the registry a plain JSON object."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str):
    """Inverse of the label flattening: ``(name, labels_dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = {}
    for part in inner[:-1].split(","):
        if "=" in part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Temp-file + ``os.replace``: the file is whole or absent."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True,
                                    default=str) + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _load_json(path: Path) -> Optional[dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class Span:
    """One timed, possibly-nested trace section.

    Context-manager only; the record is written (and flushed) on
    exit, carrying wall-clock start, monotonic duration, CPU time,
    the parent span id, and any attributes set at creation or via
    :meth:`set`.  An exception escaping the block stamps the record's
    status with the exception type (and is never swallowed).
    """

    __slots__ = ("_recorder", "name", "attrs", "id", "parent",
                 "_wall0", "_mono0", "_cpu0")

    def __init__(self, recorder: "_Recorder", name: str,
                 attrs: Dict[str, object]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.id = None
        self.parent = None

    def __enter__(self) -> "Span":
        recorder = self._recorder
        self.id = recorder.next_id()
        self.parent = recorder.stack[-1].id if recorder.stack else None
        recorder.stack.append(self)
        self._wall0 = time.time()
        self._mono0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (hit/miss, counts)."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        if recorder.stack and recorder.stack[-1] is self:
            recorder.stack.pop()
        else:  # unbalanced exit (a span leaked): recover, don't raise
            try:
                recorder.stack.remove(self)
            except ValueError:
                pass
        record = {
            "kind": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "pid": recorder.pid,
            "t0": round(self._wall0, 6),
            "dur": round(time.perf_counter() - self._mono0, 9),
            "cpu": round(time.process_time() - self._cpu0, 9),
            "status": ("ok" if exc_type is None
                       else f"error:{exc_type.__name__}"),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        recorder.write(record)
        return False


class _NoopSpan:
    """The shared disabled-path span: every call is a constant no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Recorder:
    """Per-process telemetry state: span sink, metric registry."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.pid = os.getpid()
        #: Per-process-unique shard discriminator: a recycled PID
        #: (crash + resume) must never clobber another shard.
        self.token = uuid.uuid4().hex[:8]
        self.stack = []
        self._sequence = 0
        self._file = None
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}
        self._metrics_dirty = False

    def next_id(self) -> str:
        self._sequence += 1
        return f"{self.pid}-{self.token}-{self._sequence}"

    # -- span sink -------------------------------------------------------

    def write(self, record: dict) -> None:
        """Append one JSONL record, flushed through to the OS so a
        later ``os._exit`` (crash fault) cannot lose it.  IO failures
        are swallowed: telemetry must never fail the run."""
        try:
            if self._file is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._file = open(
                    self.directory / f"spans-{self.pid}-{self.token}.jsonl",
                    "a", encoding="utf-8")
            self._file.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":"),
                                        default=str) + "\n")
            self._file.flush()
        except OSError:
            pass

    # -- metric registry -------------------------------------------------

    def inc(self, name: str, n, labels: Dict[str, object]) -> None:
        key = _metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n
        self._metrics_dirty = True

    def gauge_set(self, name: str, value, labels) -> None:
        self.gauges[_metric_key(name, labels)] = value
        self._metrics_dirty = True

    def observe(self, name: str, value, labels) -> None:
        key = _metric_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = {
                "count": 0, "sum": 0.0, "min": value, "max": value}
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        self._metrics_dirty = True

    def flush_metrics(self) -> None:
        """Atomically persist this process's registry shard."""
        if not self._metrics_dirty:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(
                self.directory / f"metrics-{self.pid}-{self.token}.json",
                {"counters": self.counters, "gauges": self.gauges,
                 "histograms": self.histograms})
            self._metrics_dirty = False
        except OSError:
            pass

    def close(self) -> None:
        self.flush_metrics()
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None


#: The armed recorder and the environment value it was built from --
#: a changed environment (a pool child arming itself, a test's
#: monkeypatch) rebuilds lazily, exactly like ``repro.faults``.
_RECORDER: Optional[_Recorder] = None
_SOURCE: Optional[str] = None


def _current() -> Optional[_Recorder]:
    global _RECORDER, _SOURCE
    source = os.environ.get(ENV_DIR)
    if not source:
        if _SOURCE is not None:  # disarmed externally
            _RECORDER = None
            _SOURCE = None
        return _RECORDER
    if (source != _SOURCE or _RECORDER is None
            or _RECORDER.pid != os.getpid()):
        # The pid check catches fork-started pool workers: the child
        # inherits the parent's recorder, and writing through it would
        # reuse the parent's shard and collide with its span ids (the
        # merge dedup would then silently drop records).  Every
        # process gets its own shard.  (The inherited handle is
        # per-record flushed, so abandoning it loses nothing.)
        _RECORDER = _Recorder(source)
        _SOURCE = source
    return _RECORDER


def enabled() -> bool:
    """Whether telemetry is armed in this process."""
    return _current() is not None


def active_directory() -> Optional[str]:
    """The armed sink directory (for explicit worker hand-off)."""
    recorder = _current()
    return str(recorder.directory) if recorder is not None else None


def install(directory: Optional[os.PathLike], *,
            fresh: bool = False) -> None:
    """Arm telemetry into *directory* and export it to children.

    ``fresh=True`` wipes any previous telemetry under the directory
    first (a non-resume run must not inherit stale shards).
    ``install(None)`` disarms and clears the environment.
    """
    global _RECORDER, _SOURCE
    if directory is None:
        if _RECORDER is not None:
            _RECORDER.close()
        _RECORDER = None
        _SOURCE = None
        os.environ.pop(ENV_DIR, None)
        return
    directory = Path(directory)
    if fresh and directory.exists():
        shutil.rmtree(directory, ignore_errors=True)
    directory.mkdir(parents=True, exist_ok=True)
    os.environ[ENV_DIR] = str(directory)
    _RECORDER = _Recorder(directory)
    _SOURCE = str(directory)


def ensure(directory: Optional[str]) -> None:
    """Arm from an explicit directory unless already armed.

    Pool workers call this with the directory threaded through the
    run context: normally the inherited ``REPRO_TELEMETRY``
    environment has already armed it, but a scrubbed environment
    still gets the sink.
    """
    if directory and _current() is None:
        install(directory)


def span(name: str, **attrs):
    """A timed context manager; the no-op singleton when disabled."""
    recorder = _current()
    if recorder is None:
        return _NOOP
    return Span(recorder, name, attrs)


def event(name: str, **attrs) -> None:
    """Record a point-in-time marker (written and flushed at once)."""
    recorder = _current()
    if recorder is None:
        return
    record = {"kind": "event", "name": name,
              "id": recorder.next_id(), "pid": recorder.pid,
              "t0": round(time.time(), 6)}
    if attrs:
        record["attrs"] = attrs
    recorder.write(record)


def inc(name: str, n=1, **labels) -> None:
    """Add *n* to a counter (labels flatten into the metric key)."""
    recorder = _current()
    if recorder is None:
        return
    recorder.inc(name, n, labels)


def gauge(name: str, value, **labels) -> None:
    """Set a gauge to its latest value."""
    recorder = _current()
    if recorder is None:
        return
    recorder.gauge_set(name, value, labels)


def observe(name: str, value, **labels) -> None:
    """Record one sample into a histogram (count/sum/min/max)."""
    recorder = _current()
    if recorder is None:
        return
    recorder.observe(name, value, labels)


def flush() -> None:
    """Persist this process's metric registry shard (spans are
    already flushed per record)."""
    recorder = _current()
    if recorder is not None:
        recorder.flush_metrics()


def merge_metrics(target: dict, shard: dict) -> dict:
    """Merge one registry shard into *target* (in place).

    Counters sum, histograms combine count/sum/min/max, gauges take
    the later merge (per-process gauges should carry a pid label when
    that matters).
    """
    for key, value in (shard.get("counters") or {}).items():
        counters = target.setdefault("counters", {})
        counters[key] = counters.get(key, 0) + value
    for key, value in (shard.get("gauges") or {}).items():
        target.setdefault("gauges", {})[key] = value
    for key, hist in (shard.get("histograms") or {}).items():
        histograms = target.setdefault("histograms", {})
        merged = histograms.get(key)
        if merged is None:
            histograms[key] = dict(hist)
        else:
            merged["count"] += hist.get("count", 0)
            merged["sum"] += hist.get("sum", 0.0)
            merged["min"] = min(merged["min"], hist.get("min", merged["min"]))
            merged["max"] = max(merged["max"], hist.get("max", merged["max"]))
    return target


def merge_directory(directory: os.PathLike) -> dict:
    """Merge every shard under *directory* into the canonical files.

    Span shards append into ``spans.jsonl`` deduplicated by span id
    (ids are unique per process incarnation, which is what makes the
    merge idempotent across resumes and finalize retries); metric
    shards fold into ``metrics.json``.  Shards are deleted after
    merging.  Returns the merged metrics registry.
    """
    directory = Path(directory)
    target = directory / SPANS_FILE
    seen = set()
    try:
        for line in target.read_text().splitlines():
            try:
                seen.add(json.loads(line).get("id"))
            except ValueError:
                continue
    except OSError:
        pass
    shards = sorted(directory.glob("spans-*.jsonl"))
    fresh_lines = []
    for shard in shards:
        try:
            lines = shard.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            try:
                record_id = json.loads(line).get("id")
            except ValueError:
                continue
            if record_id is None or record_id not in seen:
                seen.add(record_id)
                fresh_lines.append(line)
    try:
        if fresh_lines:
            with open(target, "a", encoding="utf-8") as handle:
                handle.write("\n".join(fresh_lines) + "\n")
        for shard in shards:
            try:
                shard.unlink()
            except OSError:
                pass
    except OSError:
        pass

    merged = _load_json(directory / METRICS_FILE) or {}
    merged.setdefault("counters", {})
    merged.setdefault("gauges", {})
    merged.setdefault("histograms", {})
    metric_shards = sorted(directory.glob("metrics-*.json"))
    for shard in metric_shards:
        data = _load_json(shard)
        if data:
            merge_metrics(merged, data)
    try:
        _atomic_write_json(directory / METRICS_FILE, merged)
        for shard in metric_shards:
            try:
                shard.unlink()
            except OSError:
                pass
    except OSError:
        pass

    environment = directory / ENVIRONMENT_FILE
    if not environment.exists():
        try:
            _atomic_write_json(environment, environment_block())
        except OSError:
            pass
    return merged


def finalize() -> Optional[dict]:
    """Flush this process and merge all shards (parent, at run end).

    Returns the merged metrics registry, or None when disabled.  The
    recorder stays armed: spans recorded afterwards open a fresh
    shard and are picked up by the next merge (or by ``repro
    report``, which also reads unmerged shards).
    """
    recorder = _current()
    if recorder is None:
        return None
    recorder.close()
    return merge_directory(recorder.directory)


def environment_block() -> dict:
    """The host/interpreter identity block, including the numpy
    version (or None) so engine-dependent numbers are attributable."""
    try:
        import numpy
        numpy_version = getattr(numpy, "__version__", "unknown")
    except Exception:
        numpy_version = None
    return {
        "cpus": os.cpu_count(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "python": platform.python_version(),
        "system": platform.system(),
    }


@atexit.register
def _flush_at_exit() -> None:  # pragma: no cover - exit-path safety net
    recorder = _RECORDER
    if recorder is not None:
        recorder.flush_metrics()


__all__ = [
    "ENV_DIR", "SPANS_FILE", "METRICS_FILE", "ENVIRONMENT_FILE",
    "Span", "enabled", "active_directory", "install", "ensure",
    "span", "event", "inc", "gauge", "observe", "flush",
    "merge_metrics", "merge_directory", "finalize",
    "environment_block", "split_metric_key",
]
