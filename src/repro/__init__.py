"""repro: a reproduction of Dally & Kajiya, "An Object Oriented
Architecture" (ISCA 1985) -- the Caltech Object Machine (COM).

The package implements the paper's four mechanisms and the full machine
around them:

* abstract instructions resolved through an instruction translation
  lookaside buffer (:mod:`repro.caches.itlb`);
* floating point virtual addresses (:mod:`repro.memory.fpa`);
* hardware-style context allocation and the context cache
  (:mod:`repro.core.context_cache`);
* three-level addressing (:mod:`repro.memory.mmu`);

plus the COM functional simulator (:mod:`repro.core.machine`), a
Smalltalk-subset compiler (:mod:`repro.smalltalk`), the Fith language
used for the paper's section-5 experiments (:mod:`repro.fith`) and the
experiment harness regenerating every figure and quantitative claim
(:mod:`repro.experiments`).

Quickstart::

    from repro import COMMachine, load_program
    machine = COMMachine()
    main = load_program(machine, '''
    main
        c2 = 6
        c3 = 7
        c4 = c2 * c3
        c0 = c4
        halt
    ''')
    machine.start(main)
    machine.run()
    print(machine.result())          # <small_integer 42>
    print(machine.cycles.snapshot())
"""

from repro.config import DEFAULT_CONFIG, SimConfig, make_com, make_fith
from repro.core.assembler import Assembler, load_program
from repro.core.encoding import Instruction
from repro.core.isa import Op, OpcodeTable
from repro.core.machine import COMMachine, CompiledMethod, TraceEvent
from repro.core.operands import Operand
from repro.core.pipeline import CycleParams, pipeline_diagram
from repro.trace.columnar import Trace, TraceBuilder, as_trace
from repro.memory.fpa import AddressFormat, FPAddress, address_format
from repro.memory.mmu import MMU
from repro.memory.tags import Tag, Word

__version__ = "1.2.0"

__all__ = [
    "Assembler",
    "AddressFormat",
    "COMMachine",
    "CompiledMethod",
    "CycleParams",
    "DEFAULT_CONFIG",
    "FPAddress",
    "Instruction",
    "MMU",
    "Op",
    "OpcodeTable",
    "Operand",
    "SimConfig",
    "Tag",
    "Trace",
    "TraceBuilder",
    "TraceEvent",
    "Word",
    "address_format",
    "as_trace",
    "load_program",
    "make_com",
    "make_fith",
    "pipeline_diagram",
    "__version__",
]
