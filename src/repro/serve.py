"""``repro serve``: an asyncio front-end for batched sweep queries.

The serving half of the "millions of users" story: many cheap cached
reads, few expensive replays, and admission control between them.
One process owns the trace store, the in-memory
:class:`~repro.sweep.planner.SurfaceCache` and the disk result cache;
clients send *batches* of queries and the
:func:`~repro.sweep.planner.run_batch` planner answers each batch
with as few trace replays as the coalescing rules allow.

Protocol
--------

JSON lines over a plain socket -- one request object per line, one
response object per line::

    {"id": "r1", "workload": "paper", "quick": true,
     "queries": [
       {"kind": "curve", "cache": "itlb", "associativity": 2,
        "warmup_fraction": 0.25, "double_pass": false},
       {"kind": "isoratio", "cache": "icache", "target": 0.99,
        "warmup_fraction": 0.25, "double_pass": false}]}

    {"id": "r1", "ok": true, "results": [...], "stats": {...}}

The same JSON body over ``HTTP POST /`` works too (``GET /`` answers
a health document); the listener sniffs the first line, so one port
serves both framings.  Malformed queries fail individually (an error
entry in ``results``), a malformed request fails alone, and neither
takes the connection down.

Admission control
-----------------

Requests whose every query is already cached (memory or disk) are
answered inline on the event loop -- a cache probe plus dict reads.
Requests that need engine replays go through a bounded replay gate:
at most ``queue_limit`` replaying requests at a time, the rest
rejected *explicitly* (``"status": "overloaded"``, HTTP 503, the
``serve.rejected`` counter) rather than queued into memory until the
process dies.  The current depth is the ``serve.queue_depth`` gauge.

Every request passes the ``serve.request`` fault-injection site
(payload kinds mangle the raw request bytes, exercising the
bad-request path) and the whole pipeline is visible in
``repro report``'s serving section.
"""

from __future__ import annotations

import asyncio
import functools
import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro import faults, telemetry
from repro.sweep import planner
from repro.workloads.store import TraceStore

#: Concurrent replaying requests admitted before overload rejection
#: kicks in, when ``--queue-limit`` is not given.
DEFAULT_QUEUE_LIMIT = 4


class SweepServer:
    """One serving process: listener, planner, caches, admission."""

    def __init__(self, store: Optional[TraceStore] = None, *,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 max_requests: Optional[int] = None,
                 surface_cache: Optional[planner.SurfaceCache] = None
                 ) -> None:
        self.store = store if store is not None else TraceStore(None)
        self.queue_limit = max(0, queue_limit)
        self.max_requests = max_requests
        self.surface_cache = surface_cache \
            if surface_cache is not None \
            else planner.default_surface_cache()
        self.requests_served = 0
        self.rejected = 0
        self.errors = 0
        self._replaying = 0
        self._sequence = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._done = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> int:
        """Bind and listen; returns the actual port (0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._on_connect, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def run(self, host: str, port: int) -> int:
        """Start, announce, serve until done (``--max-requests``) or
        cancelled, then close.  Returns the bound port."""
        bound = await self.start(host, port)
        print(f"serving on {host}:{bound} "
              f"(queue limit {self.queue_limit}"
              + (f", exiting after {self.max_requests} request(s)"
                 if self.max_requests else "") + ")",
              flush=True)
        try:
            await self._done.wait()
        finally:
            await self.close()
        return bound

    def _request_finished(self) -> None:
        self.requests_served += 1
        if self.max_requests is not None \
                and self.requests_served >= self.max_requests:
            self._done.set()

    # -- connection handling ---------------------------------------------

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"POST", b"PUT",
                                           b"HEAD"):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown (--max-requests reached, ^C) while this
            # connection sat in readline(): close the socket quietly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_jsonl(self, first: bytes,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        line = first
        while line:
            if line.strip():
                response = await self._handle_line(line)
                writer.write(json.dumps(response, sort_keys=True,
                                        default=str).encode() + b"\n")
                await writer.drain()
                self._request_finished()
                if self._done.is_set():
                    return
            line = await reader.readline()

    async def _handle_http(self, request_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        method = request_line.split(b" ", 1)[0].decode("latin-1")
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if method == "POST":
            body = await reader.readexactly(length) if length else b""
            response = await self._handle_line(body)
            status = "200 OK"
            if response.get("status") == "overloaded":
                status = "503 Service Unavailable"
            elif not response.get("ok", False):
                status = "400 Bad Request"
        else:  # health probe
            response = {"ok": True, "requests": self.requests_served,
                        "queue_depth": self._replaying,
                        "queue_limit": self.queue_limit}
            status = "200 OK"
        blob = json.dumps(response, sort_keys=True,
                          default=str).encode()
        writer.write(
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + blob)
        await writer.drain()
        if method == "POST":
            self._request_finished()

    # -- one request ------------------------------------------------------

    async def _handle_line(self, blob: bytes) -> dict:
        self._sequence += 1
        sequence = self._sequence
        telemetry.inc("serve.requests")
        with telemetry.span("serve.request", sequence=sequence):
            try:
                blob = faults.inject("serve.request", key=str(sequence),
                                     payload=blob)
                document = json.loads(blob.decode("utf-8"))
                if not isinstance(document, dict):
                    raise ValueError("request must be a JSON object")
            except Exception as error:
                self.errors += 1
                telemetry.inc("serve.errors")
                return {"ok": False, "status": "error",
                        "error": f"bad request: {error}"}
            try:
                return await self._answer(document)
            except Exception as error:
                self.errors += 1
                telemetry.inc("serve.errors")
                return {"id": document.get("id"), "ok": False,
                        "status": "error", "error": str(error)}

    async def _answer(self, document: dict) -> dict:
        request_id = document.get("id")
        raw_queries = document.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            return {"id": request_id, "ok": False, "status": "error",
                    "error": "request needs a non-empty 'queries' list"}
        results: List[Optional[dict]] = [None] * len(raw_queries)
        parsed: List[Tuple[int, planner.Query]] = []
        for slot, raw in enumerate(raw_queries):
            try:
                parsed.append((slot, planner.query_from_request(raw)))
            except (ValueError, TypeError) as error:
                results[slot] = {"ok": False, "error": str(error)}
        telemetry.inc("serve.queries", len(raw_queries))

        loop = asyncio.get_running_loop()
        events = await loop.run_in_executor(
            None, functools.partial(
                self.store.load, document.get("workload", "paper"),
                quick=bool(document.get("quick", False)),
                scale=document.get("scale"),
                **(document.get("params") or {})))

        report = None
        if parsed:
            queries = [query for _, query in parsed]
            if self._all_cached(queries, events):
                # Pure cache reads: answered inline on the event loop,
                # never occupying a replay slot.
                batch = planner.run_batch(
                    queries, events, surface_cache=self.surface_cache)
            else:
                if self._replaying >= self.queue_limit:
                    self.rejected += 1
                    telemetry.inc("serve.rejected")
                    return {
                        "id": request_id, "ok": False,
                        "status": "overloaded",
                        "error": f"replay queue full "
                                 f"({self._replaying} replaying, "
                                 f"limit {self.queue_limit}); retry",
                    }
                self._replaying += 1
                telemetry.gauge("serve.queue_depth", self._replaying)
                try:
                    batch = await loop.run_in_executor(
                        None, functools.partial(
                            planner.run_batch, queries, events,
                            surface_cache=self.surface_cache))
                finally:
                    self._replaying -= 1
                    telemetry.gauge("serve.queue_depth",
                                    self._replaying)
            for (slot, query), surface in zip(parsed, batch.surfaces):
                results[slot] = {"ok": True, "kind": query.kind,
                                 "answer": query.answer(surface)}
            report = batch.report
        stats = report.to_dict() if report is not None else \
            planner.BatchReport().to_dict()
        stats["served_from_cache"] = (stats["cache_hits"]["memory"]
                                      + stats["cache_hits"]["disk"])
        return {"id": request_id, "ok": True,
                "workload": document.get("workload", "paper"),
                "results": results, "stats": stats}

    def _all_cached(self, queries: List[planner.Query],
                    events) -> bool:
        """Whether every query can be answered without a replay slot.

        Existence probes only (no counters, no reads): the same
        pattern the harness uses to serve cached experiments inline.
        A probe that says "cached" can still race an eviction -- the
        planner then replays inline, which is correct, just slower
        than the admission gate assumed.
        """
        trace_key = getattr(events, "store_key", None)
        if not trace_key:
            return False
        store_root = getattr(events, "store_root", None)
        from repro.sweep.runner import _result_cache, result_cache_key
        from repro.workloads.library import ResultCache
        disk = _result_cache(store_root) \
            if store_root and ResultCache.enabled() else None
        for query in queries:
            key = result_cache_key(query.spec, trace_key)
            if self.surface_cache is not None \
                    and planner.SurfaceCache.enabled() \
                    and self.surface_cache.contains(key):
                continue
            if disk is not None and disk.contains(key):
                continue
            return False
        return True


# -- CLI entry point -------------------------------------------------------

def serve_main(args) -> int:
    """The ``repro serve`` command (see cli.py for the parser)."""
    from repro.experiments.journal import default_root

    run_root = Path(args.run_dir) if args.run_dir else default_root()
    run_dir = run_root / "serve"
    if args.telemetry:
        telemetry.install(run_dir / "telemetry", fresh=True)
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "manifest.json").write_text(json.dumps(
            {"command": "serve", "host": args.host, "port": args.port,
             "queue_limit": args.queue_limit,
             "max_requests": args.max_requests,
             "trace_dir": args.trace_dir},
            indent=2, sort_keys=True) + "\n")
    server = SweepServer(TraceStore(args.trace_dir),
                         queue_limit=args.queue_limit,
                         max_requests=args.max_requests)
    try:
        asyncio.run(server.run(args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        if args.telemetry:
            telemetry.finalize()
            telemetry.install(None)
    print(f"served {server.requests_served} request(s), "
          f"{server.rejected} rejected, {server.errors} error(s)")
    return 0
