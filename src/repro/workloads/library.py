"""The trace library: sharded payload layout plus the result cache.

PR 5 gave the repository a flat content-keyed :class:`TraceStore`; at
"millions of users" scale (thousands of stored workloads, many cheap
cached queries per expensive replay) a flat directory and no query
memoization both stop scaling.  This module holds the two layout-level
services the reworked store composes:

:class:`TraceLibrary`
    The on-disk *shape* of the store: payloads live under
    ``shards/<key[:2]>/`` (256-way fan-out, so directory listings stay
    O(store/256) no matter how big the library grows), each shard
    carries a ``catalog.json`` of its own entries, and the root
    carries a ``manifest.json`` summarizing the whole library (payload
    format version, per-entry generator versions, byte sizes and
    whole-file CRC32 checksums).  Both index files are **regenerable
    metadata**, exactly like the per-trace sidecars: every reader
    treats a missing, torn or corrupt manifest/catalog as "rebuild
    from the payloads on disk", so no index failure is ever fatal and
    the chaos plan can corrupt them freely (the ``store.manifest``
    injection site).  Legacy flat payloads at the store root keep
    working unmigrated; :meth:`TraceLibrary.migrate` adopts them into
    shards lazily (CLI: ``repro store migrate``).

:class:`ResultCache`
    Disk memoization of sweep *results* keyed by the caller-computed
    content key (trace key + spec hash + semantics + engine version;
    see :func:`repro.sweep.runner.result_cache_key` -- this module
    never imports the sweep layer).  Entries are JSON documents under
    ``results/<key[:2]>/``, written atomically, read through the
    ``store.result_cache`` injection site (a corrupt entry is a clean
    miss, never an error), and evicted LRU by a byte budget
    (``REPRO_RESULT_CACHE_BYTES``, default 256 MiB) where "recently
    used" is the file mtime, refreshed on every hit.  Disable
    entirely with ``REPRO_RESULT_CACHE=0``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import faults, telemetry
from repro.trace.columnar import FORMAT_VERSION

#: Subdirectory names under the store root.
SHARDS_DIR = "shards"
RESULTS_DIR = "results"
MANIFEST_NAME = "manifest.json"
CATALOG_NAME = "catalog.json"

#: Bumped when the manifest document layout changes; a manifest with
#: a different version is simply rebuilt (it is derived data).
MANIFEST_VERSION = 1

#: Result-cache byte budget when ``REPRO_RESULT_CACHE_BYTES`` is
#: unset: enough for ~10^4 paper-grid surfaces, small next to one
#: full-scale trace payload.
DEFAULT_RESULT_BUDGET = 256 * 1024 * 1024

ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"
ENV_RESULT_BUDGET = "REPRO_RESULT_CACHE_BYTES"


def _atomic_write(path: Path, text: str) -> bool:
    """tmp + ``os.replace`` under the target's directory; False on
    any OS failure (index writes are best-effort bookkeeping)."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def _read_json(path: Path, *, site: Optional[str] = None) -> Optional[dict]:
    """A JSON document, or None when missing/torn/corrupt.

    ``site`` threads the read through a fault-injection site (payload
    kinds mutate the bytes before parsing, so an injected corruption
    exercises exactly the torn-file path).
    """
    try:
        blob = path.read_bytes()
        if site is not None:
            blob = faults.inject(site, key=path.name, payload=blob)
        document = json.loads(blob.decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    return document if isinstance(document, dict) else None


def key_of_payload(path: Path) -> str:
    """The content key encoded in a payload filename (``name-key``)."""
    stem = path.stem
    return stem.rsplit("-", 1)[1] if "-" in stem else stem


class TraceLibrary:
    """Sharded layout, catalogs and the manifest of one store root.

    Stateless between calls: every method works off the directory
    tree, so concurrent writers (pool workers racing on the same
    generation) can interleave harmlessly -- index files are
    last-atomic-rename-wins and always rebuildable.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    # -- layout ----------------------------------------------------------

    def shard_dir(self, key: str) -> Path:
        return self.root / SHARDS_DIR / key[:2]

    def shard_path(self, filename: str, key: str) -> Path:
        """Where a payload named *filename* with content *key* lives."""
        return self.shard_dir(key) / filename

    def payload_paths(self) -> Iterator[Path]:
        """Every payload in the library: sharded entries first, then
        legacy flat files at the root, each set sorted by name."""
        shards = self.root / SHARDS_DIR
        if shards.is_dir():
            for shard in sorted(shards.iterdir()):
                if shard.is_dir():
                    yield from sorted(shard.glob("*.trace"))
        yield from sorted(self.root.glob("*.trace"))

    # -- manifest / catalogs ---------------------------------------------

    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def read_manifest(self) -> Optional[dict]:
        """The manifest document, or None when it must be rebuilt.

        A manifest is *advisory*: torn, corrupt, missing or
        version-skewed documents all answer None and the caller falls
        back to :meth:`rebuild` (or to scanning the payloads
        directly).  Never raises.
        """
        document = _read_json(self.manifest_path(), site="store.manifest")
        if document is None \
                or document.get("manifest_version") != MANIFEST_VERSION \
                or not isinstance(document.get("entries"), dict):
            return None
        return document

    def manifest(self) -> dict:
        """The manifest, rebuilding from disk when unreadable."""
        document = self.read_manifest()
        if document is None:
            document = self.rebuild()
        return document

    def _entry_for(self, path: Path) -> dict:
        """One manifest entry, from the payload file plus its sidecar."""
        entry: Dict[str, object] = {"file": path.name}
        shard = path.parent
        entry["shard"] = shard.name \
            if shard.parent.name == SHARDS_DIR else None
        try:
            blob = path.read_bytes()
            entry["bytes"] = len(blob)
            entry["crc32"] = zlib.crc32(blob)
        except OSError:
            entry["bytes"] = None
            entry["crc32"] = None
        sidecar = _read_json(path.with_suffix(".json"))
        if sidecar:
            for field in ("workload", "version", "format", "events",
                          "dispatched"):
                if field in sidecar:
                    entry[field] = sidecar[field]
        return entry

    def rebuild(self) -> dict:
        """Recompute the manifest from the payloads on disk and write
        it (atomically, best-effort).  The one true source is always
        the payload files; this is how a torn manifest heals."""
        entries: Dict[str, dict] = {}
        for path in self.payload_paths():
            entries.setdefault(key_of_payload(path), self._entry_for(path))
        document = {
            "manifest_version": MANIFEST_VERSION,
            "payload_format": FORMAT_VERSION,
            "rebuilt_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "entries": entries,
        }
        telemetry.inc("store.manifest_rebuilt")
        self._write_manifest(document)
        self._write_catalogs(entries)
        return document

    def _write_manifest(self, document: dict) -> None:
        _atomic_write(self.manifest_path(),
                      json.dumps(document, indent=2, sort_keys=True) + "\n")

    def _write_catalogs(self, entries: Dict[str, dict]) -> None:
        """Regroup manifest entries into per-shard catalog files."""
        by_shard: Dict[str, Dict[str, dict]] = {}
        for key, entry in entries.items():
            shard = entry.get("shard")
            if shard:
                by_shard.setdefault(shard, {})[key] = entry
        for shard, catalog in by_shard.items():
            _atomic_write(
                self.root / SHARDS_DIR / shard / CATALOG_NAME,
                json.dumps({"catalog_version": MANIFEST_VERSION,
                            "entries": catalog},
                           indent=2, sort_keys=True) + "\n")

    def read_catalog(self, shard: str) -> Optional[dict]:
        """One shard's catalog, or None when it must be rebuilt."""
        document = _read_json(
            self.root / SHARDS_DIR / shard / CATALOG_NAME,
            site="store.manifest")
        if document is None \
                or not isinstance(document.get("entries"), dict):
            return None
        return document

    def record_entry(self, path: Path, key: str) -> None:
        """Fold one just-written payload into the indexes.

        Best-effort by design: the payload write already succeeded,
        and both indexes are rebuildable, so an index update must
        never fail (or slow down) the load that triggered it.
        """
        entry = self._entry_for(path)
        document = self.read_manifest()
        if document is None:
            self.rebuild()  # picks the new payload up in the scan
            return
        document["entries"][key] = entry
        self._write_manifest(document)
        shard = entry.get("shard")
        if shard:
            catalog = self.read_catalog(shard) \
                or {"catalog_version": MANIFEST_VERSION, "entries": {}}
            catalog["entries"][key] = entry
            _atomic_write(self.root / SHARDS_DIR / shard / CATALOG_NAME,
                          json.dumps(catalog, indent=2, sort_keys=True)
                          + "\n")

    def forget_entry(self, key: str) -> None:
        """Drop one key from the indexes (after a quarantine)."""
        document = self.read_manifest()
        if document is None:
            return
        entry = document["entries"].pop(key, None)
        if entry is None:
            return
        self._write_manifest(document)
        shard = entry.get("shard")
        if shard:
            catalog = self.read_catalog(shard)
            if catalog and catalog["entries"].pop(key, None) is not None:
                _atomic_write(
                    self.root / SHARDS_DIR / shard / CATALOG_NAME,
                    json.dumps(catalog, indent=2, sort_keys=True) + "\n")

    # -- migration / maintenance -----------------------------------------

    def migrate(self) -> dict:
        """Adopt legacy flat payloads into the sharded layout.

        Moves each root-level ``*.trace`` (and its sidecar) into
        ``shards/<key[:2]>/`` via ``os.replace`` -- same filesystem,
        so the move is atomic and the payload bytes never change --
        then rebuilds the indexes once.  Flat files that cannot move
        are left in place and reported; reads work either way.
        """
        report = {"migrated": [], "failed": [], "already_sharded": 0}
        flat = sorted(self.root.glob("*.trace"))
        for path in list(self.payload_paths()):
            if path not in flat:
                report["already_sharded"] += 1
        for path in flat:
            key = key_of_payload(path)
            destination = self.shard_path(path.name, key)
            try:
                destination.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, destination)
            except OSError as error:
                report["failed"].append((path.name, str(error)))
                continue
            sidecar = path.with_suffix(".json")
            try:
                os.replace(sidecar, destination.with_suffix(".json"))
            except OSError:
                pass  # regenerable metadata
            report["migrated"].append(path.name)
        if report["migrated"]:
            self.rebuild()
        return report

    def gc(self) -> dict:
        """Sweep index litter: orphan sidecars (no payload), leftover
        ``*.tmp`` files from interrupted atomic writes, and empty
        shard directories.  Payloads themselves are never touched --
        deleting cached traces is what eviction policies are for, and
        the trace store deliberately has none (content-keyed entries
        are immutable and always valid)."""
        report = {"orphan_sidecars": [], "tmp_files": [],
                  "empty_shards": []}
        directories = [self.root]
        shards = self.root / SHARDS_DIR
        if shards.is_dir():
            directories += [d for d in sorted(shards.iterdir())
                            if d.is_dir()]
        for directory in directories:
            for tmp in sorted(directory.glob("*.tmp")):
                try:
                    tmp.unlink()
                    report["tmp_files"].append(tmp.name)
                except OSError:
                    pass
            for sidecar in sorted(directory.glob("*.json")):
                if sidecar.name in (MANIFEST_NAME, CATALOG_NAME):
                    continue
                if not sidecar.with_suffix(".trace").exists():
                    try:
                        sidecar.unlink()
                        report["orphan_sidecars"].append(sidecar.name)
                    except OSError:
                        pass
        if shards.is_dir():
            for shard in sorted(shards.iterdir()):
                if not shard.is_dir():
                    continue
                contents = [p for p in shard.iterdir()
                            if p.name != CATALOG_NAME]
                if contents:
                    continue
                try:
                    catalog = shard / CATALOG_NAME
                    if catalog.exists():
                        catalog.unlink()
                    shard.rmdir()
                    report["empty_shards"].append(shard.name)
                except OSError:
                    pass
        return report

    def stats(self) -> dict:
        """Layout-level numbers for ``repro store stats``."""
        sharded = flat = payload_bytes = 0
        shard_names = set()
        for path in self.payload_paths():
            try:
                payload_bytes += path.stat().st_size
            except OSError:
                continue
            if path.parent.parent.name == SHARDS_DIR:
                sharded += 1
                shard_names.add(path.parent.name)
            else:
                flat += 1
        return {
            "root": str(self.root),
            "payloads": sharded + flat,
            "sharded": sharded,
            "flat": flat,
            "shards": len(shard_names),
            "payload_bytes": payload_bytes,
            "manifest": self.manifest_path().exists(),
        }


class ResultCache:
    """Content-keyed disk memoization of sweep result surfaces.

    The key is computed by the caller (the sweep runner) and is
    opaque here; this class only handles placement (sharded like the
    trace payloads), atomicity, the miss-on-corruption rule, LRU
    eviction by byte budget, and telemetry.
    """

    def __init__(self, root: os.PathLike,
                 budget_bytes: Optional[int] = None) -> None:
        self.root = Path(root) / RESULTS_DIR
        if budget_bytes is None:
            try:
                budget_bytes = int(
                    os.environ.get(ENV_RESULT_BUDGET,
                                   str(DEFAULT_RESULT_BUDGET)))
            except ValueError:
                budget_bytes = DEFAULT_RESULT_BUDGET
        self.budget_bytes = max(0, budget_bytes)
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    @staticmethod
    def enabled() -> bool:
        """False when ``REPRO_RESULT_CACHE=0`` (or ``off``/``false``)
        disables result memoization for the process."""
        return os.environ.get(ENV_RESULT_CACHE, "1").strip().lower() \
            not in ("0", "off", "false", "no")

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Existence probe -- no read, no counters, no injection.

        The harness uses this to decide scheduling; only a real
        :meth:`get` counts as a hit or a miss.
        """
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for *key*, or None on a miss.

        Any failure -- missing file, injected or real IO error, torn
        or corrupt JSON -- is a clean miss: the caller replays the
        sweep and overwrites the entry.  A hit refreshes the entry's
        mtime, which is the LRU clock eviction sorts by.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
            blob = faults.inject("store.result_cache", key=key,
                                 payload=blob)
            document = json.loads(blob.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            self.misses += 1
            telemetry.inc("result_cache.miss")
            return None
        if not isinstance(document, dict):
            self.misses += 1
            telemetry.inc("result_cache.miss")
            return None
        self.hits += 1
        telemetry.inc("result_cache.hit")
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:
            pass
        return document

    def put(self, key: str, payload: dict) -> None:
        """Store *payload* under *key* (atomic, best-effort), then
        enforce the byte budget."""
        if not _atomic_write(
                self.path_for(key),
                json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n"):
            return
        telemetry.inc("result_cache.put")
        self.evict()

    def _entries(self) -> List[Tuple[int, int, Path]]:
        """(mtime_ns, bytes, path) for every cache entry.

        Nanosecond mtime, not the float seconds: coarse-granularity
        filesystems (FAT, some network mounts, ext timestamps after a
        float round-trip) stamp whole batches of puts with the same
        second, and a float clock would then order eviction by
        whatever the directory scan happened to yield.
        """
        out = []
        if not self.root.is_dir():
            return out
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                out.append((stat.st_mtime_ns, stat.st_size, path))
        return out

    def evict(self) -> int:
        """Drop least-recently-used entries until under budget.

        Returns how many entries were removed.  Nanosecond mtime is
        the LRU clock (refreshed by :meth:`get`); exact ties -- same
        stamp on a coarse-granularity filesystem -- break by the
        entry's filename (the content key, unique and root-relative),
        so two processes evicting concurrently converge on the same
        survivors regardless of scan order or where the root is
        mounted.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for mtime_ns, size, path in sorted(
                entries, key=lambda item: (item[0], item[2].name)):
            if total <= self.budget_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            self.evicted += 1
            telemetry.inc("result_cache.evict")
        return removed

    def clear(self) -> int:
        """Remove every entry (CLI maintenance); the count removed."""
        removed = 0
        for _, _, path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "budget_bytes": self.budget_bytes,
            "enabled": self.enabled(),
        }
