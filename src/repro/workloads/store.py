"""The on-disk trace store: generate a workload once, load it forever.

Every consumer of the section-5 measurement traces (harness,
benchmarks, tests, examples) used to re-run the Fith interpreter from
scratch -- seconds of pure regeneration per process.  The store keys
each materialized trace by ``(spec name, parameters, generator
version)`` -- hashed into a content key -- and keeps it under
``.repro_traces/`` (override with ``REPRO_TRACE_DIR`` or the
``root`` argument) in the columnar binary format of
:mod:`repro.trace.columnar`: the payload *is* the in-memory column
set (three little-endian int columns plus the dispatched bitset,
each block carrying a CRC32 integrity trailer), so a load is four
bulk ``frombytes`` copies into a
:class:`~repro.trace.columnar.Trace` -- no per-event object is ever
constructed on the load path.

Cache rules:

* **key** -- sha256 over the canonical JSON of ``{name, version,
  format, params}``.  Different parameters or a bumped generator
  version produce a different key; nothing is ever invalidated in
  place.  ``format`` is the columnar payload version
  (:data:`repro.trace.columnar.FORMAT_VERSION`), so a layout change
  invalidates by missing, never by misreading.
* **write** -- to a temp file in the same directory then
  ``os.replace``, so concurrent writers (the parallel harness's
  workers) can race harmlessly: last atomic rename wins and both
  contents are identical by construction.
* **read** -- a file in a *legacy or foreign format* (wrong magic,
  old payload version) is a clean miss and regenerated in place.  A
  file in the *current* format that fails its integrity check (length
  or a CRC32 block trailer; see payload v3 in
  :mod:`repro.trace.columnar`) is **quarantined**: moved to
  ``quarantine/`` under the store root with a ``.reason.json``
  sidecar recording why, then regenerated.  Corruption is evidence of
  a disk/transfer problem -- it is preserved for inspection, never
  silently destroyed.  ``TraceStore.verify()`` (CLI: ``repro trace
  --verify``) audits every payload in the store the same way.

A JSON sidecar (same stem, ``.json``) records the human-readable
identity of each entry for ``python -m repro list``/``trace``.  The
sidecar is *regenerable metadata*: a missing or corrupt sidecar never
hides or invalidates a valid binary payload -- it is rewritten on
load (full fidelity, since the spec and parameters are in hand) and
reconstructed best-effort from the payload during enumeration.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro import faults, telemetry
from repro.errors import PayloadFormatError, StoreCorruption
from repro.trace.columnar import FORMAT_VERSION, Trace, as_trace
from repro.workloads.spec import WorkloadSpec, get as get_spec

#: Subdirectory (under the store root) corrupt payloads are moved to.
QUARANTINE_DIR = "quarantine"


def default_root() -> Path:
    """The store directory: $REPRO_TRACE_DIR or ./.repro_traces."""
    return Path(os.environ.get("REPRO_TRACE_DIR", ".repro_traces"))


class TraceStore:
    """Content-keyed trace cache with an in-process memo on top.

    ``hits``/``misses`` count disk-level outcomes (a memo hit does
    not touch the counters twice); ``generated`` counts actual
    generator executions -- the number the "no Fith re-execution"
    guarantee is asserted on.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.hits = 0
        self.misses = 0
        self.generated = 0
        self.quarantined = 0
        self._memo: Dict[str, Trace] = {}

    # -- keying ---------------------------------------------------------

    @staticmethod
    def key_for(spec: WorkloadSpec, params: Mapping[str, object]) -> str:
        identity = json.dumps(
            {"name": spec.name, "version": spec.version,
             "format": FORMAT_VERSION, "params": dict(params)},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def path_for(self, spec: WorkloadSpec,
                 params: Mapping[str, object]) -> Path:
        return self.root / f"{spec.name}-{self.key_for(spec, params)}.trace"

    # -- load / materialize ---------------------------------------------

    def load(self, name_or_spec, *, quick: bool = False,
             scale: Optional[int] = None,
             **overrides) -> Trace:
        """Load a workload's trace, generating and caching on miss."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        return self._load_resolved(spec, params)

    def ensure(self, name_or_spec, *, quick: bool = False,
               scale: Optional[int] = None,
               **overrides) -> Tuple[Path, bool]:
        """Materialize a workload on disk; returns (path, was_hit)."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        path = self.path_for(spec, params)
        before = self.generated
        self._load_resolved(spec, params)
        return path, self.generated == before

    def _load_resolved(self, spec: WorkloadSpec,
                       params: Mapping[str, object]) -> Trace:
        key = self.key_for(spec, params)
        memo = self._memo.get(key)
        if memo is not None:
            telemetry.inc("store.memo_hit")
            return memo
        path = self.root / f"{spec.name}-{key}.trace"
        with telemetry.span("store.load", workload=spec.name) as sp:
            events = self._read(path)
            if events is not None:
                self.hits += 1
                telemetry.inc("store.hit")
                sp.set(outcome="hit", events=len(events))
                if self._read_sidecar(path) is None:
                    self._write_sidecar(path, self._sidecar_meta(
                        spec.name, spec.version, params, events))
            else:
                self.misses += 1
                self.generated += 1
                telemetry.inc("store.miss")
                telemetry.inc("store.generated")
                events = spec.generate(params)
                self._write(path, spec, params, events)
                sp.set(outcome="generated", events=len(events))
        self._memo[key] = events
        return events

    # -- binary format --------------------------------------------------

    @staticmethod
    def serialize(events) -> bytes:
        """The columnar payload of a trace (or legacy event list)."""
        return as_trace(events).to_bytes()

    @staticmethod
    def deserialize(blob: bytes) -> Trace:
        """Columns straight from the payload; zero TraceEvent objects."""
        return Trace.from_bytes(blob)

    def _read(self, path: Path) -> Optional[Trace]:
        """Decode one stored payload, or None for a miss.

        Only *payload-decode* failures are misses: an unreadable file
        or a legacy/foreign format (``PayloadFormatError``).  A
        current-format payload that fails its integrity check is
        quarantined (still a miss, but preserved and counted), and
        any other exception -- a genuine programming error -- is NOT
        swallowed: it propagates.
        """
        try:
            blob = path.read_bytes()
            blob = faults.inject("store.read", key=path.name,
                                 payload=blob)
        except OSError:
            return None
        try:
            return self.deserialize(blob)
        except PayloadFormatError:
            return None  # legacy layout or foreign file: a clean miss
        except StoreCorruption as error:
            self.quarantine(path, error.reason)
            return None

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt payload (and sidecar) into ``quarantine/``.

        Writes a ``<name>.reason.json`` sidecar recording why.  Best
        effort: quarantining is bookkeeping around a miss and must
        never fail the load; returns the destination or None.
        """
        destination = None
        try:
            qdir = self.root / QUARANTINE_DIR
            qdir.mkdir(parents=True, exist_ok=True)
            destination = qdir / path.name
            os.replace(path, destination)
        except OSError:
            return None
        self.quarantined += 1
        telemetry.inc("store.quarantined")
        telemetry.event("store.quarantine", file=path.name, reason=reason)
        sidecar = path.with_suffix(".json")
        try:
            os.replace(sidecar, qdir / sidecar.name)
        except OSError:
            pass  # the sidecar is regenerable metadata anyway
        try:
            (qdir / f"{path.name}.reason.json").write_text(json.dumps(
                {"file": path.name, "reason": reason,
                 "quarantined_at": time.strftime(
                     "%Y-%m-%dT%H:%M:%S%z")},
                indent=2, sort_keys=True) + "\n")
        except OSError:
            pass
        return destination

    def verify(self) -> dict:
        """Audit every payload in the store; quarantine the corrupt.

        Returns ``{"checked", "ok", "stale", "corrupt"}`` where
        ``stale`` lists legacy-format files (harmless misses, left in
        place) and ``corrupt`` lists ``(name, reason)`` pairs for
        current-format payloads that failed integrity and were moved
        to quarantine.
        """
        report = {"checked": 0, "ok": 0, "stale": [], "corrupt": []}
        for path in sorted(self.root.glob("*.trace")):
            report["checked"] += 1
            try:
                self.deserialize(path.read_bytes())
            except PayloadFormatError:
                report["stale"].append(path.name)
            except StoreCorruption as error:
                self.quarantine(path, error.reason)
                report["corrupt"].append((path.name, error.reason))
            except OSError as error:
                report["corrupt"].append((path.name, str(error)))
            else:
                report["ok"] += 1
        return report

    def _write(self, path: Path, spec: WorkloadSpec,
               params: Mapping[str, object], events: Trace) -> None:
        try:
            with telemetry.span("store.write", file=path.name) as sp:
                self.root.mkdir(parents=True, exist_ok=True)
                blob = self.serialize(events)
                blob = faults.inject("store.write", key=path.name,
                                     payload=blob)
                sp.set(bytes=len(blob))
                fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                           prefix=path.stem, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            self._write_sidecar(path, self._sidecar_meta(
                spec.name, spec.version, params, events))
        except OSError:
            # The store is a cache: failing to persist must never fail
            # the run that produced the trace.
            pass

    # -- sidecar metadata -----------------------------------------------

    @staticmethod
    def _sidecar_meta(name: str, version,
                      params: Optional[Mapping[str, object]],
                      events) -> dict:
        trace = as_trace(events)
        return {
            "workload": name,
            "version": version,
            "format": FORMAT_VERSION,
            "params": None if params is None else {
                k: repr(v) if not isinstance(
                    v, (int, float, str, bool, type(None))) else v
                for k, v in params.items()},
            "events": len(trace),
            "dispatched": trace.dispatched_count(),
        }

    @staticmethod
    def _read_sidecar(path: Path) -> Optional[dict]:
        """The trace's sidecar dict, or None when missing/corrupt."""
        try:
            meta = json.loads(path.with_suffix(".json").read_text())
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) and "workload" in meta \
            else None

    @staticmethod
    def _write_sidecar(path: Path, meta: dict) -> None:
        try:
            path.with_suffix(".json").write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass  # regenerable metadata: never fail the load

    # -- introspection --------------------------------------------------

    def entries(self) -> List[dict]:
        """Sidecar metadata for every materialized trace.

        Enumerates the binary payloads, not the sidecars: a trace
        whose sidecar is missing or corrupt is still listed, with its
        metadata reconstructed from the payload (workload name from
        the file name, event counts from the columns; the generator
        version and parameters are unrecoverable and marked so) and
        the sidecar healed on disk for the next caller.
        """
        out = []
        for trace_path in sorted(self.root.glob("*.trace")):
            meta = self._read_sidecar(trace_path)
            if meta is None:
                events = self._read(trace_path)
                if events is None:
                    continue  # corrupt payload: a miss, not an entry
                name = trace_path.stem.rsplit("-", 1)[0]
                meta = self._sidecar_meta(name, None, None, events)
                meta["recovered"] = True
                self._write_sidecar(trace_path, meta)
            meta["path"] = str(trace_path)
            out.append(meta)
        return out

    def cached_names(self) -> Dict[str, int]:
        """workload name -> number of materialized parameterizations."""
        counts: Dict[str, int] = {}
        for meta in self.entries():
            name = meta.get("workload")
            if name:
                counts[name] = counts.get(name, 0) + 1
        return counts


_DEFAULT: Optional[TraceStore] = None


def default_store() -> TraceStore:
    """The process-wide store rooted at :func:`default_root`."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.root != default_root():
        _DEFAULT = TraceStore()
    return _DEFAULT
