"""The on-disk trace store: generate a workload once, load it forever.

Every consumer of the section-5 measurement traces (harness,
benchmarks, tests, examples) used to re-run the Fith interpreter from
scratch -- seconds of pure regeneration per process.  The store keys
each materialized trace by ``(spec name, parameters, generator
version)`` -- hashed into a content key -- and keeps it under
``.repro_traces/`` (override with ``REPRO_TRACE_DIR`` or the
``root`` argument) in the columnar binary format of
:mod:`repro.trace.columnar`: the payload *is* the in-memory column
set (three little-endian int columns plus the dispatched bitset), so
a load is four bulk ``frombytes`` copies into a
:class:`~repro.trace.columnar.Trace` -- no per-event object is ever
constructed on the load path.

Cache rules:

* **key** -- sha256 over the canonical JSON of ``{name, version,
  format, params}``.  Different parameters or a bumped generator
  version produce a different key; nothing is ever invalidated in
  place.  ``format`` is the columnar payload version
  (:data:`repro.trace.columnar.FORMAT_VERSION`), so a layout change
  invalidates by missing, never by misreading.
* **write** -- to a temp file in the same directory then
  ``os.replace``, so concurrent writers (the parallel harness's
  workers) can race harmlessly: last atomic rename wins and both
  contents are identical by construction.
* **read** -- a corrupt or truncated file is treated as a miss and
  regenerated.

A JSON sidecar (same stem, ``.json``) records the human-readable
identity of each entry for ``python -m repro list``/``trace``.  The
sidecar is *regenerable metadata*: a missing or corrupt sidecar never
hides or invalidates a valid binary payload -- it is rewritten on
load (full fidelity, since the spec and parameters are in hand) and
reconstructed best-effort from the payload during enumeration.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.trace.columnar import FORMAT_VERSION, Trace, as_trace
from repro.workloads.spec import WorkloadSpec, get as get_spec


def default_root() -> Path:
    """The store directory: $REPRO_TRACE_DIR or ./.repro_traces."""
    return Path(os.environ.get("REPRO_TRACE_DIR", ".repro_traces"))


class TraceStore:
    """Content-keyed trace cache with an in-process memo on top.

    ``hits``/``misses`` count disk-level outcomes (a memo hit does
    not touch the counters twice); ``generated`` counts actual
    generator executions -- the number the "no Fith re-execution"
    guarantee is asserted on.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.hits = 0
        self.misses = 0
        self.generated = 0
        self._memo: Dict[str, Trace] = {}

    # -- keying ---------------------------------------------------------

    @staticmethod
    def key_for(spec: WorkloadSpec, params: Mapping[str, object]) -> str:
        identity = json.dumps(
            {"name": spec.name, "version": spec.version,
             "format": FORMAT_VERSION, "params": dict(params)},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    def path_for(self, spec: WorkloadSpec,
                 params: Mapping[str, object]) -> Path:
        return self.root / f"{spec.name}-{self.key_for(spec, params)}.trace"

    # -- load / materialize ---------------------------------------------

    def load(self, name_or_spec, *, quick: bool = False,
             scale: Optional[int] = None,
             **overrides) -> Trace:
        """Load a workload's trace, generating and caching on miss."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        return self._load_resolved(spec, params)

    def ensure(self, name_or_spec, *, quick: bool = False,
               scale: Optional[int] = None,
               **overrides) -> Tuple[Path, bool]:
        """Materialize a workload on disk; returns (path, was_hit)."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        path = self.path_for(spec, params)
        before = self.generated
        self._load_resolved(spec, params)
        return path, self.generated == before

    def _load_resolved(self, spec: WorkloadSpec,
                       params: Mapping[str, object]) -> Trace:
        key = self.key_for(spec, params)
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        path = self.root / f"{spec.name}-{key}.trace"
        events = self._read(path)
        if events is not None:
            self.hits += 1
            if self._read_sidecar(path) is None:
                self._write_sidecar(path, self._sidecar_meta(
                    spec.name, spec.version, params, events))
        else:
            self.misses += 1
            self.generated += 1
            events = spec.generate(params)
            self._write(path, spec, params, events)
        self._memo[key] = events
        return events

    # -- binary format --------------------------------------------------

    @staticmethod
    def serialize(events) -> bytes:
        """The columnar payload of a trace (or legacy event list)."""
        return as_trace(events).to_bytes()

    @staticmethod
    def deserialize(blob: bytes) -> Trace:
        """Columns straight from the payload; zero TraceEvent objects."""
        return Trace.from_bytes(blob)

    def _read(self, path: Path) -> Optional[Trace]:
        try:
            return self.deserialize(path.read_bytes())
        except (OSError, ValueError):
            return None

    def _write(self, path: Path, spec: WorkloadSpec,
               params: Mapping[str, object], events: Trace) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            blob = self.serialize(events)
            fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                       prefix=path.stem, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._write_sidecar(path, self._sidecar_meta(
                spec.name, spec.version, params, events))
        except OSError:
            # The store is a cache: failing to persist must never fail
            # the run that produced the trace.
            pass

    # -- sidecar metadata -----------------------------------------------

    @staticmethod
    def _sidecar_meta(name: str, version,
                      params: Optional[Mapping[str, object]],
                      events) -> dict:
        trace = as_trace(events)
        return {
            "workload": name,
            "version": version,
            "format": FORMAT_VERSION,
            "params": None if params is None else {
                k: repr(v) if not isinstance(
                    v, (int, float, str, bool, type(None))) else v
                for k, v in params.items()},
            "events": len(trace),
            "dispatched": trace.dispatched_count(),
        }

    @staticmethod
    def _read_sidecar(path: Path) -> Optional[dict]:
        """The trace's sidecar dict, or None when missing/corrupt."""
        try:
            meta = json.loads(path.with_suffix(".json").read_text())
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) and "workload" in meta \
            else None

    @staticmethod
    def _write_sidecar(path: Path, meta: dict) -> None:
        try:
            path.with_suffix(".json").write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass  # regenerable metadata: never fail the load

    # -- introspection --------------------------------------------------

    def entries(self) -> List[dict]:
        """Sidecar metadata for every materialized trace.

        Enumerates the binary payloads, not the sidecars: a trace
        whose sidecar is missing or corrupt is still listed, with its
        metadata reconstructed from the payload (workload name from
        the file name, event counts from the columns; the generator
        version and parameters are unrecoverable and marked so) and
        the sidecar healed on disk for the next caller.
        """
        out = []
        for trace_path in sorted(self.root.glob("*.trace")):
            meta = self._read_sidecar(trace_path)
            if meta is None:
                events = self._read(trace_path)
                if events is None:
                    continue  # corrupt payload: a miss, not an entry
                name = trace_path.stem.rsplit("-", 1)[0]
                meta = self._sidecar_meta(name, None, None, events)
                meta["recovered"] = True
                self._write_sidecar(trace_path, meta)
            meta["path"] = str(trace_path)
            out.append(meta)
        return out

    def cached_names(self) -> Dict[str, int]:
        """workload name -> number of materialized parameterizations."""
        counts: Dict[str, int] = {}
        for meta in self.entries():
            name = meta.get("workload")
            if name:
                counts[name] = counts.get(name, 0) + 1
        return counts


_DEFAULT: Optional[TraceStore] = None


def default_store() -> TraceStore:
    """The process-wide store rooted at :func:`default_root`."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.root != default_root():
        _DEFAULT = TraceStore()
    return _DEFAULT
