"""The on-disk trace store: generate a workload once, load it forever.

Every consumer of the section-5 measurement traces (harness,
benchmarks, tests, examples) used to re-run the Fith interpreter from
scratch -- seconds of pure regeneration per process.  The store keys
each materialized trace by ``(spec name, parameters, generator
version)`` -- hashed into a content key -- and keeps it under
``.repro_traces/`` (override with ``REPRO_TRACE_DIR`` or the ``root``
argument) in the columnar binary format of
:mod:`repro.trace.columnar`.

Layout (see :mod:`repro.workloads.library`): payloads live sharded
under ``shards/<key[:2]>/``, with per-shard catalogs and a top-level
``manifest.json`` -- both regenerable indexes, never authoritative.
Legacy *flat* payloads at the store root keep working unmigrated
(reads check the shard first, then the root); ``repro store migrate``
adopts them.  Sweep results are memoized under ``results/`` by the
:class:`~repro.workloads.library.ResultCache`.

Load path: on a little-endian host with no fault plan armed, a hit is
**memory-mapped** -- :meth:`~repro.trace.columnar.Trace.from_buffer`
builds the columns as zero-copy views over the mapping (the
``store.mmap_open`` counter), per-block CRC32 checks deferred to
first touch.  The store owns every mapping it opens;
:meth:`TraceStore.close` releases them (after which the mapped traces
raise the typed :class:`~repro.errors.MappedBufferClosed`; use
:meth:`~repro.trace.columnar.Trace.copy` first to keep data).  The
copying ``read -> from_bytes`` path remains for big-endian hosts,
for ``REPRO_STORE_MMAP=0``, and whenever a fault plan is armed --
payload-mutating chaos needs the byte stream, and this keeps
injection sequences identical to the pre-mmap store.

Cache rules:

* **key** -- sha256 over the canonical JSON of ``{name, version,
  format, params}``.  Different parameters or a bumped generator
  version produce a different key; nothing is ever invalidated in
  place.  ``format`` is the columnar payload version
  (:data:`repro.trace.columnar.FORMAT_VERSION`), so a layout change
  invalidates by missing, never by misreading.
* **write** -- to a temp file in the same directory then
  ``os.replace``, so concurrent writers (the parallel harness's
  workers) can race harmlessly: last atomic rename wins and both
  contents are identical by construction.
* **read** -- a file in a *legacy or foreign format* (wrong magic,
  old payload version) is a clean miss and regenerated in place.  A
  file in the *current* format that fails its integrity check (length
  or a CRC32 block trailer; see payload v3 in
  :mod:`repro.trace.columnar`) is **quarantined**: moved to
  ``quarantine/`` under the store root with a ``.reason.json``
  sidecar recording why, then regenerated.  Corruption is evidence of
  a disk/transfer problem -- it is preserved for inspection, never
  silently destroyed.  On the mmap path the structural checks stay
  eager (same quarantine flow) while per-block CRC failures surface
  at first column touch as :class:`~repro.errors.StoreCorruption`;
  ``TraceStore.verify()`` (CLI: ``repro trace --verify`` / ``repro
  store verify``) audits every payload eagerly either way, and
  additionally cross-checks each sidecar's recorded identity against
  the content key in the filename, *reporting* (never quarantining)
  sidecars that misdescribe a healthy payload.

A JSON sidecar (same stem, ``.json``) records the human-readable
identity of each entry for ``python -m repro list``/``trace``.  The
sidecar is *regenerable metadata*: a missing or corrupt sidecar never
hides or invalidates a valid binary payload -- it is rewritten on
load (full fidelity, since the spec and parameters are in hand) and
reconstructed best-effort from the payload during enumeration.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro import faults, telemetry
from repro.errors import PayloadFormatError, StoreCorruption
from repro.trace.columnar import (FORMAT_VERSION, MappedTrace, Trace,
                                  as_trace)
from repro.workloads.library import ResultCache, TraceLibrary
from repro.workloads.spec import WorkloadSpec, get as get_spec

#: Subdirectory (under the store root) corrupt payloads are moved to.
QUARANTINE_DIR = "quarantine"

#: ``REPRO_STORE_MMAP=0`` forces the copying read path everywhere
#: (debugging aid; also useful on filesystems where mapping is slow).
ENV_MMAP = "REPRO_STORE_MMAP"


def default_root() -> Path:
    """The store directory: $REPRO_TRACE_DIR or ./.repro_traces."""
    return Path(os.environ.get("REPRO_TRACE_DIR", ".repro_traces"))


class TraceStore:
    """Content-keyed trace cache with an in-process memo on top.

    ``hits``/``misses`` count disk-level outcomes (a memo hit does
    not touch the counters twice); ``generated`` counts actual
    generator executions -- the number the "no Fith re-execution"
    guarantee is asserted on.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.library = TraceLibrary(self.root)
        self.hits = 0
        self.misses = 0
        self.generated = 0
        self.quarantined = 0
        self._memo: Dict[str, Trace] = {}
        #: (mmap, MappedTrace) pairs this store opened; released by
        #: :meth:`close`.
        self._mapped: List[Tuple[mmap.mmap, MappedTrace]] = []

    # -- keying ---------------------------------------------------------

    @staticmethod
    def _identity_key(name: str, version, params) -> str:
        identity = json.dumps(
            {"name": name, "version": version,
             "format": FORMAT_VERSION, "params": dict(params)},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(identity.encode()).hexdigest()[:20]

    @staticmethod
    def key_for(spec: WorkloadSpec, params: Mapping[str, object]) -> str:
        return TraceStore._identity_key(spec.name, spec.version, params)

    def path_for(self, spec: WorkloadSpec,
                 params: Mapping[str, object]) -> Path:
        """The canonical (sharded) location of one trace payload."""
        key = self.key_for(spec, params)
        return self.library.shard_path(f"{spec.name}-{key}.trace", key)

    def _locate(self, name: str, key: str) -> Path:
        """Where to read a payload: the shard when present, a legacy
        flat file when one exists unmigrated, the shard otherwise
        (the canonical home a fresh write will create)."""
        filename = f"{name}-{key}.trace"
        sharded = self.library.shard_path(filename, key)
        if sharded.exists():
            return sharded
        flat = self.root / filename
        if flat.exists():
            return flat
        return sharded

    # -- load / materialize ---------------------------------------------

    def load(self, name_or_spec, *, quick: bool = False,
             scale: Optional[int] = None,
             **overrides) -> Trace:
        """Load a workload's trace, generating and caching on miss."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        return self._load_resolved(spec, params)

    def trace_key(self, name_or_spec, *, quick: bool = False,
                  scale: Optional[int] = None, **overrides) -> str:
        """The content key a load would use, without touching disk.

        The harness's result-cache probe needs this key (it
        parameterizes the sweep-result cache) *before* deciding
        whether an experiment has to be scheduled at all, so it must
        not cost a payload read or a generator run.
        """
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        return self.key_for(spec, params)

    def ensure(self, name_or_spec, *, quick: bool = False,
               scale: Optional[int] = None,
               **overrides) -> Tuple[Path, bool]:
        """Materialize a workload on disk; returns (path, was_hit)."""
        spec = (name_or_spec if isinstance(name_or_spec, WorkloadSpec)
                else get_spec(name_or_spec))
        params = spec.resolve(quick=quick, scale=scale,
                              overrides=overrides)
        key = self.key_for(spec, params)
        before = self.generated
        self._load_resolved(spec, params)
        return self._locate(spec.name, key), self.generated == before

    def _load_resolved(self, spec: WorkloadSpec,
                       params: Mapping[str, object]) -> Trace:
        key = self.key_for(spec, params)
        memo = self._memo.get(key)
        if memo is not None:
            telemetry.inc("store.memo_hit")
            return memo
        path = self._locate(spec.name, key)
        with telemetry.span("store.load", workload=spec.name) as sp:
            events = self._read(path)
            if events is not None:
                self.hits += 1
                telemetry.inc("store.hit")
                sp.set(outcome="hit", events=len(events),
                       mapped=isinstance(events, MappedTrace))
                if self._read_sidecar(path) is None:
                    self._write_sidecar(path, self._sidecar_meta(
                        spec.name, spec.version, params, events))
            else:
                self.misses += 1
                self.generated += 1
                telemetry.inc("store.miss")
                telemetry.inc("store.generated")
                events = as_trace(spec.generate(params))
                # Writes always land in the shard: the store adopts
                # the new layout one (re)generated payload at a time.
                path = self.path_for(spec, params)
                self._write(path, spec, params, events, key)
                sp.set(outcome="generated", events=len(events))
        events.store_key = key
        events.store_root = str(self.root)
        self._memo[key] = events
        return events

    # -- binary format --------------------------------------------------

    @staticmethod
    def serialize(events) -> bytes:
        """The columnar payload of a trace (or legacy event list)."""
        return as_trace(events).to_bytes()

    @staticmethod
    def deserialize(blob: bytes) -> Trace:
        """Columns straight from the payload; zero TraceEvent objects."""
        return Trace.from_bytes(blob)

    def _mmap_enabled(self) -> bool:
        """Zero-copy reads apply only when nothing needs the byte
        stream: chaos plans mutate payload bytes in flight, so any
        armed plan routes reads through the legacy path (keeping
        injection sequences identical to the pre-mmap store)."""
        if os.environ.get(ENV_MMAP, "1").strip().lower() in (
                "0", "off", "false", "no"):
            return False
        if self.deserialize is not _DEFAULT_DESERIALIZE:
            # A subclass (or a test) replaced the payload decoder;
            # the zero-copy path would bypass it, so honor the
            # override by reading bytes through it instead.
            return False
        return faults.active_plan() is None

    def _read_mapped(self, path: Path) -> Tuple[bool, Optional[Trace]]:
        """(handled, trace): ``handled=False`` falls back to the
        copying read path (open/map failed -- missing file, an empty
        file mmap refuses, a directory in the way)."""
        try:
            with open(path, "rb") as handle:
                mapping = mmap.mmap(handle.fileno(), 0,
                                    access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            return False, None
        try:
            trace = Trace.from_buffer(mapping)
        except PayloadFormatError:
            mapping.close()
            return True, None  # legacy layout or foreign file: a miss
        except StoreCorruption as error:
            mapping.close()
            self.quarantine(path, error.reason)
            return True, None
        if isinstance(trace, MappedTrace):
            try:
                # Zero-copy eager integrity: CRC32 straight over the
                # mapped pages, so the load-time quarantine contract
                # holds on this path too (no byte buffers built).
                trace.verify()
            except StoreCorruption as error:
                trace.close()
                try:
                    mapping.close()
                except BufferError:  # pragma: no cover - defensive
                    pass
                self.quarantine(path, error.reason)
                return True, None
            self._mapped.append((mapping, trace))
            telemetry.inc("store.mmap_open")
        else:
            # A big-endian host fell back to the copying decoder
            # inside from_buffer; the mapping has served its purpose.
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        return True, trace

    def _read(self, path: Path) -> Optional[Trace]:
        """Decode one stored payload, or None for a miss.

        Only *payload-decode* failures are misses: an unreadable file
        or a legacy/foreign format (``PayloadFormatError``).  A
        current-format payload that fails its integrity check is
        quarantined (still a miss, but preserved and counted), and
        any other exception -- a genuine programming error -- is NOT
        swallowed: it propagates.
        """
        if self._mmap_enabled():
            handled, trace = self._read_mapped(path)
            if handled:
                return trace
        try:
            blob = path.read_bytes()
            blob = faults.inject("store.read", key=path.name,
                                 payload=blob)
        except OSError:
            return None
        try:
            return self.deserialize(blob)
        except PayloadFormatError:
            return None  # legacy layout or foreign file: a clean miss
        except StoreCorruption as error:
            self.quarantine(path, error.reason)
            return None

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt payload (and sidecar) into ``quarantine/``.

        Writes a ``<name>.reason.json`` sidecar recording why.  Best
        effort: quarantining is bookkeeping around a miss and must
        never fail the load; returns the destination or None.
        """
        destination = None
        try:
            qdir = self.root / QUARANTINE_DIR
            qdir.mkdir(parents=True, exist_ok=True)
            destination = qdir / path.name
            os.replace(path, destination)
        except OSError:
            return None
        self.quarantined += 1
        telemetry.inc("store.quarantined")
        telemetry.event("store.quarantine", file=path.name, reason=reason)
        sidecar = path.with_suffix(".json")
        try:
            os.replace(sidecar, qdir / sidecar.name)
        except OSError:
            pass  # the sidecar is regenerable metadata anyway
        try:
            (qdir / f"{path.name}.reason.json").write_text(json.dumps(
                {"file": path.name, "reason": reason,
                 "quarantined_at": time.strftime(
                     "%Y-%m-%dT%H:%M:%S%z")},
                indent=2, sort_keys=True) + "\n")
        except OSError:
            pass
        from repro.workloads.library import key_of_payload
        self.library.forget_entry(key_of_payload(path))
        return destination

    def _sidecar_mismatch(self, path: Path) -> Optional[str]:
        """Why this payload's sidecar misdescribes it, or None.

        Cross-checks (a) the sidecar's recorded identity against the
        content key in the filename -- only when every parameter
        survived the sidecar round-trip as a JSON primitive, since
        ``repr``-stringified parameters cannot be re-keyed faithfully
        -- and (b) the recorded event/dispatched counts against the
        payload columns.  A mismatch means the *sidecar* is stale
        (the payload already passed its CRC audit); it is reported
        for repair, never quarantined.
        """
        meta = self._read_sidecar(path)
        if meta is None:
            return None  # missing/corrupt sidecars are healed on load
        filename_key = path.stem.rsplit("-", 1)[-1]
        params = meta.get("params")
        if isinstance(params, dict) and all(
                isinstance(value, (int, float, str, bool, type(None)))
                for value in params.values()) \
                and "workload" in meta and "version" in meta:
            recorded = self._identity_key(meta["workload"],
                                          meta["version"], params)
            if recorded != filename_key:
                return (f"sidecar identity keys to {recorded}, "
                        f"file is keyed {filename_key}")
        expected = (meta.get("events"), meta.get("dispatched"))
        if all(isinstance(value, int) for value in expected):
            try:
                trace = self.deserialize(path.read_bytes())
            except (OSError, ValueError):
                return None  # the payload audit already covered this
            actual = (len(trace), trace.dispatched_count())
            if expected != actual:
                return (f"sidecar records events/dispatched "
                        f"{expected[0]}/{expected[1]}, payload has "
                        f"{actual[0]}/{actual[1]}")
        return None

    def verify(self) -> dict:
        """Audit every payload in the store; quarantine the corrupt.

        Returns ``{"checked", "ok", "stale", "corrupt",
        "mismatched"}`` where ``stale`` lists legacy-format files
        (harmless misses, left in place), ``corrupt`` lists ``(name,
        reason)`` pairs for current-format payloads that failed
        integrity and were moved to quarantine, and ``mismatched``
        lists ``(name, reason)`` pairs whose payload is healthy but
        whose sidecar misdescribes it (stale metadata: reported so it
        can be repaired, not quarantined -- the payload is the truth).
        """
        report = {"checked": 0, "ok": 0, "stale": [], "corrupt": [],
                  "mismatched": []}
        for path in self.library.payload_paths():
            report["checked"] += 1
            try:
                self.deserialize(path.read_bytes())
            except PayloadFormatError:
                report["stale"].append(path.name)
            except StoreCorruption as error:
                self.quarantine(path, error.reason)
                report["corrupt"].append((path.name, error.reason))
            except OSError as error:
                report["corrupt"].append((path.name, str(error)))
            else:
                report["ok"] += 1
                mismatch = self._sidecar_mismatch(path)
                if mismatch is not None:
                    report["mismatched"].append((path.name, mismatch))
        return report

    def _write(self, path: Path, spec: WorkloadSpec,
               params: Mapping[str, object], events: Trace,
               key: str) -> None:
        try:
            with telemetry.span("store.write", file=path.name) as sp:
                path.parent.mkdir(parents=True, exist_ok=True)
                blob = self.serialize(events)
                blob = faults.inject("store.write", key=path.name,
                                     payload=blob)
                sp.set(bytes=len(blob))
                fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                           prefix=path.stem, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            self._write_sidecar(path, self._sidecar_meta(
                spec.name, spec.version, params, events))
            self.library.record_entry(path, key)
        except OSError:
            # The store is a cache: failing to persist must never fail
            # the run that produced the trace.
            pass

    # -- result cache ----------------------------------------------------

    def result_cache(self) -> ResultCache:
        """The sweep-result cache rooted under this store."""
        return ResultCache(self.root)

    # -- lifetime --------------------------------------------------------

    def close(self) -> None:
        """Release every memory mapping this store opened.

        Mapped traces handed out by :meth:`load` raise
        :class:`~repro.errors.MappedBufferClosed` afterwards; column
        views sliced out *before* the close stay valid (each pins the
        mapping until it is itself released).  Idempotent.
        """
        for mapping, trace in self._mapped:
            trace.close()
            try:
                mapping.close()
            except BufferError:
                # A caller still holds a column view; the mapping is
                # unmapped when the last view goes away.
                pass
        self._mapped.clear()
        self._memo.clear()

    # -- sidecar metadata -----------------------------------------------

    @staticmethod
    def _sidecar_meta(name: str, version,
                      params: Optional[Mapping[str, object]],
                      events) -> dict:
        trace = as_trace(events)
        return {
            "workload": name,
            "version": version,
            "format": FORMAT_VERSION,
            "params": None if params is None else {
                k: repr(v) if not isinstance(
                    v, (int, float, str, bool, type(None))) else v
                for k, v in params.items()},
            "events": len(trace),
            "dispatched": trace.dispatched_count(),
        }

    @staticmethod
    def _read_sidecar(path: Path) -> Optional[dict]:
        """The trace's sidecar dict, or None when missing/corrupt."""
        try:
            meta = json.loads(path.with_suffix(".json").read_text())
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) and "workload" in meta \
            else None

    @staticmethod
    def _write_sidecar(path: Path, meta: dict) -> None:
        try:
            path.with_suffix(".json").write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass  # regenerable metadata: never fail the load

    # -- introspection --------------------------------------------------

    def entries(self) -> List[dict]:
        """Sidecar metadata for every materialized trace.

        Enumerates the binary payloads (sharded and legacy flat), not
        the sidecars: a trace whose sidecar is missing or corrupt is
        still listed, with its metadata reconstructed from the
        payload (workload name from the file name, event counts from
        the columns; the generator version and parameters are
        unrecoverable and marked so) and the sidecar healed on disk
        for the next caller.
        """
        out = []
        for trace_path in self.library.payload_paths():
            meta = self._read_sidecar(trace_path)
            if meta is None:
                events = self._read(trace_path)
                if events is None:
                    continue  # corrupt payload: a miss, not an entry
                name = trace_path.stem.rsplit("-", 1)[0]
                meta = self._sidecar_meta(name, None, None, events)
                meta["recovered"] = True
                self._write_sidecar(trace_path, meta)
            meta["path"] = str(trace_path)
            out.append(meta)
        return out

    def cached_names(self) -> Dict[str, int]:
        """workload name -> number of materialized parameterizations."""
        counts: Dict[str, int] = {}
        for meta in self.entries():
            name = meta.get("workload")
            if name:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def stats(self) -> dict:
        """Layout + result-cache numbers for ``repro store stats``."""
        stats = self.library.stats()
        stats["quarantined"] = len(list(
            (self.root / QUARANTINE_DIR).glob("*.trace"))) \
            if (self.root / QUARANTINE_DIR).is_dir() else 0
        stats["result_cache"] = self.result_cache().stats()
        return stats


#: The stock payload decoder; the mmap fast path only applies while
#: it is in place (see :meth:`TraceStore._mmap_enabled`).
_DEFAULT_DESERIALIZE = TraceStore.deserialize

_DEFAULT: Optional[TraceStore] = None


def default_store() -> TraceStore:
    """The process-wide store rooted at :func:`default_root`."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.root != default_root():
        _DEFAULT = TraceStore()
    return _DEFAULT
