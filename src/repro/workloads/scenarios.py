"""The registered scenario catalogue.

Importing this module populates the workload registry
(:mod:`repro.workloads.spec`).  Two kinds of entries:

* ports of the original hand-wired traces (``paper``,
  ``interleaved``, ``monomorphic``) -- same generators, same
  calibrated defaults, now named, parameterized and cached;
* new stress scenarios (``gc-churn``, ``megamorphic``,
  ``deep-calls``, ``redefine-churn``) that each exaggerate one
  mechanism the paper's architecture bets on.

Adding a scenario is one generator function plus one
:func:`workload` registration -- about ten lines; the CLI, harness,
store and tests pick it up automatically.
"""

from __future__ import annotations

from repro.config import make_fith
from repro.fith.programs import (
    deep_calls,
    gc_churn,
    megamorphic,
    redefinition_epoch,
)
from repro.trace.columnar import Trace
from repro.trace.workloads import (
    interleaved_trace,
    monomorphic_trace,
    paper_trace,
)
from repro.workloads.spec import WorkloadSpec, register

_MAX_STEPS = 50_000_000


def workload(name: str, description: str, *, defaults=None, quick=None,
             version: int = 1):
    """Decorator: register the function as a workload generator."""
    def wrap(build):
        register(WorkloadSpec(
            name=name, description=description, build=build,
            defaults=dict(defaults or {}),
            quick_overrides=dict(quick or {}), version=version))
        return build
    return wrap


def _run_traced(source: str) -> Trace:
    machine = make_fith(trace=True)
    machine.run_source(source, max_steps=_MAX_STEPS)
    return machine.trace.snapshot()


# -- ports of the original hand-wired traces ---------------------------

register(WorkloadSpec(
    name="paper",
    description=("the section-5 measurement trace: the whole Fith "
                 "corpus plus the calibrated polymorphic workload "
                 "(figures 10 and 11 run on this)"),
    build=paper_trace,
    defaults={"scale": 1, "classes": 20, "selectors": 32, "rounds": 450,
              "phase_length": 700, "stray_percent": 2,
              "hot_selectors": 10},
    quick_overrides={"phase_length": 280},
    version=1,
))

register(WorkloadSpec(
    name="interleaved",
    description=("the corpus round-robin interleaved in fixed-size "
                 "slices: a multiprogramming workload with "
                 "alternating working sets"),
    build=interleaved_trace,
    defaults={"scale": 1, "chunk": 2000},
    version=1,
))

register(WorkloadSpec(
    name="monomorphic",
    description=("degenerate single-key trace; the control case for "
                 "cache experiments"),
    build=monomorphic_trace,
    defaults={"length": 20_000},
    quick_overrides={"length": 5_000},
    version=1,
))


# -- new stress scenarios ----------------------------------------------

@workload(
    "gc-churn",
    "allocation churn: a rotating window of short-lived objects "
    "(new/put-dominated traffic, a moving object population)",
    defaults={"scale": 1, "slots": 16, "batch": 48},
)
def _gc_churn_events(scale: int = 1, slots: int = 16,
                     batch: int = 48) -> Trace:
    return _run_traced(gc_churn(scale, slots=slots, batch=batch))


@workload(
    "megamorphic",
    "megamorphic dispatch storm: one call site cycling through N "
    "receiver classes (worst case for translation caches)",
    defaults={"scale": 1, "classes": 26},
)
def _megamorphic_events(scale: int = 1,
                        classes: int = 26) -> Trace:
    return _run_traced(megamorphic(scale, classes=classes))


@workload(
    "deep-calls",
    "deep-recursion call stress: single and mutual recursion to "
    "depths far past the 32-block context cache",
    defaults={"scale": 1, "depth": 500},
    quick={"depth": 200},
)
def _deep_calls_events(scale: int = 1,
                       depth: int = 500) -> Trace:
    return _run_traced(deep_calls(scale, depth=depth))


@workload(
    "redefine-churn",
    "method-redefinition churn: reload epochs redefine every class's "
    "method, shooting down send translations (the PR-1 predecode "
    "invalidation path) and shifting the code footprint",
    defaults={"scale": 1, "epochs": 8, "classes": 6},
    quick={"epochs": 4},
)
def _redefine_churn_events(scale: int = 1, epochs: int = 8,
                           classes: int = 6) -> Trace:
    machine = make_fith(trace=True)
    for epoch in range(epochs):
        machine.load(redefinition_epoch(epoch, scale, classes=classes))
        machine.run(max_steps=_MAX_STEPS)
    return machine.trace.snapshot()
