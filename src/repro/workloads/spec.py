"""The workload registry: named, parameterized scenario generators.

A :class:`WorkloadSpec` describes one trace-producing scenario: a
name, a generator function (``**params -> Trace``), its
default parameters, the overrides applied in ``--quick`` mode, and a
*generator version*.  The version participates in the trace store's
cache key (:mod:`repro.workloads.store`), so bumping it whenever the
generator's output changes invalidates every cached trace it
produced -- the store's only invalidation rule.

Registering a scenario is one call (usually via the :func:`workload`
decorator in :mod:`repro.workloads.scenarios`); everything else --
``python -m repro list``, ``python -m repro trace``, the experiment
harness, the benchmarks -- picks it up from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from repro.trace.columnar import Trace, as_trace


@dataclass(frozen=True)
class WorkloadSpec:
    """One named scenario generator.

    ``build(**params)`` must be deterministic: the same parameters
    must yield the same event stream on every run (the store's
    byte-identity tests enforce this).  Generators that change
    behaviour must bump ``version``.
    """

    name: str
    description: str
    build: Callable[..., Trace]
    defaults: Mapping[str, object] = field(default_factory=dict)
    quick_overrides: Mapping[str, object] = field(default_factory=dict)
    version: int = 1

    def resolve(self, *, quick: bool = False, scale: int = None,
                overrides: Mapping[str, object] = None) -> Dict[str, object]:
        """The full parameter dict for one materialization.

        Precedence (lowest first): defaults, quick overrides, the
        harness-wide ``scale`` (only if the generator declares a
        ``scale`` default), explicit overrides.
        """
        params = dict(self.defaults)
        if quick:
            params.update(self.quick_overrides)
        if scale is not None and "scale" in params:
            params["scale"] = scale
        if overrides:
            unknown = set(overrides) - set(params)
            if unknown:
                raise KeyError(
                    f"workload {self.name!r} has no parameter(s) "
                    f"{sorted(unknown)}; it takes {sorted(params)}")
            params.update(overrides)
        return params

    def generate(self, params: Mapping[str, object]) -> Trace:
        """Run the generator, coercing its output to a columnar Trace.

        Registered generators already emit columns; the coercion is
        a pass-through for them and a one-time packing for ad-hoc
        specs that still build ``TraceEvent`` lists.
        """
        return as_trace(self.build(**params))


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a spec to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"workload {spec.name!r} already registered "
                         f"with a different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown workload {name!r}; registered: {known}") from None


def names() -> Tuple[str, ...]:
    """Registered workload names, in registration order."""
    return tuple(_REGISTRY)


def specs() -> Tuple[WorkloadSpec, ...]:
    return tuple(_REGISTRY.values())
