"""Named, parameterized, cached workloads (the scenario registry).

This package is the workload layer the harness, benchmarks, tests and
examples share:

* :mod:`repro.workloads.spec` -- the :class:`WorkloadSpec` registry of
  scenario generators;
* :mod:`repro.workloads.store` -- the on-disk trace store
  (``.repro_traces/``), content-keyed by spec name + parameters +
  generator version, so a trace is generated once per machine and
  loaded thereafter;
* :mod:`repro.workloads.scenarios` -- the registered catalogue
  (imported here for its registration side effects).

Typical use::

    from repro.workloads import load_events, names

    events = load_events("paper")             # store-cached
    storm = load_events("megamorphic", classes=32)
"""

from repro.workloads.spec import WorkloadSpec, get, names, register, specs
from repro.workloads.store import TraceStore, default_store
from repro.workloads import scenarios as _scenarios  # noqa: F401 (registers)


def load_events(name: str, *, quick: bool = False, scale: int = None,
                store: TraceStore = None, **overrides):
    """Load a registered workload's trace through the default store."""
    return (store or default_store()).load(
        name, quick=quick, scale=scale, **overrides)


__all__ = [
    "TraceStore",
    "WorkloadSpec",
    "default_store",
    "get",
    "load_events",
    "names",
    "register",
    "specs",
]
