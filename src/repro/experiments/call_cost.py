"""TAB-CALL: method call and return cycle costs (paper section 3.6).

Claims reproduced on the COM pipeline model:

* steady-state issue is one instruction per two clock cycles;
* "a method call with no operands only delays execution four clock
  cycles" (two to execute the calling instruction, one flush, one for
  the call operations);
* "an additional cycle is required for each operand copied to the next
  context";
* "method returns cost only two clock cycles".

Methodology: three microprograms run on the functional simulator with
warm caches (a warm-up run precedes measurement):

1. a straight-line program (baseline cycles/instruction);
2. a program performing N zero-operand sends to an empty method;
3. a program performing N three-operand sends (which copy arg0 plus
   two operand words).

The per-call overhead is the cycle delta per call over the baseline.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import make_com
from repro.core.encoding import Instruction
from repro.core.isa import Op
from repro.core.machine import COMMachine
from repro.core.operands import Operand
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.memory.tags import Word


def _build_machine() -> COMMachine:
    return make_com()


def _run_cycles(machine: COMMachine, main, warm_runs: int = 1) -> dict:
    """Run a program ``warm_runs + 1`` times; measure the last run."""
    for _ in range(warm_runs):
        machine.run_program(main, max_instructions=10_000_000)
        machine.cycles.reset()
    machine.run_program(main, max_instructions=10_000_000)
    return machine.cycles.snapshot()


def _straightline_program(machine: COMMachine, count: int):
    asm_lines = ["main"]
    asm_lines.append("    c2 = 1")
    for _ in range(count):
        asm_lines.append("    c3 = c2 + c2")
        asm_lines.append("    c4 = c2 + c2")  # avoid RAW on c3
    asm_lines.append("    halt")
    from repro.core.assembler import load_program
    return load_program(machine, "\n".join(asm_lines))


def _zero_operand_call_program(machine: COMMachine, count: int):
    from repro.core.assembler import load_program
    lines = [
        "method Object >> bounce args=0",
        "    ret",
        "main",
        "    c2 = 1",
    ]
    # Each iteration: load receiver into the next context and send with
    # no automatic operand copying (figure 9's call style, nargs=1).
    for _ in range(count):
        lines.append("    n1 = c2")
        lines.append("    send bounce 1")
    lines.append("    halt")
    return load_program(machine, "\n".join(lines))


def _three_operand_call_program(machine: COMMachine, count: int):
    from repro.core.assembler import load_program
    lines = [
        "method SmallInteger >> combine args=2",
        "    c4 = c1 + c2",
        "    ret c4",
        "main",
        "    c2 = 1",
        "    c3 = 2",
    ]
    for _ in range(count):
        lines.append("    c5 = c2 combine c3")
    lines.append("    halt")
    return load_program(machine, "\n".join(lines))


def run(calls: int = 200) -> ExperimentResult:
    result = ExperimentResult(
        "TAB-CALL method call / return cycle costs",
        "Cycle deltas per call measured on the pipeline cost model with "
        "warm caches, versus the paper's stated costs.",
    )

    machine = _build_machine()
    base_main = _straightline_program(machine, calls)
    base = _run_cycles(machine, base_main)
    base_cpi = base["cycles"] / base["instructions"]

    machine0 = _build_machine()
    zero_main = _zero_operand_call_program(machine0, calls)
    zero = _run_cycles(machine0, zero_main)

    machine3 = _build_machine()
    three_main = _three_operand_call_program(machine3, calls)
    three = _run_cycles(machine3, three_main)

    # Per call-return pair, cycles beyond plain instruction issue.
    def call_cost(snapshot) -> Tuple[float, float]:
        call_stall = snapshot["stalls"].get("call", 0) / snapshot["calls"]
        return_stall = snapshot["stalls"].get("return", 0) / max(
            snapshot["returns"], 1)
        return call_stall, return_stall

    zero_call_stall, zero_return_stall = call_cost(zero)
    three_call_stall, _ = call_cost(three)

    issue = machine0.cycles.params.issue_cycles
    zero_call_total = issue + zero_call_stall       # the paper's "4 cycles"
    return_total = issue + zero_return_stall        # the paper's "2 cycles"
    three_call_total = issue + three_call_stall
    operands_per_call = three["operands_copied"] / three["calls"]

    rows = [
        ("steady-state cycles/instruction", "2", f"{base_cpi:.3f}"),
        ("no-operand call delay (cycles)", "4", f"{zero_call_total:.1f}"),
        ("method return cost (cycles)", "2", f"{return_total:.1f}"),
        ("extra cycles per copied operand", "1",
         f"{(three_call_total - zero_call_total) / operands_per_call:.2f} "
         f"({operands_per_call:.0f} operands/call)"),
    ]
    width = max(len(r[0]) for r in rows) + 2
    table_lines = [f"{'quantity':<{width}}{'paper':>8}{'measured':>12}"]
    table_lines.append("-" * (width + 36))
    for name, paper, measured in rows:
        table_lines.append(f"{name:<{width}}{paper:>8}{measured:>28}")
    result.table = "\n".join(table_lines)

    result.check("steady state issues one instruction per two clocks",
                 "2.0 cycles/instruction",
                 f"{base_cpi:.3f}", abs(base_cpi - 2.0) < 0.1)
    result.check("a no-operand method call delays execution 4 cycles",
                 "4", f"{zero_call_total:.1f}",
                 abs(zero_call_total - 4.0) < 0.51)
    result.check("a method return costs 2 cycles",
                 "2", f"{return_total:.1f}",
                 abs(return_total - 2.0) < 0.01)
    per_operand = ((three_call_total - zero_call_total) /
                   max(operands_per_call, 1))
    result.check("each copied operand adds one cycle",
                 "1", f"{per_operand:.2f}", abs(per_operand - 1.0) < 0.01)
    result.data = {
        "base_cpi": base_cpi,
        "zero_call_total": zero_call_total,
        "return_total": return_total,
        "per_operand": per_operand,
        "operands_per_call": operands_per_call,
        "snapshots": {"base": base, "zero": zero, "three": three},
    }
    return result


def _run(ctx) -> ExperimentResult:
    return run(50 if ctx.quick else 200)


register(ExperimentSpec(
    id="TAB-CALL",
    figure="section 3.6",
    order=30,
    title="method call / return cycle costs",
    description="microprogram cycle deltas on the pipeline cost model "
                "with warm caches",
    runner=_run,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
