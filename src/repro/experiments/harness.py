"""Registry-driven driver: regenerates every figure and claim table.

Usage::

    python -m repro.experiments.harness [--scale N] [--quick]
        [--jobs N] [--only ID[,ID...]] [--skip ID[,ID...]] [--list]
        [--trace-dir DIR] [--retries N] [--task-timeout SECONDS]
        [--resume] [--faults PLAN] [--fault-seed N]

(``python -m repro run`` is the same engine behind the package CLI.)

The suite comes from the experiment registry
(:mod:`repro.experiments.registry`): each experiment module registers
an :class:`~repro.experiments.registry.ExperimentSpec`, and the
harness selects, orders and executes specs instead of hard-wiring
module calls.  Workload traces are pre-materialized once into the
on-disk trace store (:mod:`repro.workloads.store`) -- a second run
loads them without re-executing the Fith interpreter.

``--jobs N`` executes the suite in a ``ProcessPoolExecutor``.  Specs
may declare ``shards`` to split one experiment into several pool
tasks.  Workers share nothing but the immutable trace files: every
machine is rebuilt per process, so per-experiment state stays
isolated.

Failure model (see DESIGN.md, "Failure model"):

* a task that *raises* is retried with exponential backoff, up to
  ``--retries`` attempts; past the budget the experiment is recorded
  as a typed :class:`~repro.errors.RetryExhausted` failure and the
  rest of the suite still completes;
* a *crashed worker* (``BrokenProcessPool``) breaks only the pool,
  not the run: completed results are harvested and unfinished tasks
  are re-submitted into a fresh pool (no retry penalty -- the crash
  may not have been theirs);
* a *hung worker* is bounded by ``--task-timeout``: the pool is
  abandoned (hung processes terminated) and the timed-out task
  charged one attempt;
* after repeated pool failures the harness **degrades to serial
  execution** for the remaining tasks -- slower, but it always
  terminates with results;
* every completed experiment is journaled atomically under
  ``.repro_runs/`` (:mod:`repro.experiments.journal`);
  ``--resume`` serves journaled results and runs only the rest.

Deterministic chaos testing of all of the above is driven by
``--faults``/``--fault-seed`` (:mod:`repro.faults`).
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as PoolTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.errors import RetryExhausted, TaskTimeout
from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.journal import RunJournal, run_key
from repro.experiments.registry import ExperimentSpec, RunContext
from repro.faults import FaultPlan

#: Pool-level failures (worker crash, hung worker) tolerated before
#: the harness stops rebuilding pools and degrades to serial.
MAX_POOL_BREAKS = 2

#: Default per-failure retry budget and backoff base (seconds; the
#: n-th retry of a task waits ``backoff * 2**(n-1)``).
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.1


def _materialize_workloads(specs: Sequence[ExperimentSpec],
                           ctx: RunContext, note) -> None:
    """Generate-or-load every workload the selected specs replay."""
    needed: List[str] = []
    for spec in specs:
        for name in spec.workloads:
            if name not in needed:
                needed.append(name)
    for name in needed:
        start = time.time()
        with telemetry.span("harness.materialize", workload=name) as sp:
            path, hit = ctx.store.ensure(name, quick=ctx.quick,
                                         scale=ctx.scale)
            events = ctx.events(name)
            sp.set(hit=hit, events=len(events))
        verb = "loaded from trace store" if hit else "generated"
        note(f"workload {name!r}: {len(events)} events "
             f"({events.dispatched_count()} dispatched) "
             f"{verb} in {time.time() - start:.1f}s [{path}]")
    if needed:
        note("")


def _split_cache_served(specs: Sequence[ExperimentSpec],
                        ctx: RunContext
                        ) -> Tuple[List[ExperimentSpec],
                                   List[ExperimentSpec]]:
    """Partition specs into (cache-served, pooled).

    An experiment that declares its sweeps (``spec.sweeps``) and whose
    every declared sweep already has an entry in the on-disk
    sweep-result cache is *cache-served*: its runner will only read
    cached surfaces, which costs milliseconds, so shipping it to a
    worker process buys nothing and the harness runs it inline in the
    parent.  The probe is existence-only (``ResultCache.contains``):
    no payload is read here, and a cached entry that later fails to
    decode simply replays in the parent -- correctness never depends
    on the probe being right.
    """
    from repro.sweep import result_cache_key
    from repro.workloads.library import ResultCache

    if not ResultCache.enabled():
        return [], list(specs)
    cache = ctx.store.result_cache()
    served: List[ExperimentSpec] = []
    pooled: List[ExperimentSpec] = []
    for spec in specs:
        declared = None
        if spec.sweeps is not None and not spec.shards:
            try:
                declared = list(spec.sweeps(ctx))
            except Exception:
                declared = None  # a broken declaration is no declaration
        if not declared:
            pooled.append(spec)
            continue
        cached = all(
            cache.contains(result_cache_key(
                sweep_spec,
                ctx.store.trace_key(workload, quick=ctx.quick,
                                    scale=ctx.scale)))
            for workload, sweep_spec in declared)
        if cached:
            served.append(spec)
            telemetry.inc("harness.cache_served")
        else:
            pooled.append(spec)
    return served, pooled


def _new_stats() -> Dict[str, object]:
    return {"retries": 0, "timeouts": 0, "pool_breaks": 0,
            "task_failures": 0, "degraded": False, "resumed": 0}


def _failure_result(spec: ExperimentSpec, error: BaseException
                    ) -> ExperimentResult:
    """The typed placeholder a permanently-failed experiment leaves
    behind so the suite (and its exit code) stays accountable."""
    result = ExperimentResult(
        experiment=spec.id,
        description=f"FAILED: {spec.title}",
        data={"failure": {"error": type(error).__name__,
                          "message": str(error)}})
    result.check("experiment completes", "completes",
                 f"{type(error).__name__}: {error}", False)
    return result


def _task_key(exp_id: str, shard) -> str:
    return exp_id if shard == _WHOLE else f"{exp_id}/{shard}"


def _serial_task(exp_id: str, shard, ctx: RunContext, budget: int,
                 backoff: float, stats: dict, note):
    """Run one task in-process with a bounded retry loop.

    Raises :class:`RetryExhausted` when every attempt failed;
    KeyboardInterrupt/SystemExit always propagate.
    """
    spec = registry.get(exp_id)
    attempt = 0
    while True:
        try:
            with telemetry.span("harness.task",
                                task=_task_key(exp_id, shard),
                                attempt=attempt + 1, mode="serial"):
                telemetry.inc("harness.tasks")
                faults.inject("worker.task",
                              key=_task_key(exp_id, shard))
                if shard == _WHOLE:
                    return spec.runner(ctx)
                return spec.shard_runner(ctx, shard)
        except Exception as error:
            stats["task_failures"] += 1
            attempt += 1
            if attempt > budget:
                raise RetryExhausted(
                    f"{_task_key(exp_id, shard)} failed {attempt} "
                    f"time{'s' if attempt != 1 else ''}: "
                    f"{type(error).__name__}: {error}",
                    task=_task_key(exp_id, shard), attempts=attempt,
                    last_error=error) from error
            delay = backoff * (2 ** (attempt - 1))
            stats["retries"] += 1
            telemetry.event("harness.retry",
                            task=_task_key(exp_id, shard),
                            attempt=attempt,
                            error=type(error).__name__)
            note(f"! {_task_key(exp_id, shard)}: "
                 f"{type(error).__name__}: {error} -- retrying "
                 f"(attempt {attempt}/{budget}, backoff {delay:.2f}s)")
            if delay:
                time.sleep(delay)


def _run_sequential(specs: Sequence[ExperimentSpec], ctx: RunContext,
                    note, *, retries: int = DEFAULT_RETRIES,
                    backoff: float = DEFAULT_BACKOFF,
                    stats: Optional[dict] = None,
                    on_result=None) -> List[ExperimentResult]:
    stats = stats if stats is not None else _new_stats()
    results: List[ExperimentResult] = []
    for spec in specs:
        start = time.time()
        try:
            result = _serial_task(spec.id, _WHOLE, ctx, retries,
                                  backoff, stats, note)
        except Exception as error:
            result = _failure_result(spec, error)
        results.append(result)
        note(result.report())
        note(f"({spec.id} took {time.time() - start:.1f}s)\n")
        if on_result is not None:
            on_result(spec.id, result)
    return results


#: Per-worker trace stores, keyed by trace dir: tasks that land on the
#: same worker share one in-memory memo instead of re-deserializing
#: the trace file per task.
_WORKER_STORES: Dict[Optional[str], object] = {}


def _pool_init(fault_plan: Optional[str]) -> None:
    """Worker-process initializer: arm fault injection, then give the
    ``worker.start`` site its chance to misbehave."""
    faults.mark_worker()
    faults.ensure(fault_plan)
    faults.inject("worker.start")


def _pool_run(exp_id: str, shard, ctx_args: dict):
    """Top-level pool task (must be picklable by reference)."""
    registry.load_all()
    ctx = RunContext(**ctx_args)
    faults.mark_worker()
    faults.ensure(ctx.fault_plan)
    telemetry.ensure(ctx.telemetry_dir)
    try:
        with telemetry.span("harness.task",
                            task=_task_key(exp_id, shard),
                            mode="pool"):
            telemetry.inc("harness.tasks")
            faults.inject("worker.task", key=_task_key(exp_id, shard))
            cached = _WORKER_STORES.get(ctx.trace_dir)
            if cached is None:
                _WORKER_STORES[ctx.trace_dir] = ctx.store
            else:
                ctx._store = cached
            spec = registry.get(exp_id)
            if shard == _WHOLE:
                return spec.runner(ctx)
            return spec.shard_runner(ctx, shard)
    finally:
        # Flush the worker's metric shard after every task: a later
        # crash in this process loses at most one task's counts.
        telemetry.flush()


#: Sentinel shard key meaning "run the whole experiment in one task".
#: Compared by equality: it crosses process boundaries by pickle.
_WHOLE = "__whole__"


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may contain hung workers.

    ``shutdown(wait=True)`` would block on a hung worker forever, so
    the workers are terminated first (via the executor's process
    table; there is no public kill API) and the shutdown is
    non-blocking.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_parallel(specs: Sequence[ExperimentSpec], ctx: RunContext,
                  jobs: int, note, *,
                  retries: int = DEFAULT_RETRIES,
                  task_timeout: Optional[float] = None,
                  backoff: float = DEFAULT_BACKOFF,
                  stats: Optional[dict] = None,
                  on_result=None) -> List[ExperimentResult]:
    """The resilient pool driver (see the module docstring's failure
    model): harvest what completed, retry what failed, rebuild broken
    pools, and degrade to serial rather than give up."""
    stats = stats if stats is not None else _new_stats()
    ctx_args = ctx.pool_args()
    tasks: List[Tuple[str, object]] = []
    for spec in specs:
        for shard in (spec.shards or (_WHOLE,)):
            tasks.append((spec.id, shard))
    attempts: Dict[Tuple[str, object], int] = {t: 0 for t in tasks}
    payloads: Dict[Tuple[str, object], object] = {}
    failures: Dict[Tuple[str, object], BaseException] = {}
    pending = list(tasks)

    def charge(task, error) -> None:
        """One failed attempt for *task*: requeue or give up."""
        attempts[task] += 1
        if attempts[task] > retries:
            failures[task] = RetryExhausted(
                f"{_task_key(*task)} failed {attempts[task]} "
                f"time{'s' if attempts[task] != 1 else ''}: "
                f"{type(error).__name__}: {error}",
                task=_task_key(*task), attempts=attempts[task],
                last_error=error)
            note(f"! {_task_key(*task)}: {type(error).__name__}: "
                 f"{error} -- retry budget exhausted")
        else:
            delay = backoff * (2 ** (attempts[task] - 1))
            stats["retries"] += 1
            telemetry.event("harness.retry", task=_task_key(*task),
                            attempt=attempts[task],
                            error=type(error).__name__)
            note(f"! {_task_key(*task)}: {type(error).__name__}: "
                 f"{error} -- will retry (attempt "
                 f"{attempts[task]}/{retries}, backoff {delay:.2f}s)")
            if delay:
                time.sleep(delay)
            requeue.append(task)

    while pending:
        if stats["pool_breaks"] >= MAX_POOL_BREAKS:
            note(f"! process pool failed {stats['pool_breaks']} times; "
                 f"degrading to serial execution for the remaining "
                 f"{len(pending)} task(s)")
            stats["degraded"] = True
            telemetry.event("harness.degraded",
                            remaining=len(pending))
            faults.advance_epoch()
            for task in pending:
                budget = max(0, retries - attempts[task])
                try:
                    payloads[task] = _serial_task(
                        task[0], task[1], ctx, budget, backoff,
                        stats, note)
                except Exception as error:
                    failures[task] = error
            pending = []
            break

        pool = ProcessPoolExecutor(max_workers=jobs,
                                   initializer=_pool_init,
                                   initargs=(ctx.fault_plan,))
        requeue: List[Tuple[str, object]] = []
        abandoned = False
        try:
            futures = [(task, pool.submit(_pool_run, task[0], task[1],
                                          ctx_args))
                       for task in pending]
        except BrokenProcessPool as error:
            stats["pool_breaks"] += 1
            note(f"! worker pool broke during submission ({error}); "
                 f"rebuilding")
            _abandon_pool(pool)
            faults.advance_epoch()
            continue
        for task, future in futures:
            if abandoned:
                # The pool is gone: harvest finished results, requeue
                # the rest with no retry penalty (they were victims,
                # not causes).
                try:
                    if future.done() and future.exception(timeout=0) \
                            is None:
                        payloads[task] = future.result(timeout=0)
                    else:
                        requeue.append(task)
                except Exception:
                    requeue.append(task)
                continue
            try:
                payloads[task] = future.result(timeout=task_timeout)
            except PoolTimeout:
                stats["timeouts"] += 1
                stats["pool_breaks"] += 1
                telemetry.event("harness.timeout",
                                task=_task_key(*task),
                                timeout=task_timeout)
                note(f"! {_task_key(*task)}: no result within "
                     f"--task-timeout={task_timeout}s; terminating "
                     f"the pool (worker presumed hung)")
                charge(task, TaskTimeout(
                    f"no result within {task_timeout}s",
                    task=_task_key(*task), timeout=task_timeout))
                _abandon_pool(pool)
                abandoned = True
            except BrokenProcessPool as error:
                stats["pool_breaks"] += 1
                telemetry.event("harness.pool_break",
                                task=_task_key(*task))
                note(f"! worker pool broke at {_task_key(*task)}; "
                     f"harvesting finished results and re-submitting "
                     f"the rest into a fresh pool")
                requeue.append(task)  # pool-level: no retry penalty
                _abandon_pool(pool)
                abandoned = True
            except (KeyboardInterrupt, SystemExit):
                _abandon_pool(pool)
                raise
            except Exception as error:
                # The task itself raised (a real or injected task
                # failure): charge its retry budget; the pool is fine.
                stats["task_failures"] += 1
                charge(task, error)
        if not abandoned:
            pool.shutdown(wait=True)
        pending = requeue
        if pending:
            # Fresh rolls for the retry round: a deterministic fault
            # plan must not re-fire identically forever.
            faults.advance_epoch()

    results: List[ExperimentResult] = []
    for spec in specs:
        spec_tasks = [(spec.id, shard)
                      for shard in (spec.shards or (_WHOLE,))]
        errors = [failures[t] for t in spec_tasks if t in failures]
        if errors:
            result = _failure_result(spec, errors[0])
        elif spec.shards:
            result = spec.merger(ctx, {shard: payloads[(spec.id, shard)]
                                       for shard in spec.shards})
        else:
            result = payloads[(spec.id, _WHOLE)]
        results.append(result)
        note(result.report())
        if on_result is not None:
            on_result(spec.id, result)
    return results


def run_all(scale: int = 1, quick: bool = False, stream=None,
            only: Optional[List[str]] = None,
            skip: Optional[List[str]] = None,
            jobs: int = 1,
            trace_dir: Optional[str] = None, *,
            retries: int = DEFAULT_RETRIES,
            task_timeout: Optional[float] = None,
            backoff: float = DEFAULT_BACKOFF,
            resume: bool = False,
            run_dir: Optional[str] = None,
            fault_plan=None,
            fault_seed: int = 0,
            with_telemetry: bool = False) -> List[ExperimentResult]:
    """Run the selected experiments; returns results in suite order.

    ``fault_plan`` may be a :class:`repro.faults.FaultPlan`, a plan
    string (CLI syntax or JSON), or None.  The plan is armed for the
    duration of the run (exported to pool workers) and disarmed
    afterwards.

    ``with_telemetry`` arms :mod:`repro.telemetry` into the run's
    journal directory (``.repro_runs/<run-key>/telemetry/``) for the
    duration of the run; ``repro report`` renders the result.
    """
    out = stream or sys.stdout

    def note(text: str) -> None:
        print(text, file=out, flush=True)

    plan: Optional[FaultPlan] = None
    if fault_plan:
        plan = (fault_plan if isinstance(fault_plan, FaultPlan)
                else FaultPlan.parse(str(fault_plan), seed=fault_seed))
        faults.install(plan)
    try:
        return _run_all(scale, quick, note, only, skip, jobs,
                        trace_dir, retries=retries,
                        task_timeout=task_timeout, backoff=backoff,
                        resume=resume, run_dir=run_dir, plan=plan,
                        with_telemetry=with_telemetry)
    finally:
        if plan is not None:
            faults.install(None)


def _run_all(scale, quick, note, only, skip, jobs, trace_dir, *,
             retries, task_timeout, backoff, resume, run_dir,
             plan, with_telemetry=False) -> List[ExperimentResult]:
    specs = registry.select(only, skip)
    stats = _new_stats()
    started = time.time()

    journal = RunJournal(
        run_key(scale=scale, quick=quick,
                suite=[spec.id for spec in specs],
                trace_dir=trace_dir),
        root=run_dir,
        manifest={"scale": scale, "quick": quick,
                  "suite": [spec.id for spec in specs],
                  "trace_dir": trace_dir, "jobs": jobs})
    telemetry_armed = False
    if with_telemetry and resume:
        # Arm before the journal replays records so the resume is
        # spanned; resuming never clears the sink directory.
        telemetry.install(journal.directory / "telemetry")
        telemetry_armed = True
    done = journal.start(resume=resume)
    if with_telemetry and not telemetry_armed:
        # Fresh run: journal.clear() just dropped any stale sink.
        telemetry.install(journal.directory / "telemetry", fresh=True)
        telemetry_armed = True
    try:
        return _run_all_inner(
            specs, journal, done, stats, started, note, scale=scale,
            quick=quick, jobs=jobs, trace_dir=trace_dir,
            retries=retries, task_timeout=task_timeout,
            backoff=backoff, resume=resume, plan=plan)
    finally:
        if telemetry_armed:
            telemetry.finalize()
            telemetry.install(None)


def _run_all_inner(specs, journal, done, stats, started, note, *,
                   scale, quick, jobs, trace_dir, retries,
                   task_timeout, backoff, resume,
                   plan) -> List[ExperimentResult]:
    ctx = RunContext(scale=scale, quick=quick, trace_dir=trace_dir,
                     fault_plan=plan.to_json() if plan else None,
                     telemetry_dir=telemetry.active_directory())
    done = {exp_id: result for exp_id, result in done.items()
            if any(spec.id == exp_id for spec in specs)}
    stats["resumed"] = len(done)
    if done:
        note(f"resuming: {len(done)} experiment(s) served from the "
             f"run journal [{journal.directory}]")
        for exp_id in sorted(done):
            note(f"  journaled: {exp_id}")
        note("")
    pending_specs = [spec for spec in specs if spec.id not in done]

    def on_result(exp_id: str, result: ExperimentResult) -> None:
        # Failure placeholders are not journaled: a resumed run must
        # retry what never actually completed.
        if not (isinstance(result.data, dict)
                and result.data.get("failure")):
            journal.record(exp_id, result)

    with telemetry.span("harness.run", scale=scale, quick=quick,
                        jobs=jobs, experiments=len(specs),
                        resumed=len(done)):
        _materialize_workloads(pending_specs, ctx, note)
        by_id: Dict[str, ExperimentResult] = {}
        if jobs > 1:
            served, pooled = _split_cache_served(pending_specs, ctx)
            if served:
                note(f"result cache: {len(served)} experiment(s) fully "
                     f"cached; running inline instead of scheduling "
                     f"pool tasks "
                     f"({', '.join(spec.id for spec in served)})\n")
                inline = _run_sequential(served, ctx, note,
                                         retries=retries,
                                         backoff=backoff, stats=stats,
                                         on_result=on_result)
                by_id.update({spec.id: result for spec, result
                              in zip(served, inline)})
            fresh = _run_parallel(pooled, ctx, jobs, note,
                                  retries=retries,
                                  task_timeout=task_timeout,
                                  backoff=backoff, stats=stats,
                                  on_result=on_result)
            by_id.update({spec.id: result
                          for spec, result in zip(pooled, fresh)})
        else:
            fresh = _run_sequential(pending_specs, ctx, note,
                                    retries=retries, backoff=backoff,
                                    stats=stats, on_result=on_result)
            by_id.update({spec.id: result
                          for spec, result in zip(pending_specs, fresh)})
    results = [done.get(spec.id, by_id.get(spec.id))
               for spec in specs]

    note("=" * 64)
    note("SUMMARY")
    note("=" * 64)
    total = 0
    held = 0
    for result in results:
        for claim in result.claims:
            total += 1
            held += claim.holds
        failed = isinstance(result.data, dict) \
            and bool(result.data.get("failure"))
        status = ("FAILED  " if failed
                  else "ok " if result.all_hold else "DIVERGES")
        note(f"  [{status}] {result.experiment}")
    env = telemetry.environment_block()
    numpy_note = (f"numpy {env['numpy']}" if env["numpy"]
                  else "numpy absent")
    note(f"\n{held}/{total} paper claims reproduced "
         f"(jobs={jobs}, {time.time() - started:.1f}s wall).")
    note(f"robustness: {stats['retries']} retries, "
         f"{stats['timeouts']} timeouts, "
         f"{stats['pool_breaks']} pool breaks, "
         f"{ctx.store.quarantined} quarantined payloads"
         + (", degraded to serial" if stats["degraded"] else "")
         + (f", {stats['resumed']} resumed from journal"
            if resume else "")
         + (f", {faults.fired_count()} faults injected (parent)"
            if plan is not None else "")
         + f", {numpy_note}")
    if telemetry.enabled():
        telemetry.inc("harness.experiments", len(specs))
        telemetry.inc("harness.claims_total", total)
        telemetry.inc("harness.claims_held", held)
        for key in ("retries", "timeouts", "pool_breaks",
                    "task_failures"):
            if stats[key]:
                telemetry.inc(f"harness.{key}", stats[key])
        if stats["degraded"]:
            telemetry.inc("harness.degraded")
        if stats["resumed"]:
            telemetry.inc("harness.resumed", stats["resumed"])
        telemetry.gauge("harness.wall_seconds",
                        round(time.time() - started, 3))
        telemetry.flush()
        note(f"telemetry: {telemetry.active_directory()} "
             f"(render with `repro report`)")
    return results


def list_experiments(stream=None) -> None:
    """Print the registered suite (ids, figures, workloads)."""
    out = stream or sys.stdout
    specs = registry.load_all()
    width = max(len(spec.id) for spec in specs) + 2
    for spec in specs:
        traces = (f"  [workloads: {', '.join(spec.workloads)}]"
                  if spec.workloads else "")
        print(f"  {spec.id:<{width}}{spec.title} "
              f"({spec.figure}){traces}", file=out)


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The run flags, shared with the ``python -m repro`` CLI."""
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink trace workloads for a fast pass")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1: in-process)")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated experiment ids to run")
    parser.add_argument("--skip", type=str, default=None,
                        help="comma-separated experiment ids to skip")
    parser.add_argument("--trace-dir", type=str, default=None,
                        help="trace store directory "
                             "(default .repro_traces or $REPRO_TRACE_DIR)")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="retry budget per failing task "
                             f"(default {DEFAULT_RETRIES})")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="bound each pool task's result wait; a "
                             "hung worker is terminated and the task "
                             "retried (default: no timeout)")
    parser.add_argument("--retry-backoff", type=float,
                        default=DEFAULT_BACKOFF, metavar="SECONDS",
                        help="exponential backoff base between "
                             f"retries (default {DEFAULT_BACKOFF})")
    parser.add_argument("--resume", action="store_true",
                        help="serve already-completed experiments "
                             "from the run journal and run the rest")
    parser.add_argument("--run-dir", type=str, default=None,
                        help="run-journal directory (default "
                             ".repro_runs or $REPRO_RUN_DIR)")
    parser.add_argument("--faults", type=str, default=None,
                        metavar="PLAN",
                        help="arm a deterministic fault-injection "
                             "plan: site:kind[:p=0.5][:times=2]"
                             "[:delay=1.5][,...] or a JSON plan "
                             "(sites: " + ", ".join(faults.SITES)
                             + "; kinds: " + ", ".join(faults.KINDS)
                             + ")")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan's deterministic "
                             "injection rolls (default 0)")
    parser.add_argument("--telemetry", action="store_true",
                        help="record spans + metrics under the run's "
                             "journal directory (render with "
                             "`repro report`)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list registered experiments and exit")


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_only:
        list_experiments()
        return 0
    results = run_all(args.scale, args.quick, only=_csv(args.only),
                      skip=_csv(args.skip), jobs=args.jobs,
                      trace_dir=args.trace_dir,
                      retries=args.retries,
                      task_timeout=args.task_timeout,
                      backoff=args.retry_backoff,
                      resume=args.resume, run_dir=args.run_dir,
                      fault_plan=args.faults,
                      fault_seed=args.fault_seed,
                      with_telemetry=args.telemetry)
    return 0 if all(r.all_hold for r in results) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every figure/claim of Dally & Kajiya 1985")
    add_run_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
