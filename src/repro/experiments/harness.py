"""Registry-driven driver: regenerates every figure and claim table.

Usage::

    python -m repro.experiments.harness [--scale N] [--quick]
        [--jobs N] [--only ID[,ID...]] [--skip ID[,ID...]] [--list]
        [--trace-dir DIR]

(``python -m repro run`` is the same engine behind the package CLI.)

The suite comes from the experiment registry
(:mod:`repro.experiments.registry`): each experiment module registers
an :class:`~repro.experiments.registry.ExperimentSpec`, and the
harness selects, orders and executes specs instead of hard-wiring
module calls.  Workload traces are pre-materialized once into the
on-disk trace store (:mod:`repro.workloads.store`) -- a second run
loads them without re-executing the Fith interpreter.

``--jobs N`` executes the suite in a ``ProcessPoolExecutor``.  Specs
may declare ``shards`` to split one experiment into several pool
tasks; since the figure sweeps moved to the single-pass
stack-distance engine (:mod:`repro.sweep`) none of the built-in suite
needs to -- FIG-10/FIG-11 each replay their trace once for the whole
grid and run as ordinary tasks.  Workers share nothing but the
immutable trace files: every machine is rebuilt per process, so
per-experiment state stays isolated.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import registry
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, RunContext


def _materialize_workloads(specs: Sequence[ExperimentSpec],
                           ctx: RunContext, note) -> None:
    """Generate-or-load every workload the selected specs replay."""
    needed: List[str] = []
    for spec in specs:
        for name in spec.workloads:
            if name not in needed:
                needed.append(name)
    for name in needed:
        start = time.time()
        path, hit = ctx.store.ensure(name, quick=ctx.quick,
                                     scale=ctx.scale)
        events = ctx.events(name)
        verb = "loaded from trace store" if hit else "generated"
        note(f"workload {name!r}: {len(events)} events "
             f"({events.dispatched_count()} dispatched) "
             f"{verb} in {time.time() - start:.1f}s [{path}]")
    if needed:
        note("")


def _run_sequential(specs: Sequence[ExperimentSpec], ctx: RunContext,
                    note) -> List[ExperimentResult]:
    results: List[ExperimentResult] = []
    for spec in specs:
        start = time.time()
        result = spec.runner(ctx)
        results.append(result)
        note(result.report())
        note(f"({spec.id} took {time.time() - start:.1f}s)\n")
    return results


#: Per-worker trace stores, keyed by trace dir: tasks that land on the
#: same worker share one in-memory memo instead of re-deserializing
#: the trace file per task.
_WORKER_STORES: Dict[Optional[str], object] = {}


def _pool_run(exp_id: str, shard, ctx_args: dict):
    """Top-level pool task (must be picklable by reference)."""
    registry.load_all()
    ctx = RunContext(**ctx_args)
    cached = _WORKER_STORES.get(ctx.trace_dir)
    if cached is None:
        _WORKER_STORES[ctx.trace_dir] = ctx.store
    else:
        ctx._store = cached
    spec = registry.get(exp_id)
    if shard == _WHOLE:
        return spec.runner(ctx)
    return spec.shard_runner(ctx, shard)


#: Sentinel shard key meaning "run the whole experiment in one task".
#: Compared by equality: it crosses process boundaries by pickle.
_WHOLE = "__whole__"


def _run_parallel(specs: Sequence[ExperimentSpec], ctx: RunContext,
                  jobs: int, note) -> List[ExperimentResult]:
    ctx_args = ctx.pool_args()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures: List[Tuple[str, object, object]] = []
        for spec in specs:
            if spec.shards:
                for shard in spec.shards:
                    futures.append((spec.id, shard, pool.submit(
                        _pool_run, spec.id, shard, ctx_args)))
            else:
                futures.append((spec.id, _WHOLE, pool.submit(
                    _pool_run, spec.id, _WHOLE, ctx_args)))
        payloads: Dict[str, Dict[object, object]] = {}
        for exp_id, shard, future in futures:
            payloads.setdefault(exp_id, {})[shard] = future.result()
    results: List[ExperimentResult] = []
    for spec in specs:
        got = payloads[spec.id]
        if spec.shards:
            result = spec.merger(ctx, got)
        else:
            result = got[_WHOLE]
        results.append(result)
        note(result.report())
    return results


def run_all(scale: int = 1, quick: bool = False, stream=None,
            only: Optional[List[str]] = None,
            skip: Optional[List[str]] = None,
            jobs: int = 1,
            trace_dir: Optional[str] = None) -> List[ExperimentResult]:
    """Run the selected experiments; returns results in suite order."""
    out = stream or sys.stdout

    def note(text: str) -> None:
        print(text, file=out, flush=True)

    specs = registry.select(only, skip)
    ctx = RunContext(scale=scale, quick=quick, trace_dir=trace_dir)
    started = time.time()
    _materialize_workloads(specs, ctx, note)
    if jobs > 1:
        results = _run_parallel(specs, ctx, jobs, note)
    else:
        results = _run_sequential(specs, ctx, note)

    note("=" * 64)
    note("SUMMARY")
    note("=" * 64)
    total = 0
    held = 0
    for result in results:
        for claim in result.claims:
            total += 1
            held += claim.holds
        status = "ok " if result.all_hold else "DIVERGES"
        note(f"  [{status}] {result.experiment}")
    note(f"\n{held}/{total} paper claims reproduced "
         f"(jobs={jobs}, {time.time() - started:.1f}s wall).")
    return results


def list_experiments(stream=None) -> None:
    """Print the registered suite (ids, figures, workloads)."""
    out = stream or sys.stdout
    specs = registry.load_all()
    width = max(len(spec.id) for spec in specs) + 2
    for spec in specs:
        traces = (f"  [workloads: {', '.join(spec.workloads)}]"
                  if spec.workloads else "")
        print(f"  {spec.id:<{width}}{spec.title} "
              f"({spec.figure}){traces}", file=out)


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The run flags, shared with the ``python -m repro`` CLI."""
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink trace workloads for a fast pass")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1: in-process)")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated experiment ids to run")
    parser.add_argument("--skip", type=str, default=None,
                        help="comma-separated experiment ids to skip")
    parser.add_argument("--trace-dir", type=str, default=None,
                        help="trace store directory "
                             "(default .repro_traces or $REPRO_TRACE_DIR)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list registered experiments and exit")


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_only:
        list_experiments()
        return 0
    results = run_all(args.scale, args.quick, only=_csv(args.only),
                      skip=_csv(args.skip), jobs=args.jobs,
                      trace_dir=args.trace_dir)
    return 0 if all(r.all_hold for r in results) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every figure/claim of Dally & Kajiya 1985")
    add_run_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
