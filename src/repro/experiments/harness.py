"""Run-everything driver: regenerates every figure and claim table.

Usage::

    python -m repro.experiments.harness [--scale N] [--quick]

Prints each experiment's table and claim verdicts, ending with a
summary grid.  ``--quick`` shrinks the trace-driven experiments for
smoke runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List

from repro.experiments import (
    addr_compare,
    call_cost,
    context_cache,
    context_stats,
    fig10,
    fig11,
    stack_vs_3addr,
)
from repro.experiments.common import ExperimentResult
from repro.trace.workloads import paper_trace


def run_all(scale: int = 1, quick: bool = False,
            stream=None) -> List[ExperimentResult]:
    """Run every experiment; returns the results in DESIGN.md order."""
    out = stream or sys.stdout
    results: List[ExperimentResult] = []

    def note(text: str) -> None:
        print(text, file=out, flush=True)

    note("Generating the section-5 measurement trace "
         "(Fith corpus + polymorphic workload)...")
    start = time.time()
    if quick:
        # Keep the full code/key footprint (rounds) so the figure
        # claims still hold; shrink only the per-phase repetition.
        events = paper_trace(scale, phase_length=280)
    else:
        events = paper_trace(scale)
    note(f"  {len(events)} events "
         f"({sum(e.dispatched for e in events)} dispatched) "
         f"in {time.time() - start:.1f}s\n")

    stages: List[tuple] = [
        ("FIG-10", lambda: fig10.run(scale, events=events)),
        ("FIG-11", lambda: fig11.run(scale, events=events)),
        ("TAB-CALL", lambda: call_cost.run(50 if quick else 200)),
        ("TAB-CTX", lambda: context_stats.run()),
        ("TAB-CCACHE", lambda: context_cache.run()),
        ("TAB-ADDR", lambda: addr_compare.run()),
        ("TAB-3ADDR", lambda: stack_vs_3addr.run()),
    ]
    for name, runner in stages:
        start = time.time()
        result = runner()
        results.append(result)
        note(result.report())
        note(f"({name} took {time.time() - start:.1f}s)\n")

    note("=" * 64)
    note("SUMMARY")
    note("=" * 64)
    total = 0
    held = 0
    for result in results:
        for claim in result.claims:
            total += 1
            held += claim.holds
        status = "ok " if result.all_hold else "DIVERGES"
        note(f"  [{status}] {result.experiment}")
    note(f"\n{held}/{total} paper claims reproduced.")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every figure/claim of Dally & Kajiya 1985")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink trace workloads for a fast pass")
    args = parser.parse_args(argv)
    results = run_all(args.scale, args.quick)
    return 0 if all(r.all_hold for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
