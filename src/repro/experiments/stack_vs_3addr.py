"""TAB-3ADDR: stack machine vs three-address instruction counts (section 5).

"Stack machines while offering small code size require almost twice as
many instructions to implement a given source language program than a
three address machine."  This was the design study that retired the
Fith Machine in favour of the three-address COM.

We compile the *same* Smalltalk-subset sources with both back ends --
the COM three-address compiler and the Smalltalk-80-style stack
bytecode compiler (identical control-selector inlining) -- execute
both, verify they compute the same results, and compare dynamic
instruction counts.  Static code size is also reported, where the
stack machine should win (its stated advantage).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import make_com
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.smalltalk import compile_program
from repro.smalltalk.stackgen import run_stack_program

#: Benchmark sources: each computes a scalar the two backends must agree on.
SOURCES: Dict[str, str] = {
    "fib": """
SmallInteger >> fib
    self < 2 ifTrue: [^self].
    ^(self - 1) fib + (self - 2) fib
main
    ^14 fib
""",
    "loops": """
main | total |
    total := 0.
    1 to: 60 do: [:i |
        1 to: 20 do: [:j | total := total + (i * j)]
    ].
    ^total
""",
    "objects": """
class Point extends Object fields: x y
Point >> setX: ax y: ay
    x := ax. y := ay. ^self
Point >> dot: other
    ^(x * (other at: 0)) + (y * (other at: 1))
main | p q total i |
    total := 0.
    i := 0.
    [i < 50] whileTrue: [
        p := Point new.
        p setX: i y: i + 1.
        q := Point new.
        q setX: i + 2 y: i + 3.
        total := total + (p dot: q).
        i := i + 1
    ].
    ^total
""",
    "arith": """
SmallInteger >> collatzLength | n len |
    n := self. len := 0.
    [n > 1] whileTrue: [
        (n \\\\ 2) = 0 ifTrue: [n := n / 2] ifFalse: [n := (3 * n) + 1].
        len := len + 1
    ].
    ^len
main | total |
    total := 0.
    2 to: 60 do: [:k | total := total + k collatzLength].
    ^total
""",
}


def run(max_instructions: int = 5_000_000) -> ExperimentResult:
    result = ExperimentResult(
        "TAB-3ADDR stack machine vs three-address instruction counts",
        "The same Smalltalk sources compiled by both back ends; dynamic "
        "instruction counts compared (paper: stack needs ~2x).",
    )
    rows: List[tuple] = []
    ratios: List[float] = []
    static_ratios: List[float] = []
    for name, source in sorted(SOURCES.items()):
        machine = make_com()
        main = compile_program(machine, source)
        com_result = machine.run_program(
            main, max_instructions=max_instructions)
        com_count = machine.cycles.instructions
        com_static = sum(m.instruction_count
                         for m in machine._methods.values())
        stack_result, vm = run_stack_program(source, max_instructions)
        if not com_result.same_object_as(stack_result):
            raise AssertionError(
                f"{name}: backends disagree "
                f"({com_result!r} vs {stack_result!r})")
        stack_static = sum(
            len(method.code.code)
            for cls in vm.registry.classes()
            for selector in cls.methods.selectors()
            for method in [cls.methods.lookup(selector)]
            if hasattr(method, "code") and hasattr(method.code, "code")
        ) + len(vm.compiler.main.code)
        ratio = vm.instructions / com_count
        ratios.append(ratio)
        # Code *size* compares bytes: Smalltalk-80-style bytecodes
        # average under two bytes while every COM instruction is a
        # 4-byte word -- the stack machine's stated advantage.
        stack_bytes = stack_static * 2
        com_bytes = com_static * 4
        static_ratios.append(stack_bytes / max(com_bytes, 1))
        rows.append((name, com_count, vm.instructions, ratio,
                     com_result.value))

    lines = [f"{'program':<10}{'3-addr':>10}{'stack':>10}{'ratio':>8}"
             f"{'result':>12}", "-" * 50]
    for name, com_count, stack_count, ratio, value in rows:
        lines.append(f"{name:<10}{com_count:>10}{stack_count:>10}"
                     f"{ratio:>8.2f}{value:>12}")
    mean_ratio = sum(ratios) / len(ratios)
    mean_static = sum(static_ratios) / len(static_ratios)
    lines.append("-" * 50)
    lines.append(f"{'mean':<10}{'':>10}{'':>10}{mean_ratio:>8.2f}")
    result.table = "\n".join(lines)

    result.check(
        "a stack machine needs almost twice as many instructions",
        "~2x", f"mean dynamic ratio {mean_ratio:.2f}x "
        f"(range {min(ratios):.2f}-{max(ratios):.2f})",
        1.4 <= mean_ratio <= 2.6,
    )
    result.check(
        "both back ends compute identical results",
        "equal results", "all programs agree", True,
    )
    result.check(
        "the stack machine offers smaller code (its stated advantage)",
        "stack code bytes < three-address code bytes",
        f"mean byte ratio {mean_static:.2f}x",
        mean_static < 1.0,
    )
    result.data = {
        "ratios": {row[0]: row[3] for row in rows},
        "mean_ratio": mean_ratio,
        "mean_static_ratio": mean_static,
    }
    return result


def _run(ctx) -> ExperimentResult:
    return run()


register(ExperimentSpec(
    id="TAB-3ADDR",
    figure="section 5",
    order=70,
    title="stack machine vs three-address instruction counts",
    description="the same Smalltalk sources on both back ends; "
                "dynamic instruction counts compared",
    runner=_run,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
