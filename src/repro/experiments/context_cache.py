"""TAB-CCACHE: context cache behaviour vs nesting depth (section 2.3).

Claims reproduced:

* "most programs rarely exceed a stack depth of 1024 words or 32
  contexts.  Thus a context cache of this modest size would almost
  never miss" -- recursion within 30 frames produces zero directory
  misses and zero context faults;
* "to handle larger nesting depths, a copy back mechanism could be
  employed" -- recursion past the cache's 32 blocks triggers the
  copy-back engine (LRU contexts retire to memory) and returns fault
  caller contexts back in, while execution stays functionally correct.
"""

from __future__ import annotations

from repro.config import make_com
from repro.core.machine import COMMachine
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.smalltalk import compile_program

_PROGRAM = """
SmallInteger >> down
    self < 1 ifTrue: [^0].
    ^(self - 1) down + 1

main | d |
    d := {depth} down.
    ^d
"""


def _run_depth(depth: int) -> COMMachine:
    machine = make_com()
    main = compile_program(machine, _PROGRAM.format(depth=depth))
    machine.run_program(main, max_instructions=5_000_000)
    return machine


def run(shallow_depth: int = 25, deep_depth: int = 200) -> ExperimentResult:
    result = ExperimentResult(
        "TAB-CCACHE context cache vs nesting depth",
        "Linear recursion at two depths on the 32-block context cache "
        "with a 2-block copy-back reserve.",
    )
    shallow = _run_depth(shallow_depth)
    deep = _run_depth(deep_depth)

    s_stats = shallow.context_cache.stats
    d_stats = deep.context_cache.stats

    rows = [
        ("recursion depth", str(shallow_depth), str(deep_depth)),
        ("context faults (reloads)", str(s_stats.faults),
         str(d_stats.faults)),
        ("copy-backs to memory", str(s_stats.copybacks),
         str(d_stats.copybacks)),
        ("directory hit ratio", f"{s_stats.directory_hit_ratio:.3f}",
         f"{d_stats.directory_hit_ratio:.3f}"),
        ("result correct", str(shallow.result().value == shallow_depth),
         str(deep.result().value == deep_depth)),
    ]
    width = max(len(r[0]) for r in rows) + 2
    lines = [f"{'quantity':<{width}}{'shallow':>10}{'deep':>10}",
             "-" * (width + 20)]
    lines += [f"{n:<{width}}{a:>10}{b:>10}" for n, a, b in rows]
    result.table = "\n".join(lines)

    result.check(
        "within 32 contexts the cache almost never misses",
        "0 faults at depth <= 30",
        f"{s_stats.faults} faults, {s_stats.copybacks} copy-backs at "
        f"depth {shallow_depth}",
        s_stats.faults == 0 and s_stats.copybacks == 0,
    )
    result.check(
        "deep nesting engages the copy-back engine",
        "copy-backs > 0 and faults > 0 at depth >> 32",
        f"{d_stats.copybacks} copy-backs, {d_stats.faults} faults at "
        f"depth {deep_depth}",
        d_stats.copybacks > 0 and d_stats.faults > 0,
    )
    result.check(
        "execution stays correct across copy-back and fault-in",
        "results equal the recursion depths",
        f"shallow={shallow.result().value}, deep={deep.result().value}",
        shallow.result().value == shallow_depth
        and deep.result().value == deep_depth,
    )
    result.data = {
        "shallow": {"faults": s_stats.faults,
                    "copybacks": s_stats.copybacks},
        "deep": {"faults": d_stats.faults, "copybacks": d_stats.copybacks},
    }
    return result


def _run(ctx) -> ExperimentResult:
    return run()


register(ExperimentSpec(
    id="TAB-CCACHE",
    figure="section 2.3",
    order=50,
    title="context cache vs nesting depth",
    description="linear recursion at two depths on the 32-block "
                "context cache with copy-back",
    runner=_run,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
