"""Experiments regenerating every figure and quantitative claim.

Index (see DESIGN.md section 4):

==========  ======================================================
FIG-10      ITLB hit ratio vs cache size      (:mod:`.fig10`)
FIG-11      instruction cache hit ratio        (:mod:`.fig11`)
TAB-CALL    call/return cycle costs            (:mod:`.call_cost`)
TAB-CTX     context allocation statistics      (:mod:`.context_stats`)
TAB-CCACHE  context cache vs nesting depth     (:mod:`.context_cache`)
TAB-ADDR    floating vs fixed addressing       (:mod:`.addr_compare`)
TAB-3ADDR   stack vs three-address counts      (:mod:`.stack_vs_3addr`)
==========  ======================================================

Every module registers an :class:`~repro.experiments.registry
.ExperimentSpec`; ``python -m repro run`` (or ``python -m
repro.experiments.harness``) drives the registry, with
``--only/--skip/--list`` selection and ``--jobs N`` parallelism.
"""

from repro.experiments.common import ClaimCheck, ExperimentResult
from repro.experiments.registry import ExperimentSpec, RunContext

__all__ = ["ClaimCheck", "ExperimentResult", "ExperimentSpec",
           "RunContext"]
