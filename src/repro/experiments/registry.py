"""The experiment registry: specs instead of a hand-wired driver.

Each experiment module registers an :class:`ExperimentSpec` -- id,
figure/table, description, the workloads it replays, and a runner --
at import time; :func:`load_all` imports the whole suite in DESIGN.md
order.  The harness (:mod:`repro.experiments.harness`) drives the
registry: ``--only``/``--skip`` select specs, ``--jobs N`` runs them
in a :class:`~concurrent.futures.ProcessPoolExecutor`.

Two execution grains:

* **monolithic** -- ``spec.runner(ctx)`` produces the finished
  :class:`~repro.experiments.common.ExperimentResult`;
* **sharded** (optional) -- a spec may name ``shards`` plus
  ``shard_runner``/``merger``; the pool executes one task per shard
  (each a picklable payload) and the parent merges.  The figure
  sweeps used this (one shard per associativity) until the
  single-pass stack-distance engine (:mod:`repro.sweep`) made each
  whole grid a single cheap replay; the mechanism remains for future
  experiments whose work genuinely splits.

A :class:`RunContext` carries the run-wide knobs (scale, quick, the
trace-store root).  It deliberately holds no live machine: every
worker process builds its own machines from scratch (via
:mod:`repro.config` factories) and shares *only* the immutable traces
through the on-disk store, so parallel experiments cannot alias
mutable simulator state.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.trace.columnar import Trace
from repro.workloads.store import TraceStore

#: DESIGN.md section-4 order; also the seed harness's stage order.
_MODULES = (
    "repro.experiments.fig10",
    "repro.experiments.fig11",
    "repro.experiments.call_cost",
    "repro.experiments.context_stats",
    "repro.experiments.context_cache",
    "repro.experiments.addr_compare",
    "repro.experiments.stack_vs_3addr",
)


@dataclass
class RunContext:
    """Run-wide parameters, cheap to pickle into worker processes."""

    scale: int = 1
    quick: bool = False
    trace_dir: Optional[str] = None
    #: Canonical JSON of the armed :class:`repro.faults.FaultPlan`,
    #: or None.  Pool children normally inherit the plan through the
    #: environment (``REPRO_FAULTS``); carrying it in the context too
    #: keeps worker re-arming explicit and covers exotic spawn setups
    #: that scrub the environment.
    fault_plan: Optional[str] = None
    #: Directory of the run's telemetry sink, or None when telemetry
    #: is off.  Like ``fault_plan`` this normally reaches pool
    #: children through the environment (``REPRO_TELEMETRY``); the
    #: context copy makes worker re-attachment explicit.
    telemetry_dir: Optional[str] = None
    _store: Optional[TraceStore] = field(default=None, repr=False,
                                         compare=False)

    @property
    def store(self) -> TraceStore:
        if self._store is None:
            self._store = TraceStore(self.trace_dir)
        return self._store

    def events(self, workload: str, **overrides) -> Trace:
        """The named workload's trace at this run's scale/quick mode.

        Loads go through the content-keyed store: what crosses a
        process boundary is the workload *name* (in ``pool_args`` /
        task arguments), never an event list -- each worker
        re-attaches to the store and maps the columnar payload
        straight into arrays.
        """
        return self.store.load(workload, quick=self.quick,
                               scale=self.scale, **overrides)

    def pool_args(self) -> dict:
        """Constructor kwargs for rebuilding this context in a worker."""
        return {"scale": self.scale, "quick": self.quick,
                "trace_dir": self.trace_dir,
                "fault_plan": self.fault_plan,
                "telemetry_dir": self.telemetry_dir}


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    ``runner(ctx)`` must return a picklable
    :class:`ExperimentResult`.  When ``shards`` is non-empty,
    ``shard_runner(ctx, key)`` computes one shard's payload and
    ``merger(ctx, {key: payload})`` assembles the result; both must
    be module-level functions (the pool pickles them by reference).
    """

    id: str
    figure: str
    title: str
    description: str
    runner: Callable[[RunContext], ExperimentResult]
    #: Suite position (DESIGN.md section-4 order); ties break by
    #: registration.  Import order must not matter: tests import
    #: experiment modules in arbitrary orders.
    order: int = 1000
    workloads: Tuple[str, ...] = ()
    shards: Tuple[object, ...] = ()
    shard_runner: Optional[Callable] = None
    merger: Optional[Callable] = None
    #: Optional declaration of the sweeps the runner will replay:
    #: ``sweeps(ctx)`` yields ``(workload_name, SweepSpec)`` pairs.
    #: The harness probes the on-disk sweep-result cache with these
    #: before scheduling pool tasks -- an experiment whose every
    #: declared sweep is already cached runs inline in the parent (a
    #: cache hit costs milliseconds; a worker process does not).
    #: Must be a module-level function (pickled by reference).
    sweeps: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.shards and not (self.shard_runner and self.merger):
            raise ValueError(
                f"{self.id}: shards declared without runner/merger")


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing != spec:
        raise ValueError(
            f"experiment {spec.id!r} already registered differently")
    _REGISTRY[spec.id] = spec
    return spec


def load_all() -> Tuple[ExperimentSpec, ...]:
    """Import every experiment module; returns specs in suite order."""
    for module in _MODULES:
        importlib.import_module(module)
    return specs()


def get(exp_id: str) -> ExperimentSpec:
    if exp_id not in _REGISTRY:
        load_all()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(_REGISTRY) or "(none)"
        raise KeyError(
            f"unknown experiment {exp_id!r}; registered: {known}") from None


def specs() -> Tuple[ExperimentSpec, ...]:
    """Registered specs in suite order (ExperimentSpec.order)."""
    ordered = sorted(_REGISTRY.values(),
                     key=lambda spec: (spec.order, spec.id))
    return tuple(ordered)


def select(only: Optional[List[str]] = None,
           skip: Optional[List[str]] = None) -> Tuple[ExperimentSpec, ...]:
    """Suite-order specs filtered by --only/--skip id lists."""
    load_all()
    chosen = list(specs())
    if only:
        wanted = {exp_id.upper() for exp_id in only}
        unknown = wanted - {spec.id for spec in chosen}
        if unknown:
            raise KeyError(f"unknown experiment id(s): {sorted(unknown)}")
        chosen = [spec for spec in chosen if spec.id in wanted]
    if skip:
        dropped = {exp_id.upper() for exp_id in skip}
        unknown = dropped - {spec.id for spec in specs()}
        if unknown:
            raise KeyError(f"unknown experiment id(s): {sorted(unknown)}")
        chosen = [spec for spec in chosen if spec.id not in dropped]
    return tuple(chosen)
