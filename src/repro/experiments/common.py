"""Shared result structures for the reproduction experiments.

Every experiment returns an :class:`ExperimentResult`: a set of
:class:`ClaimCheck` rows (paper claim vs measured value vs verdict),
a printable table, and the raw data dictionary for programmatic use
(tests and benchmarks assert on ``data``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ClaimCheck:
    """One paper claim compared against our measurement."""

    claim: str
    paper: str
    measured: str
    holds: bool

    def row(self) -> str:
        verdict = "REPRODUCED" if self.holds else "DIVERGES"
        return f"  [{verdict:>10}] {self.claim}\n" \
               f"               paper: {self.paper}\n" \
               f"               measured: {self.measured}"


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment: str
    description: str
    claims: List[ClaimCheck] = field(default_factory=list)
    table: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def check(self, claim: str, paper: str, measured: str,
              holds: bool) -> ClaimCheck:
        result = ClaimCheck(claim, paper, measured, holds)
        self.claims.append(result)
        return result

    def report(self) -> str:
        lines = [f"=== {self.experiment} ===", self.description, ""]
        if self.table:
            lines.append(self.table)
            lines.append("")
        for claim in self.claims:
            lines.append(claim.row())
        lines.append("")
        return "\n".join(lines)


def semantics_delta_section(cache, sizes, associativities, events,
                            warmup_fraction: float = 0.25):
    """The figure experiments' paper-vs-v2 comparison, shared.

    The figure grids themselves use the quirk-free double-pass
    methodology, so the quirk cost is quantified on the fraction
    warm-up window instead.  Returns ``(table, delta)``: the per-cell
    delta table to append to the figure output, and the raw
    ``delta[assoc][size]`` grid for ``result.data``.
    """
    from repro.sweep import (SweepSpec, run_semantics_delta,
                             semantics_delta_table)
    paper, v2, delta = run_semantics_delta(
        SweepSpec(cache=cache, sizes=tuple(sizes),
                  associativities=tuple(associativities),
                  double_pass=False, warmup_fraction=warmup_fraction),
        events)
    return semantics_delta_table(paper, v2), delta
