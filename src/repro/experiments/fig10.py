"""FIG-10: ITLB hit ratio vs cache size (paper figure 10).

Claims reproduced:

* "a 99% hit ratio can be realized with a 512 entry 2-way associative
  cache";
* "a great deal can be gained by having at least a 2-way associative
  cache" (2-way clearly beats direct mapping at mid sizes);
* "it is not clear that adding more associativity improves the hit
  ratio much" (4-way's gain over 2-way is marginal);
* direct-mapped results "agree within a few percent" with published
  software method-cache data (high-90s hit ratios at a few hundred
  entries).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    semantics_delta_section,
)
from repro.experiments.registry import ExperimentSpec, register
from repro.sweep import SweepSpec, run_sweep
from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    SweepResult,
    ascii_plot,
)
from repro.trace.columnar import Trace, as_trace
from repro.trace.workloads import paper_trace


def figure_spec(sizes: Sequence[int] = PAPER_SIZES,
                associativities: Sequence = PAPER_ASSOCIATIVITIES,
                semantics: str = "paper") -> SweepSpec:
    """The exact sweep FIG-10 replays.

    Shared between :func:`run` (which executes it) and the registry's
    ``sweeps`` declaration (which the harness uses to probe the
    sweep-result cache): one definition, so the probe key can never
    drift from what the runner actually computes.
    """
    return SweepSpec(cache="itlb", sizes=tuple(sizes),
                     associativities=tuple(associativities),
                     double_pass=True, semantics=semantics)


def run(scale: int = 1, events: Optional[Trace] = None,
        sizes: Sequence[int] = PAPER_SIZES,
        associativities: Sequence = PAPER_ASSOCIATIVITIES,
        plot: bool = True,
        sweep: Optional[SweepResult] = None,
        semantics: str = "paper",
        compare_semantics: bool = False) -> ExperimentResult:
    """Regenerate figure 10 and check its claims.

    The grid comes from the single-pass stack-distance engine
    (:mod:`repro.sweep`): one warm replay plus one measured replay of
    the trace produce every (size, associativity) point at once.
    ``sweep`` short-circuits with precomputed ratios; claims are
    always re-checked against it.  ``semantics`` picks the
    measurement-semantics version for the figure grid (the paper pin
    needs the default); ``compare_semantics`` appends a paper-vs-v2
    delta table over the quirk-exposed fraction warm-up window, so the
    cost of each warm-up quirk is quantified rather than buried.
    """
    events = paper_trace(scale) if events is None else as_trace(events)
    if sweep is None:
        sweep = run_sweep(figure_spec(sizes, associativities, semantics),
                          events).to_sweep_result()
    result = ExperimentResult(
        "FIG-10 ITLB hit ratio vs cache size",
        "Fith corpus + polymorphic workload traces replayed against the "
        "ITLB with the paper's double warm-up methodology.",
    )
    result.table = sweep.table()
    if plot:
        result.table += "\n\n" + ascii_plot(sweep)
    result.data = {
        "sweep": sweep,
        "trace_length": len(events),
        "dispatched": events.dispatched_count(),
        "distinct_keys": events.unique_itlb_key_count(),
        "engine": sweep.meta.get("engine"),
        "trace_passes": sweep.meta.get("trace_passes"),
        "semantics": sweep.meta.get("semantics", semantics),
    }
    if compare_semantics:
        delta_table, delta = semantics_delta_section(
            "itlb", sizes, associativities, events)
        result.table += "\n\n" + delta_table
        result.data["semantics_delta"] = delta

    ratio_512_2w = sweep.ratio(2, 512)
    result.check(
        "99% hit ratio at a 512-entry 2-way ITLB",
        ">= 0.99",
        f"{ratio_512_2w:.4f}",
        ratio_512_2w >= 0.99,
    )
    mid_sizes = [s for s in sizes if 16 <= s <= 256]
    gain_2way = sum(sweep.ratio(2, s) - sweep.ratio(1, s)
                    for s in mid_sizes) / len(mid_sizes)
    result.check(
        "2-way associativity gains a great deal over direct mapping "
        "(mean gain over 16..256 entries)",
        "clearly positive",
        f"+{gain_2way:.4f} mean hit-ratio gain",
        gain_2way > 0.01,
    )
    gain_4way = sum(sweep.ratio(4, s) - sweep.ratio(2, s)
                    for s in mid_sizes) / len(mid_sizes)
    result.check(
        "more associativity beyond 2-way helps much less",
        "marginal",
        f"+{gain_4way:.4f} mean gain (vs +{gain_2way:.4f} for 2-way)",
        gain_4way < gain_2way,
    )
    dm_512 = sweep.ratio(1, 512)
    result.check(
        "direct-mapped ITLB at a few hundred entries is within a few "
        "percent of the 2-way result (matches published software-cache "
        "data)",
        "within a few percent of 2-way",
        f"1-way@512 = {dm_512:.4f} vs 2-way@512 = {ratio_512_2w:.4f}",
        abs(ratio_512_2w - dm_512) < 0.05,
    )
    result.data["ratio_512_2w"] = ratio_512_2w
    return result


# -- registry wiring ---------------------------------------------------

def _run(ctx) -> ExperimentResult:
    return run(ctx.scale, events=ctx.events("paper"))


def _sweeps(ctx):
    return [("paper", figure_spec())]


# The per-associativity shards this spec used to declare are gone: the
# single-pass engine computes the whole grid in one replay, so under
# --jobs the figure is one (fast) pool task instead of three slow ones.
register(ExperimentSpec(
    id="FIG-10",
    figure="figure 10",
    order=10,
    title="ITLB hit ratio vs cache size",
    description="ITLB size/associativity sweep over the section-5 "
                "measurement trace (single-pass stack-distance engine)",
    runner=_run,
    workloads=("paper",),
    sweeps=_sweeps,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
