"""FIG-11: instruction cache hit ratio vs cache size (paper figure 11).

Claim reproduced: "it appears that a 2 or 4-way associative cache with
4096 entries is required to achieve a 99% hit ratio" -- i.e. the
instruction cache needs both the largest swept size *and* associativity
above direct mapping, a much larger structure than the ITLB needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    semantics_delta_section,
)
from repro.experiments.registry import ExperimentSpec, register
from repro.sweep import SweepSpec, run_sweep
from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    SweepResult,
    ascii_plot,
)
from repro.trace.columnar import Trace, as_trace
from repro.trace.workloads import paper_trace


def figure_spec(sizes: Sequence[int] = PAPER_SIZES,
                associativities: Sequence = PAPER_ASSOCIATIVITIES,
                semantics: str = "paper") -> SweepSpec:
    """The exact sweep FIG-11 replays (see
    :func:`repro.experiments.fig10.figure_spec` for why this is one
    shared definition rather than inline construction)."""
    return SweepSpec(cache="icache", sizes=tuple(sizes),
                     associativities=tuple(associativities),
                     double_pass=True, semantics=semantics)


def run(scale: int = 1, events: Optional[Trace] = None,
        sizes: Sequence[int] = PAPER_SIZES,
        associativities: Sequence = PAPER_ASSOCIATIVITIES,
        plot: bool = True,
        sweep: Optional[SweepResult] = None,
        semantics: str = "paper",
        compare_semantics: bool = False) -> ExperimentResult:
    """Regenerate figure 11 and check its claims.

    The grid comes from the single-pass stack-distance engine (see
    :mod:`.fig10`); ``sweep`` accepts a precomputed grid, and the
    claims are re-checked against it either way.  ``semantics`` and
    ``compare_semantics`` behave as in :func:`repro.experiments.fig10.run`.
    """
    events = paper_trace(scale) if events is None else as_trace(events)
    if sweep is None:
        sweep = run_sweep(figure_spec(sizes, associativities, semantics),
                          events).to_sweep_result()
    result = ExperimentResult(
        "FIG-11 instruction cache hit ratio vs cache size",
        "The same traces' instruction-address stream replayed against "
        "the instruction cache (modulo-indexed, as hardware indexes).",
    )
    result.table = sweep.table()
    if plot:
        result.table += "\n\n" + ascii_plot(sweep)
    result.data = {
        "sweep": sweep,
        "trace_length": len(events),
        "distinct_addresses": events.unique_address_count(),
        "engine": sweep.meta.get("engine"),
        "trace_passes": sweep.meta.get("trace_passes"),
        "semantics": sweep.meta.get("semantics", semantics),
    }
    if compare_semantics:
        delta_table, delta = semantics_delta_section(
            "icache", sizes, associativities, events)
        result.table += "\n\n" + delta_table
        result.data["semantics_delta"] = delta

    r_4096_2w = sweep.ratio(2, 4096)
    r_4096_4w = sweep.ratio(4, 4096)
    r_4096_1w = sweep.ratio(1, 4096)
    r_2048_2w = sweep.ratio(2, 2048)
    result.check(
        "99% needs a 4096-entry cache with 2- or 4-way associativity",
        ">= 0.99 at 4096 entries, 2/4-way",
        f"2-way@4096 = {r_4096_2w:.4f}, 4-way@4096 = {r_4096_4w:.4f}",
        max(r_4096_2w, r_4096_4w) >= 0.99,
    )
    result.check(
        "direct mapping is not enough even at 4096 entries",
        "< 0.99 at 4096 entries 1-way",
        f"1-way@4096 = {r_4096_1w:.4f}",
        r_4096_1w < 0.99,
    )
    result.check(
        "half the size (2048 entries) is not enough either",
        "< 0.99 at 2048 entries 2-way",
        f"2-way@2048 = {r_2048_2w:.4f}",
        r_2048_2w < 0.99,
    )
    result.check(
        "the instruction cache must be much larger than the ITLB for "
        "the same hit ratio",
        "4096 entries vs 512 entries",
        f"icache 99% point: {sweep.smallest_size_reaching(0.99, 2)}; "
        f"(ITLB reaches 99% well below 512 -- see FIG-10)",
        (sweep.smallest_size_reaching(0.99, 2) or 1 << 30) >= 2048,
    )
    result.data.update({
        "ratio_4096_2w": r_4096_2w,
        "ratio_4096_1w": r_4096_1w,
        "ratio_2048_2w": r_2048_2w,
    })
    return result


# -- registry wiring ---------------------------------------------------

def _run(ctx) -> ExperimentResult:
    return run(ctx.scale, events=ctx.events("paper"))


def _sweeps(ctx):
    return [("paper", figure_spec())]


# Formerly sharded per associativity for the parallel harness; the
# single-pass engine replays the trace once for the whole grid, so
# the experiment is a single task (and no longer dominates the suite).
register(ExperimentSpec(
    id="FIG-11",
    figure="figure 11",
    order=20,
    title="instruction cache hit ratio vs cache size",
    description="instruction-cache size/associativity sweep over the "
                "section-5 measurement trace (single-pass "
                "stack-distance engine)",
    runner=_run,
    workloads=("paper",),
    sweeps=_sweeps,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
