"""TAB-CTX: context allocation and reference statistics (section 2.3).

The paper motivates its context hardware with measurements from the
Smalltalk-80 system [1, 7, 19]:

* "85% of all object allocations and deallocations involve contexts";
* "over 91% of all memory references are to contexts";
* "85% of contexts allocated in Smalltalk are indeed LIFO contexts";
* 32-word contexts cover the overwhelming majority of frames (for C,
  90% of frames are under 32 words; Smalltalk methods are smaller).

We reproduce the *regime*, not the third decimal: a mixed Smalltalk
workload (recursion, object allocation and access, iteration, plus a
block-like capture pattern built from movea/at:put:) runs on the COM
and the machine's own counters are compared against those figures.
"""

from __future__ import annotations

from repro.config import make_com
from repro.core.assembler import Assembler
from repro.core.machine import COMMachine
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.smalltalk import compile_program

#: The measurement workload.  fib supplies deep LIFO recursion; Point
#: allocation and access supply non-context objects and heap traffic;
#: the escape: sends capture their activation (non-LIFO contexts).
WORKLOAD = """
class Point extends Object fields: x y

Point >> setX: ax y: ay
    x := ax. y := ay. ^self

Point >> sum
    ^x + y

SmallInteger >> fib
    self < 2 ifTrue: [^self].
    ^(self - 1) fib + (self - 2) fib

SmallInteger >> sumTo
    | acc |
    acc := 0.
    1 to: self do: [:k | acc := acc + k].
    ^acc

main | cell total p i |
    cell := Array new: 8.
    total := 0.
    total := total + 12 fib.
    i := 0.
    [i < 40] whileTrue: [
        p := Point new. p := Point new. p := Point new.
        p := Point new. p := Point new.
        p setX: i y: i.
        total := total + p sum.
        total := total + 50 sumTo.
        i := i + 1.
        i escape: cell.
        total escape: cell
    ].
    ^total
"""

#: Assembly for the capture pattern: stores a pointer into the current
#: context into a heap object, making this activation non-LIFO (the
#: stand-in for a Smalltalk block capturing its home context).
ESCAPE_METHOD = """
c3 = & c4
c2 [ 0 ] = c3
ret c1
"""


def build_machine() -> COMMachine:
    machine = make_com()
    main = compile_program(machine, WORKLOAD)
    assembler = Assembler(machine.opcodes, machine.constants)
    machine.install_method(
        machine.registry.by_name("SmallInteger"), "escape:",
        assembler.assemble_lines(ESCAPE_METHOD.strip().splitlines()),
        argument_count=1,
    )
    machine._workload_main = main
    return machine


def run(max_instructions: int = 2_000_000) -> ExperimentResult:
    machine = build_machine()
    machine.run_program(machine._workload_main,
                        max_instructions=max_instructions)

    # -- allocations/deallocations involving contexts -------------------
    activations = machine.activation_count
    context_frees = machine.recycler.stats.total_freed
    other = machine.heap.stats
    other_allocs = sum(n for kind, n in other.allocations.items()
                       if kind != "context")
    other_frees = sum(n for kind, n in other.deallocations.items()
                      if kind != "context")
    context_events = activations + context_frees
    total_events = context_events + other_allocs + other_frees
    context_alloc_fraction = context_events / total_events

    # -- memory references to contexts ----------------------------------
    profile = machine.profile
    context_ref_fraction = profile.context_fraction

    # -- LIFO fraction ----------------------------------------------------
    lifo_fraction = machine.recycler.stats.lifo_fraction

    # -- frame sizes -------------------------------------------------------
    fitting = machine.frame_sizes.fraction_fitting(32)

    result = ExperimentResult(
        "TAB-CTX context allocation / reference statistics",
        "A mixed Smalltalk workload (recursion, allocation, iteration "
        "and context capture) measured by the machine's own counters.",
    )
    rows = [
        ("allocations+frees involving contexts", "85%",
         f"{context_alloc_fraction:.1%}"),
        ("memory references to contexts", ">91%",
         f"{context_ref_fraction:.1%}"),
        ("contexts freed on the LIFO fast path", "85%",
         f"{lifo_fraction:.1%}"),
        ("method frames fitting 32 words", ">=90%", f"{fitting:.1%}"),
    ]
    width = max(len(r[0]) for r in rows) + 2
    lines = [f"{'quantity':<{width}}{'paper':>8}{'measured':>12}",
             "-" * (width + 20)]
    lines += [f"{n:<{width}}{p:>8}{m:>12}" for n, p, m in rows]
    result.table = "\n".join(lines)

    result.check(
        "the context-allocation share dominates (paper: 85%)",
        "~0.85", f"{context_alloc_fraction:.3f}",
        context_alloc_fraction > 0.70,
    )
    result.check(
        "memory references are overwhelmingly to contexts (paper: 91%)",
        ">0.91 in Smalltalk-80", f"{context_ref_fraction:.3f}",
        context_ref_fraction > 0.75,
    )
    result.check(
        "most contexts are LIFO (paper: 85%)",
        "~0.85", f"{lifo_fraction:.3f}",
        0.70 <= lifo_fraction < 1.0,
    )
    result.check(
        "32-word contexts cover nearly all frames (paper: >=90% for C, "
        "Smalltalk smaller)",
        ">=0.90", f"{fitting:.3f}", fitting >= 0.90,
    )
    result.data = {
        "context_alloc_fraction": context_alloc_fraction,
        "context_ref_fraction": context_ref_fraction,
        "lifo_fraction": lifo_fraction,
        "frames_fitting": fitting,
        "activations": activations,
        "other_allocations": other_allocs,
    }
    return result


def _run(ctx) -> ExperimentResult:
    return run()


register(ExperimentSpec(
    id="TAB-CTX",
    figure="section 2.3",
    order=40,
    title="context allocation / reference statistics",
    description="mixed Smalltalk workload measured by the machine's "
                "own allocation and reference counters",
    runner=_run,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
