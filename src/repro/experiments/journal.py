"""Crash-safe run journal: atomic per-experiment result records.

A harness run that dies halfway (worker crash, OOM, ^C) used to lose
every completed result.  The journal writes one record per finished
experiment under ``.repro_runs/<run-key>/`` (override the root with
``REPRO_RUN_DIR`` or the ``--run-dir`` flag) the moment it completes,
via the same temp-file + ``os.replace`` discipline as the trace
store, so a record is either fully present or absent -- never torn.

``repro run --resume`` replays the journal: experiments with a valid
record for the *same run key* are served from disk and skipped.  The
run key is a hash of everything that could change a result -- scale,
quick mode, the selected suite, the trace directory -- so a resume
can never stitch together results from two different runs.

Records are pickles of :class:`~repro.experiments.common
.ExperimentResult` (plain dataclasses).  A truncated or unreadable
record (the crash may have hit mid-replace on exotic filesystems) is
treated as absent and deleted.  Failure placeholders are never
journaled: a resumed run retries what did not complete.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro import telemetry
from repro.experiments.common import ExperimentResult

_RECORD_SUFFIX = ".result"


def default_root() -> Path:
    """The journal directory: $REPRO_RUN_DIR or ./.repro_runs."""
    return Path(os.environ.get("REPRO_RUN_DIR", ".repro_runs"))


def run_key(*, scale: int, quick: bool, suite: Sequence[str],
            trace_dir: Optional[str]) -> str:
    """Hash of the run identity; resume only matches identical runs."""
    identity = json.dumps(
        {"scale": scale, "quick": quick, "suite": list(suite),
         "trace_dir": trace_dir},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(identity.encode()).hexdigest()[:16]


class RunJournal:
    """Per-experiment result records for one run identity."""

    def __init__(self, key: str, root: Optional[os.PathLike] = None,
                 manifest: Optional[dict] = None) -> None:
        self.key = key
        self.root = Path(root) if root is not None else default_root()
        self.directory = self.root / key
        self._manifest = dict(manifest or {})

    # -- record naming ---------------------------------------------------

    def _record_path(self, exp_id: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_"
                       for ch in exp_id)
        return self.directory / f"{safe}{_RECORD_SUFFIX}"

    # -- lifecycle -------------------------------------------------------

    def start(self, *, resume: bool) -> Dict[str, ExperimentResult]:
        """Open the journal; returns the completed records.

        Without ``resume`` any stale records for this key are cleared
        first, so the returned dict is empty and the run starts
        fresh.
        """
        if not resume:
            self.clear()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._write_manifest()
        if not resume:
            return {}
        with telemetry.span("journal.resume", run=self.key) as sp:
            done = self.completed()
            sp.set(served=len(done))
        return done

    def _write_manifest(self) -> None:
        manifest = dict(self._manifest)
        manifest.setdefault("key", self.key)
        manifest["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        try:
            (self.directory / "manifest.json").write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass  # the manifest is documentation, not state

    def record(self, exp_id: str, result: ExperimentResult) -> None:
        """Atomically persist one completed experiment's result."""
        with telemetry.span("journal.record", experiment=exp_id):
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._record_path(exp_id)
            blob = pickle.dumps((exp_id, result),
                                protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                       prefix=path.stem, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            telemetry.inc("journal.records")

    def completed(self) -> Dict[str, ExperimentResult]:
        """exp id -> journaled result, skipping unreadable records."""
        out: Dict[str, ExperimentResult] = {}
        if not self.directory.is_dir():
            return out
        for path in sorted(self.directory.glob(f"*{_RECORD_SUFFIX}")):
            try:
                exp_id, result = pickle.loads(path.read_bytes())
            except Exception:
                # Torn or stale record: absent, and not worth keeping.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if isinstance(exp_id, str) \
                    and isinstance(result, ExperimentResult):
                out[exp_id] = result
        return out

    def clear(self) -> None:
        """Drop every record (and temp debris) for this run key.

        Subdirectories -- notably the run's ``telemetry/`` sink --
        are removed too: a fresh (non-resume) run must not inherit a
        previous run's spans or metric shards.
        """
        if not self.directory.is_dir():
            return
        for path in self.directory.iterdir():
            try:
                if path.is_dir():
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    path.unlink()
            except OSError:
                pass
