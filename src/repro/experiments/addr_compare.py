"""TAB-ADDR: floating point vs fixed-field addressing (section 2.2).

Claims reproduced analytically and by simulation:

* a 36-bit MULTICS-style address (two fixed 18-bit fields) names 256K
  segments of at most 256K words;
* a 36-bit floating point address (5-bit exponent, 31-bit mantissa)
  accommodates billions of segments and segments of up to 2 billion
  words -- "both limits" of the fixed scheme removed at once;
* the paper's worked example: the 16-bit address 0x8345 has exponent
  8, offset 0x45 and segment name 0x83;
* under a small-object-heavy workload (the *small object problem*),
  the fixed scheme either runs out of segment names or wastes its
  offset space, while the floating scheme names every object with a
  right-sized exponent.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import ExperimentSpec, register
from repro.memory.fpa import (
    address_format,
    floating_capacity,
    multics_style_capacity,
)


def _simulate_small_object_problem(fmt_bits: int = 36):
    """How many objects can each scheme name, mixing sizes?

    Workload: the object population of section 2.2's motivation -- vast
    numbers of small objects (2-32 words) plus a few giant ones (up to
    2**30 words, e.g. images).
    """
    fmt = address_format(fmt_bits)
    multics_segments, multics_max = multics_style_capacity(fmt_bits)
    # Fixed scheme: every object burns one segment name regardless of
    # size; large objects must be *split* into ceil(size / max) pieces.
    giant = 1 << 30
    multics_pieces_per_giant = -(-giant // multics_max)
    # Floating scheme: name capacity per size class.
    small_names = sum(fmt.segment_names_for_exponent(e) for e in range(6))
    giant_exponent = fmt.exponent_for_size(giant)
    giant_names = fmt.segment_names_for_exponent(giant_exponent)
    return {
        "multics_segments": multics_segments,
        "multics_max_words": multics_max,
        "multics_pieces_per_giant": multics_pieces_per_giant,
        "floating_small_names": small_names,
        "floating_giant_names": giant_names,
        "floating_total_names": fmt.total_segment_names(),
        "floating_max_words": fmt.max_segment_words,
    }


def run(fmt_bits: int = 36) -> ExperimentResult:
    result = ExperimentResult(
        "TAB-ADDR floating point vs MULTICS-style addressing",
        "Name-space capacity of the two 36-bit formats, plus the "
        "paper's 16-bit worked example.",
    )
    floating_names, floating_max = floating_capacity(fmt_bits)
    multics_names, multics_max = multics_style_capacity(fmt_bits)
    sim = _simulate_small_object_problem(fmt_bits)

    rows = [
        ("segments nameable (fixed)", f"{multics_names:,}"),
        ("max segment words (fixed)", f"{multics_max:,}"),
        ("segments nameable (floating)", f"{floating_names:,}"),
        ("max segment words (floating)", f"{floating_max:,}"),
        ("pieces to hold one 2^30-word object (fixed)",
         f"{sim['multics_pieces_per_giant']:,}"),
        ("pieces (floating)", "1"),
        ("names for objects of <= 32 words (floating)",
         f"{sim['floating_small_names']:,}"),
    ]
    width = max(len(r[0]) for r in rows) + 2
    lines = [f"{'quantity':<{width}}{'value':>18}",
             "-" * (width + 18)]
    lines += [f"{n:<{width}}{v:>18}" for n, v in rows]
    result.table = "\n".join(lines)

    result.check(
        "MULTICS-style 36-bit: 256K segments of <= 256K words",
        "262,144 and 262,144",
        f"{multics_names:,} and {multics_max:,}",
        multics_names == 1 << 18 and multics_max == 1 << 18,
    )
    result.check(
        "floating 36-bit: billions of segments (paper: ~8 billion)",
        "~8e9 (paper's rounding)",
        f"{floating_names:,} (exact: 2**32 - 1)",
        floating_names > 4_000_000_000,
    )
    result.check(
        "floating 36-bit: segments up to 2 billion words",
        "2**31",
        f"{floating_max:,}",
        floating_max == 1 << 31,
    )
    fmt16 = address_format(16)
    example = fmt16.from_packed(0x8345)
    result.check(
        "worked example: 0x8345 -> exponent 8, offset 0x45, segment 0x83",
        "E=8, offset=0x45, segment name 0x83",
        f"E={example.exponent}, offset={example.offset:#x}, "
        f"segment name {example.packed_segment_name:#x}",
        example.exponent == 8 and example.offset == 0x45
        and example.packed_segment_name == 0x83,
    )
    result.check(
        "a 2^30-word object needs no splitting under floating addresses",
        "1 segment (vs 4096 fixed pieces)",
        f"floating: 1, fixed: {sim['multics_pieces_per_giant']:,}",
        sim["multics_pieces_per_giant"] > 1,
    )
    result.data = dict(sim, floating_names=floating_names,
                       multics_names=multics_names)
    return result


def _run(ctx) -> ExperimentResult:
    return run()


register(ExperimentSpec(
    id="TAB-ADDR",
    figure="section 2.2",
    order=60,
    title="floating point vs MULTICS-style addressing",
    description="name-space capacity of the two 36-bit formats plus "
                "the paper's 16-bit worked example",
    runner=_run,
))


if __name__ == "__main__":  # pragma: no cover
    print(run().report())
