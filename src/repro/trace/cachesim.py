"""Trace-driven cache simulation (the section-5 methodology).

"The experiments were run on the Fith Machine simulator, a suite of C
programs including a Fith interpreter and a cache simulator which
processed address traces to produce cache statistics. [...] For each
trace, the instruction cache hit ratio and ITLB hit ratio was recorded
for several cache sizes and associativities.  A warmup trace was run
before the measurement trace to avoid biasing the results."

This module is that cache simulator: it replays
:class:`~repro.trace.events.TraceEvent` streams against ITLB and
instruction-cache models, with a warm-up prefix excluded from the
recorded statistics, and sweeps size x associativity grids to
regenerate figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.caches.icache import InstructionCache
from repro.caches.itlb import ITLB
from repro.caches.stats import CacheStats
from repro.trace.columnar import as_trace
from repro.trace.events import TraceEvent
from repro.trace.semantics import DEFAULT_SEMANTICS, reset_index

#: The paper's sweep: sizes 8..4096 (log2 = 3..12).
PAPER_SIZES = tuple(1 << k for k in range(3, 13))
#: Associativities plotted in figures 10/11.
PAPER_ASSOCIATIVITIES = (1, 2, 4)


def simulate_itlb(
    events: Sequence[TraceEvent],
    size: int,
    associativity: Union[int, str] = 2,
    *,
    policy: str = "lru",
    warmup_fraction: float = 0.25,
    double_pass: bool = False,
    dispatched_only: bool = True,
    semantics: str = DEFAULT_SEMANTICS,
) -> CacheStats:
    """Replay a trace against one ITLB configuration.

    ``dispatched_only`` restricts the stream to abstract (translated)
    instructions, which is what the ITLB actually sees; pass False to
    model a machine that translates every instruction.

    ``double_pass`` implements the paper's warm-up methodology exactly:
    "a warmup trace was run before the measurement trace" -- the whole
    trace is replayed once unmeasured, then measured on a second pass,
    so the recorded ratios contain no compulsory misses.  Otherwise the
    first ``warmup_fraction`` of the single pass is excluded, with the
    cut placed by :func:`repro.trace.semantics.reset_index` under the
    chosen ``semantics`` version (``"paper"`` reproduces the
    historical quirks bit-for-bit; ``"v2"`` fixes them).

    The replay iterates the packed opcode/class columns of a columnar
    :class:`~repro.trace.columnar.Trace` (legacy event lists are
    packed once up front); no per-event objects are touched.
    """
    itlb = ITLB(size, associativity, policy)
    trace = as_trace(events)
    opcodes = trace.opcodes()
    classes = trace.receiver_classes()
    indices = (trace.dispatched_indices() if dispatched_only
               else range(len(trace)))
    reference = itlb.reference
    if double_pass:
        for i in indices:
            reference(opcodes[i], (classes[i],))
        itlb.reset_stats()
        for i in indices:
            reference(opcodes[i], (classes[i],))
        return itlb.stats.snapshot()
    n_refs = len(indices)
    reset_at = reset_index(semantics, "itlb", trace, n_refs,
                           warmup_fraction=warmup_fraction,
                           dispatched_only=dispatched_only)
    position = 0
    for i in indices:
        if position == reset_at:
            itlb.reset_stats()
        reference(opcodes[i], (classes[i],))
        position += 1
    if reset_at is not None and reset_at >= n_refs:
        itlb.reset_stats()
    return itlb.stats.snapshot()


def simulate_icache(
    events: Sequence[TraceEvent],
    size: int,
    associativity: Union[int, str] = 2,
    *,
    line_words: int = 1,
    policy: str = "lru",
    warmup_fraction: float = 0.25,
    double_pass: bool = False,
    semantics: str = DEFAULT_SEMANTICS,
) -> CacheStats:
    """Replay the instruction-address stream against one icache config.

    See :func:`simulate_itlb` for the warm-up semantics.
    """
    icache = InstructionCache(size, associativity, line_words, policy)
    trace = as_trace(events)
    addresses = trace.addresses()
    reference = icache.reference
    if double_pass:
        for address in addresses:
            reference(address)
        icache.reset_stats()
        for address in addresses:
            reference(address)
        return icache.stats.snapshot()
    reset_at = reset_index(semantics, "icache", trace, len(trace),
                           warmup_fraction=warmup_fraction)
    for index, address in enumerate(addresses):
        if index == reset_at:
            icache.reset_stats()
        reference(address)
    if reset_at is not None and reset_at >= len(trace):
        icache.reset_stats()
    return icache.stats.snapshot()


@dataclass
class SweepResult:
    """Hit ratios over a size x associativity grid.

    ``ratios[assoc][size]`` is the measured hit ratio.  ``label`` names
    the cache being swept ("ITLB" or "instruction cache").  ``meta``
    records how the grid was computed (engine, simulation pass count)
    when it came out of the sweep subsystem.
    """

    label: str
    sizes: Sequence[int]
    associativities: Sequence[Union[int, str]]
    ratios: Dict[Union[int, str], Dict[int, float]] = field(
        default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def ratio(self, associativity, size) -> float:
        return self.ratios[associativity][size]

    def smallest_size_reaching(self, target: float,
                               associativity) -> Optional[int]:
        """Smallest swept size whose hit ratio meets ``target``."""
        for size in self.sizes:
            if self.ratios[associativity][size] >= target:
                return size
        return None

    def table(self) -> str:
        """A figure-style text table: rows = log2 size, cols = assoc."""
        header = "log2(size)  size " + "".join(
            f"{str(a) + '-way':>10}" for a in self.associativities)
        lines = [f"{self.label} hit ratio vs cache size", header,
                 "-" * len(header)]
        for size in self.sizes:
            row = f"{size.bit_length() - 1:10d} {size:5d}"
            for associativity in self.associativities:
                row += f"{self.ratios[associativity][size]:10.4f}"
            lines.append(row)
        return "\n".join(lines)


def sweep_itlb(
    events: Sequence[TraceEvent],
    sizes: Sequence[int] = PAPER_SIZES,
    associativities: Sequence[Union[int, str]] = PAPER_ASSOCIATIVITIES,
    **kwargs,
) -> SweepResult:
    """Figure 10's grid: ITLB hit ratio for each size/associativity.

    Routed through the sweep subsystem (:mod:`repro.sweep`): LRU
    grids with power-of-two set counts are computed by the
    single-pass stack-distance engine (one trace replay for the whole
    grid) and other specs by per-configuration simulation; both paths
    return bitwise-identical ratios.  Keyword arguments become
    :class:`~repro.sweep.spec.SweepSpec` fields (``policy``,
    ``warmup_fraction``, ``double_pass``, ``dispatched_only``,
    ``engine``, ...).
    """
    from repro.sweep import SweepSpec, run_sweep
    spec = SweepSpec(cache="itlb", sizes=tuple(sizes),
                     associativities=tuple(associativities), **kwargs)
    return run_sweep(spec, events).to_sweep_result()


def sweep_icache(
    events: Sequence[TraceEvent],
    sizes: Sequence[int] = PAPER_SIZES,
    associativities: Sequence[Union[int, str]] = PAPER_ASSOCIATIVITIES,
    **kwargs,
) -> SweepResult:
    """Figure 11's grid: instruction-cache hit ratio per configuration.

    See :func:`sweep_itlb`; the icache spec additionally takes
    ``line_words``.
    """
    from repro.sweep import SweepSpec, run_sweep
    spec = SweepSpec(cache="icache", sizes=tuple(sizes),
                     associativities=tuple(associativities), **kwargs)
    return run_sweep(spec, events).to_sweep_result()


def ascii_plot(result: SweepResult, width: int = 60,
               height: int = 16) -> str:
    """A rough ASCII rendition of the figure (hit ratio vs log2 size)."""
    sizes = list(result.sizes)
    rows = [[" "] * width for _ in range(height)]
    markers = {}
    for index, associativity in enumerate(result.associativities):
        markers[associativity] = "1248f"[index] if index < 5 else "*"
    for associativity in result.associativities:
        for i, size in enumerate(sizes):
            x = int(i * (width - 1) / max(len(sizes) - 1, 1))
            ratio = result.ratios[associativity][size]
            y = height - 1 - int(ratio * (height - 1))
            rows[y][x] = markers[associativity]
    lines = [f"{result.label}: hit ratio (y: 0..1) vs log2 size "
             f"({sizes[0].bit_length() - 1}..{sizes[-1].bit_length() - 1})"]
    lines.append("legend: " + ", ".join(
        f"{markers[a]} = {a}-way" for a in result.associativities))
    lines.extend("|" + "".join(row) for row in rows)
    lines.append("+" + "-" * width)
    return "\n".join(lines)
