"""Trace records and the trace-driven cache simulator of section 5."""

from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    SweepResult,
    ascii_plot,
    simulate_icache,
    simulate_itlb,
    sweep_icache,
    sweep_itlb,
)
from repro.trace.events import TraceEvent, addresses, dispatched_only, split_warmup
from repro.trace.workloads import interleaved_trace, monomorphic_trace, paper_trace

__all__ = [
    "PAPER_ASSOCIATIVITIES", "PAPER_SIZES", "SweepResult", "TraceEvent",
    "addresses", "ascii_plot", "dispatched_only", "interleaved_trace",
    "monomorphic_trace", "paper_trace", "simulate_icache", "simulate_itlb",
    "split_warmup", "sweep_icache", "sweep_itlb",
]
