"""Trace records and the trace-driven cache simulator of section 5."""

from repro.trace.cachesim import (
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    SweepResult,
    ascii_plot,
    simulate_icache,
    simulate_itlb,
    sweep_icache,
    sweep_itlb,
)
from repro.trace.columnar import Trace, TraceBuilder, as_trace
from repro.trace.events import TraceEvent, addresses, dispatched_only, split_warmup
from repro.trace.semantics import (
    DEFAULT_SEMANTICS,
    SEMANTICS,
    reset_index,
    validate_semantics,
    validate_warmup_fraction,
    warmup_cut,
)
from repro.trace.workloads import interleaved_trace, monomorphic_trace, paper_trace

__all__ = [
    "DEFAULT_SEMANTICS", "PAPER_ASSOCIATIVITIES", "PAPER_SIZES",
    "SEMANTICS", "SweepResult", "Trace", "TraceBuilder", "TraceEvent",
    "addresses", "as_trace", "ascii_plot", "dispatched_only",
    "interleaved_trace", "monomorphic_trace", "paper_trace",
    "reset_index", "simulate_icache", "simulate_itlb", "split_warmup",
    "sweep_icache", "sweep_itlb", "validate_semantics",
    "validate_warmup_fraction", "warmup_cut",
]
