"""Columnar (struct-of-arrays) trace storage.

The section-5 experiments are entirely trace-driven, and every hot
path -- the cache simulator, the sweep engines, the store -- used to
iterate traces one frozen :class:`~repro.trace.events.TraceEvent`
dataclass at a time.  This module keeps a trace as four parallel
columns instead:

* ``address``, ``opcode``, ``receiver_class`` -- one ``array('i')``
  each (4-byte signed words; every TraceEvent field fits);
* ``dispatched`` -- a bitset (one bit per event, LSB-first within
  each byte).

Three types:

* :class:`Trace` -- an immutable columnar view.  It still quacks like
  a ``Sequence[TraceEvent]`` (indexing materializes one event lazily,
  iteration yields events, ``==`` compares against event lists), but
  the columns are directly exposed for hot loops, slicing with step 1
  is a zero-copy view onto the same arrays, and the dispatched-index
  view (:meth:`Trace.dispatched_indices`) is computed once per view
  and cached.
* :class:`TraceBuilder` -- the mutable emitter the interpreters
  record into: :meth:`TraceBuilder.record` appends four ints, no
  object construction.  A builder is also a ``Sequence[TraceEvent]``
  so legacy callers can inspect ``machine.trace`` directly;
  :meth:`TraceBuilder.snapshot` hands the columns to a :class:`Trace`
  without copying.
* the **binary payload** (:meth:`Trace.to_bytes` /
  :meth:`Trace.from_bytes`) -- the trace store's on-disk format,
  version 3.  The payload is the columns, verbatim: header, then the
  three int columns little-endian and the bitset, each block followed
  by a CRC32 trailer of its on-disk bytes.  Loading is four bulk
  ``frombytes`` copies (plus four CRC checks); no per-event work of
  any kind.  A recognized payload that fails a check raises
  :class:`~repro.errors.StoreCorruption`; bytes in a legacy or
  foreign layout raise :class:`~repro.errors.PayloadFormatError`.

Pickling a :class:`Trace` round-trips through the same payload, so
handing a trace to a worker process costs O(columns), not O(events).
"""

from __future__ import annotations

import sys
import zlib
from array import array
from collections.abc import Sequence
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import (MappedBufferClosed, PayloadFormatError,
                          StoreCorruption)
from repro.trace import events as _events

#: 4-byte signed column words (every TraceEvent field fits); fall
#: back to 'l' on platforms where 'i' is not 4 bytes.
_INT = "i" if array("i").itemsize == 4 else "l"
#: The on-disk byte order is little-endian regardless of host (the
#: store may be shared via CI caches or a network filesystem), so
#: big-endian hosts byte-swap the int columns on the way in and out.
#: The bitset is byte-order independent.
_SWAP = sys.byteorder == "big"

#: Binary payload version (participates in the trace store's cache
#: key).  v1 was array-of-structs (4 interleaved words per event);
#: v2 is columnar; v3 is columnar with a CRC32 trailer after every
#: column block (and the bitset), so silent on-disk corruption is
#: *detected* -- a bad block raises
#: :class:`~repro.errors.StoreCorruption` instead of decoding wrong
#: events, while v1/v2 (and foreign) files stay clean misses via
#: :class:`~repro.errors.PayloadFormatError`.
FORMAT_VERSION = 3
_MAGIC = b"RTRC"
_HEADER = len(_MAGIC) + 1 + 4
#: Per-block integrity trailer: CRC32 of the block's on-disk bytes,
#: little-endian.  Computed over the stored (little-endian) layout,
#: so it is host-byte-order independent like the payload itself.
_CRC_BYTES = 4

#: byte value -> the bit positions set in it, for bitset scans.
_BITS_IN = tuple(tuple(j for j in range(8) if value >> j & 1)
                 for value in range(256))


class _ColumnarSequence(Sequence):
    """Sequence[TraceEvent] behaviour shared by Trace and TraceBuilder.

    Subclasses provide ``_addresses``/``_opcodes``/``_classes``
    (int arrays), ``_bits`` (the bitset) and ``_bounds() ->
    (start, stop)`` into those columns.
    """

    __slots__ = ()

    def _bounds(self) -> Tuple[int, int]:
        raise NotImplementedError

    def __len__(self) -> int:
        start, stop = self._bounds()
        return stop - start

    def dispatched_flag(self, index: int) -> bool:
        """The dispatched bit of one event, without materializing it."""
        start, stop = self._bounds()
        if index < 0:
            index += stop - start
        if not 0 <= index < stop - start:
            raise IndexError("trace index out of range")
        i = start + index
        return bool(self._bits[i >> 3] & (1 << (i & 7)))

    def _event(self, i: int) -> "_events.TraceEvent":
        """Materialize the event at *absolute* column index ``i``."""
        return _events.TraceEvent(
            self._addresses[i], self._opcodes[i], self._classes[i],
            bool(self._bits[i >> 3] & (1 << (i & 7))))

    def __getitem__(self, index):
        start, stop = self._bounds()
        n = stop - start
        if isinstance(index, slice):
            lo, hi, step = index.indices(n)
            if step == 1:
                return Trace(self._addresses, self._opcodes,
                             self._classes, self._bits,
                             start + lo, start + max(lo, hi))
            return [self._event(start + i) for i in range(lo, hi, step)]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace index out of range")
        return self._event(start + index)

    def __iter__(self) -> Iterator["_events.TraceEvent"]:
        start, stop = self._bounds()
        event = self._event
        for i in range(start, stop):
            yield event(i)

    # -- equality ---------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, _ColumnarSequence):
            if len(self) != len(other):
                return False
            return self.to_bytes() == other.to_bytes()
        if isinstance(other, (list, tuple)):
            if len(self) != len(other):
                return False
            start, _ = self._bounds()
            addresses, opcodes, classes, bits = (
                self._addresses, self._opcodes, self._classes, self._bits)
            try:
                for index, event in enumerate(other):
                    i = start + index
                    if (addresses[i] != event.address
                            or opcodes[i] != event.opcode
                            or classes[i] != event.receiver_class
                            or bool(bits[i >> 3] & (1 << (i & 7)))
                            != bool(event.dispatched)):
                        return False
            except AttributeError:
                return NotImplemented
            return True
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {len(self)} events, "
                f"{self.dispatched_count()} dispatched>")

    # -- column access ----------------------------------------------------

    def addresses(self):
        """The address column (zero-copy; indexable ints)."""
        start, stop = self._bounds()
        return memoryview(self._addresses)[start:stop]

    def opcodes(self):
        """The opcode column (zero-copy; indexable ints)."""
        start, stop = self._bounds()
        return memoryview(self._opcodes)[start:stop]

    def receiver_classes(self):
        """The receiver-class column (zero-copy; indexable ints)."""
        start, stop = self._bounds()
        return memoryview(self._classes)[start:stop]

    def dispatched_indices(self):
        """Indices (into this view) of the dispatched events, sorted.

        The view every dispatched-only hot loop iterates instead of
        filtering event objects; computed once and cached on
        immutable views.
        """
        start, stop = self._bounds()
        bits = self._bits
        indices = array(_INT)
        append = indices.append
        if start & 7:
            # Unaligned view: walk bits until the next byte boundary.
            head = min(stop, (start | 7) + 1)
            for i in range(start, head):
                if bits[i >> 3] & (1 << (i & 7)):
                    append(i - start)
            lo = head
        else:
            lo = start
        base = lo - start
        for byte in bits[lo >> 3:(stop + 7) >> 3]:
            if byte:
                for j in _BITS_IN[byte]:
                    index = base + j
                    if index >= stop - start:
                        break
                    append(index)
            base += 8
        return indices

    def dispatched_count(self, stop: Optional[int] = None) -> int:
        """How many of the first ``stop`` events are dispatched.

        ``stop=None`` counts the whole view.
        """
        indices = self.dispatched_indices()
        if stop is None:
            return len(indices)
        from bisect import bisect_left
        return bisect_left(indices, stop)

    # -- aggregate statistics ---------------------------------------------

    def unique_itlb_key_count(self) -> int:
        """Distinct (opcode, receiver class) pairs among dispatched
        events -- the ITLB's key population, from the columns."""
        opcodes = self.opcodes()
        classes = self.receiver_classes()
        return len({(opcodes[i] << 32) ^ (classes[i] & 0xFFFFFFFF)
                    for i in self.dispatched_indices()})

    def unique_address_count(self) -> int:
        """Distinct instruction addresses (the icache's footprint)."""
        return len(set(self.addresses()))

    def stats(self) -> dict:
        """Column-level summary; materializes no event objects.

        This walks every column; callers that need one figure should
        use the targeted accessors (:meth:`dispatched_count`,
        :meth:`unique_itlb_key_count`, :meth:`unique_address_count`)
        instead.
        """
        n = len(self)
        dispatched = self.dispatched_count()
        addresses = self.addresses()
        return {
            "events": n,
            "dispatched": dispatched,
            "dispatched_fraction": dispatched / n if n else 0.0,
            "unique_opcodes": len(set(self.opcodes())),
            "unique_classes": len(set(self.receiver_classes())),
            "unique_itlb_keys": self.unique_itlb_key_count(),
            "unique_addresses": len(set(addresses)),
            "address_min": min(addresses) if n else None,
            "address_max": max(addresses) if n else None,
        }

    # -- binary payload ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """The v3 store payload: header, then three int columns and
        the bitset, each block followed by its CRC32 trailer."""
        start, stop = self._bounds()
        n = stop - start
        blocks = []
        for column in (self._addresses, self._opcodes, self._classes):
            if start or stop != len(column):
                column = column[start:stop]
            if _SWAP:
                column = column[:]  # don't mutate the live column
                column.byteswap()
            blocks.append(column.tobytes())
        if start & 7 or not isinstance(
                self._bits, (bytes, bytearray, memoryview)):
            bits = bytearray((n + 7) >> 3)
            for index in self.dispatched_indices():
                bits[index >> 3] |= 1 << (index & 7)
        else:
            bits = bytearray(self._bits[start >> 3:(start + n + 7) >> 3])
            if n & 7:
                # Mask stray bits belonging to events past the view's
                # stop (a sliced view, or a builder that kept
                # recording after a snapshot): the payload of a trace
                # depends only on its own events.
                bits[-1] &= (1 << (n & 7)) - 1
        blocks.append(bytes(bits))
        header = _MAGIC + bytes([FORMAT_VERSION]) + n.to_bytes(4, "little")
        parts = [header]
        for block in blocks:
            parts.append(block)
            parts.append(zlib.crc32(block).to_bytes(_CRC_BYTES, "little"))
        return b"".join(parts)


class Trace(_ColumnarSequence):
    """An immutable columnar trace view.

    Constructed from columns directly, from a stored payload
    (:meth:`from_bytes`), from legacy event sequences
    (:meth:`from_events`), or by slicing another trace/builder (a
    zero-copy view onto the same column arrays).
    """

    __slots__ = ("_addresses", "_opcodes", "_classes", "_bits",
                 "_start", "_stop", "_disp", "store_key", "store_root")

    def __init__(self, addresses, opcodes, classes, bits,
                 start: int = 0, stop: Optional[int] = None) -> None:
        if stop is None:
            stop = len(addresses)
        if not (len(addresses) == len(opcodes) == len(classes)):
            raise ValueError("trace columns have mismatched lengths")
        if len(bits) < (stop + 7) >> 3:
            raise ValueError("dispatched bitset shorter than the columns")
        self._addresses = addresses
        self._opcodes = opcodes
        self._classes = classes
        self._bits = bits
        self._start = start
        self._stop = stop
        self._disp = None
        #: Stamped by the trace store on load/generate: the content
        #: key and store root this trace came from.  None for traces
        #: built in memory or sliced views -- a slice is a different
        #: trace than the stored one.  The sweep result cache keys on
        #: this, so only store-backed whole traces are ever memoized.
        self.store_key = None
        self.store_root = None

    def _bounds(self) -> Tuple[int, int]:
        return self._start, self._stop

    def dispatched_indices(self):
        cached = self._disp
        if cached is None:
            cached = self._disp = super().dispatched_indices()
        return cached

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable["_events.TraceEvent"]) -> "Trace":
        """Pack any iterable of TraceEvents into columns (one pass)."""
        if isinstance(events, Trace):
            return events
        if isinstance(events, TraceBuilder):
            return events.snapshot()
        builder = TraceBuilder()
        for event in events:
            builder.record(event.address, event.opcode,
                           event.receiver_class, event.dispatched)
        return builder.snapshot()

    @staticmethod
    def _check_structure(blob) -> int:
        """Validate a payload's header and total length; the event
        count on success.  Shared by the copying and zero-copy
        decoders so both classify bytes identically (format error vs
        corruption)."""
        if len(blob) < 5 or bytes(blob[:4]) != _MAGIC:
            raise PayloadFormatError("not a trace-store payload")
        if blob[4] != FORMAT_VERSION:
            raise PayloadFormatError(
                f"unsupported payload version {blob[4]} "
                f"(current: {FORMAT_VERSION})")
        if len(blob) < _HEADER:
            raise StoreCorruption("payload truncated inside the header")
        count = int.from_bytes(bytes(blob[5:9]), "little")
        word = array(_INT).itemsize
        expected = _HEADER + 3 * (count * word + _CRC_BYTES) \
            + ((count + 7) >> 3) + _CRC_BYTES
        if len(blob) != expected:
            raise StoreCorruption(
                f"payload is {len(blob)} bytes but {expected} were "
                f"expected for {count} events (truncated or "
                f"overwritten)")
        return count

    #: (name, size-for-count) pairs of the four payload blocks, in
    #: on-disk order.
    @staticmethod
    def _block_layout(count: int):
        word = array(_INT).itemsize
        return (("address", count * word),
                ("opcode", count * word),
                ("receiver-class", count * word),
                ("dispatched-bitset", (count + 7) >> 3))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Trace":
        """Decode a v3 store payload; four bulk copies, zero events.

        Raises :class:`~repro.errors.PayloadFormatError` for bytes
        that are not a current-format payload (wrong magic, legacy
        v1/v2 version byte, no room for a header) -- the store reads
        those as clean misses -- and
        :class:`~repro.errors.StoreCorruption` when a recognized v3
        payload fails its length or CRC32 checks, which the store
        routes to quarantine.
        """
        count = cls._check_structure(blob)
        offset = _HEADER
        blocks = []
        for name, size in cls._block_layout(count):
            block = blob[offset:offset + size]
            offset += size
            stored = int.from_bytes(
                blob[offset:offset + _CRC_BYTES], "little")
            offset += _CRC_BYTES
            if zlib.crc32(block) != stored:
                raise StoreCorruption(
                    f"{name} block failed its CRC32 check")
            blocks.append(block)
        columns = []
        for block in blocks[:3]:
            column = array(_INT)
            column.frombytes(block)
            if _SWAP:
                # The int columns are little-endian on disk; the
                # bitset (blocks[3]) is byte-order independent and is
                # used verbatim on every host.
                column.byteswap()
            columns.append(column)
        bits = bytearray(blocks[3])
        return cls(columns[0], columns[1], columns[2], bits)

    @classmethod
    def from_buffer(cls, buffer) -> "Trace":
        """Decode a payload as zero-copy views over *buffer*.

        The fast path (little-endian host, 4-byte ``array('i')``
        words -- i.e. every mainstream platform) builds the three int
        columns as ``memoryview.cast('i')`` views and the bitset as a
        byte view straight over the buffer: opening a 10^6-event
        trace costs microseconds and no column RAM.  Structural
        checks (magic, version, total length) run eagerly with the
        same error taxonomy as :meth:`from_bytes`; per-block CRC32
        verification is *deferred* to the first touch of each column
        (raising :class:`~repro.errors.StoreCorruption` then).

        Big-endian hosts (and exotic word sizes) cannot view the
        little-endian payload in place and fall back to the copying
        :meth:`from_bytes` -- crucially *without* byte-swapping the
        dispatched bitset, which is byte-order independent.

        Lifetime: the returned :class:`MappedTrace` holds views into
        *buffer* (typically an ``mmap``).  The owner of the buffer
        (the trace store) must call :meth:`MappedTrace.close` before
        unmapping; afterwards every accessor raises the typed
        :class:`~repro.errors.MappedBufferClosed`.  Use
        :meth:`Trace.copy` for a trace that must outlive its store.
        """
        view = memoryview(buffer)
        if _SWAP or array(_INT).itemsize != 4:
            data = bytes(view)
            view.release()
            return cls.from_bytes(data)
        try:
            count = cls._check_structure(view)
        except BaseException:
            view.release()
            raise
        offset = _HEADER
        blocks = []
        pending = {}
        for name, size in cls._block_layout(count):
            block = view[offset:offset + size]
            offset += size
            stored = int.from_bytes(
                bytes(view[offset:offset + _CRC_BYTES]), "little")
            offset += _CRC_BYTES
            pending[name] = (block, stored)
            blocks.append(block)
        columns = [block.cast(_INT) for block in blocks[:3]]
        return MappedTrace(columns[0], columns[1], columns[2],
                           blocks[3], count, pending, view)

    def copy(self) -> "Trace":
        """A deep copy backed by plain arrays.

        The one way to keep a memory-mapped trace's data past its
        store's close: the copy owns its columns outright (and
        carries the same ``store_key`` stamp, since it is the same
        logical trace).  On a plain trace this is simply an
        independent materialization of the view.
        """
        start, stop = self._bounds()
        n = stop - start
        columns = []
        for view in (self.addresses(), self.opcodes(),
                     self.receiver_classes()):
            column = array(_INT)
            column.frombytes(bytes(view))
            columns.append(column)
        bits = bytearray((n + 7) >> 3)
        for index in self.dispatched_indices():
            bits[index >> 3] |= 1 << (index & 7)
        duplicate = Trace(columns[0], columns[1], columns[2], bits)
        duplicate.store_key = self.store_key
        duplicate.store_root = self.store_root
        return duplicate

    def __reduce__(self):
        # O(columns) pickling: a worker handoff ships four buffers,
        # never a list of event objects.  The store stamp rides along
        # so a worker-side sweep still finds its result-cache entry.
        return (_unpickle_trace,
                (self.to_bytes(), self.store_key, self.store_root))


def _unpickle_trace(blob: bytes, store_key, store_root) -> "Trace":
    """Pickle helper: a stored-payload round-trip plus store stamp."""
    trace = Trace.from_bytes(blob)
    trace.store_key = store_key
    trace.store_root = store_root
    return trace


class MappedTrace(Trace):
    """A :class:`Trace` whose columns are views over a mapped payload.

    Built by :meth:`Trace.from_buffer`.  Differences from a plain
    trace, both invisible to correct callers:

    * **deferred integrity** -- each of the four payload blocks is
      CRC32-verified on its first touch (never again after), so
      *opening* a trace is O(1) while *reading* it keeps the same
      corruption guarantee as :meth:`Trace.from_bytes`;
    * **explicit lifetime** -- the trace does not own the underlying
      buffer (the store owns the mmap).  After :meth:`close` every
      accessor raises :class:`~repro.errors.MappedBufferClosed`.
      Column views handed out before the close remain valid (each
      holds its own buffer reference, keeping the mapping alive), and
      :meth:`Trace.copy` produces an array-backed trace that needs no
      lifetime care at all.
    """

    __slots__ = ("_source", "_pending", "_closed")

    def __init__(self, addresses, opcodes, classes, bits, count,
                 pending, source) -> None:
        super().__init__(addresses, opcodes, classes, bits, 0, count)
        #: block name -> (block view, stored CRC32); verified entries
        #: are removed, so an empty dict means fully verified.
        self._pending = pending
        self._source = source
        self._closed = False

    # -- deferred integrity ------------------------------------------------

    def _verify(self, name: str) -> None:
        pending = self._pending
        if not pending:
            return
        entry = pending.get(name)
        if entry is None:
            return
        block, stored = entry
        if zlib.crc32(block) != stored:
            # Left in _pending on purpose: a corrupt block stays
            # corrupt, so every later touch re-raises instead of
            # silently reading bad words.
            raise StoreCorruption(f"{name} block failed its CRC32 check")
        del pending[name]

    def _verify_all(self) -> None:
        for name in tuple(self._pending):
            self._verify(name)

    def verify(self) -> "MappedTrace":
        """Run every still-deferred CRC check now; self, for chaining.

        Zero-copy: the checksums run directly over the mapped pages.
        The trace store calls this at load time -- its contract
        (corrupt payload -> quarantine -> transparent regeneration)
        predates mmap and survives it -- while direct
        :meth:`Trace.from_buffer` users keep the pure
        deferred-to-first-touch behaviour.
        """
        self._verify_all()
        return self

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release this trace's views into the mapped buffer.

        Idempotent.  The store calls this before unmapping; callers
        that sliced out column views beforehand keep working (their
        views pin the mapping), while every access *through this
        trace* now raises :class:`~repro.errors.MappedBufferClosed`.
        """
        if self._closed:
            return
        self._closed = True
        self._pending = {}
        for view in (self._addresses, self._opcodes, self._classes,
                     self._bits, self._source):
            try:
                view.release()
            except BufferError:  # pragma: no cover - defensive
                pass
        self._source = None

    def _bounds(self) -> Tuple[int, int]:
        # The single choke point every read path goes through (len,
        # iteration, indexing, accessors, to_bytes): the typed
        # lifetime error instead of a released-memoryview ValueError.
        if self._closed:
            raise MappedBufferClosed(
                "memory-mapped trace used after close; copy() the "
                "trace before closing its store to keep the data")
        return super()._bounds()

    # -- verified access ---------------------------------------------------

    def addresses(self):
        self._verify("address")
        return super().addresses()

    def opcodes(self):
        self._verify("opcode")
        return super().opcodes()

    def receiver_classes(self):
        self._verify("receiver-class")
        return super().receiver_classes()

    def dispatched_indices(self):
        self._verify("dispatched-bitset")
        return super().dispatched_indices()

    def dispatched_flag(self, index: int) -> bool:
        self._verify("dispatched-bitset")
        return super().dispatched_flag(index)

    def _event(self, i: int):
        self._verify_all()
        return super()._event(i)

    def __getitem__(self, index):
        # A step-1 slice hands out a plain Trace sharing these column
        # views; it carries no _pending hooks, so verify everything
        # before it escapes.
        if isinstance(index, slice):
            self._verify_all()
        return super().__getitem__(index)

    def __eq__(self, other) -> bool:
        self._verify_all()
        return super().__eq__(other)

    __hash__ = None

    def to_bytes(self) -> bytes:
        self._verify_all()
        return super().to_bytes()


class TraceBuilder(_ColumnarSequence):
    """The columnar recorder the instrumented interpreters append to.

    :meth:`record` is the hot emitter -- four column appends and a
    bit set, no object construction.  The builder is itself a
    ``Sequence[TraceEvent]`` so legacy callers can read
    ``machine.trace`` directly; :meth:`snapshot` produces an
    immutable :class:`Trace` sharing the same arrays (no copy --
    later appends extend the arrays past the snapshot's bounds
    without disturbing it).
    """

    __slots__ = ("_addresses", "_opcodes", "_classes", "_bits", "_count")

    def __init__(self) -> None:
        self._addresses = array(_INT)
        self._opcodes = array(_INT)
        self._classes = array(_INT)
        self._bits = bytearray()
        self._count = 0

    def _bounds(self) -> Tuple[int, int]:
        return 0, self._count

    def record(self, address: int, opcode: int, receiver_class: int,
               dispatched: bool = True) -> None:
        """Append one event as raw ints (the hot emitter path)."""
        n = self._count
        if not n & 7:
            self._bits.append(0)
        if dispatched:
            self._bits[n >> 3] |= 1 << (n & 7)
        self._addresses.append(address)
        self._opcodes.append(opcode)
        self._classes.append(receiver_class)
        self._count = n + 1

    def append(self, event: "_events.TraceEvent") -> None:
        """Legacy emitter compatibility: append one TraceEvent."""
        self.record(event.address, event.opcode, event.receiver_class,
                    event.dispatched)

    def extend(self, events, address_offset: int = 0) -> None:
        """Append a whole trace, optionally rebasing its addresses.

        Columnar sources extend column-to-column (bulk array extends
        plus bitset merging via the dispatched-index view); other
        iterables fall back to per-event appends.
        """
        if isinstance(events, _ColumnarSequence):
            if isinstance(events, MappedTrace):
                # The bulk column extends below read events._columns
                # directly; force the deferred CRC checks first so a
                # corrupt mapped block cannot be copied silently.
                events._verify_all()
            start, stop = events._bounds()
            added = stop - start
            if not added:
                return
            n0 = self._count
            if address_offset:
                self._addresses.extend(
                    value + address_offset for value in events.addresses())
            else:
                self._addresses.extend(events._addresses[start:stop])
            self._opcodes.extend(events._opcodes[start:stop])
            self._classes.extend(events._classes[start:stop])
            total = n0 + added
            need = (total + 7) >> 3
            if len(self._bits) < need:
                self._bits.extend(bytes(need - len(self._bits)))
            bits = self._bits
            for index in events.dispatched_indices():
                i = n0 + index
                bits[i >> 3] |= 1 << (i & 7)
            self._count = total
        else:
            for event in events:
                self.record(event.address + address_offset, event.opcode,
                            event.receiver_class, event.dispatched)

    def snapshot(self) -> Trace:
        """An immutable Trace over the columns recorded so far."""
        return Trace(self._addresses, self._opcodes, self._classes,
                     self._bits, 0, self._count)


def as_trace(events) -> Trace:
    """Coerce any event source to a columnar :class:`Trace`.

    A Trace passes through untouched; a builder snapshots (no copy);
    anything else (a legacy event list, a generator) is packed in one
    pass.
    """
    if isinstance(events, Trace):
        return events
    if isinstance(events, TraceBuilder):
        return events.snapshot()
    return Trace.from_events(events)


#: Convenience alias for annotations at call sites that accept both.
EventSource = Union[Trace, TraceBuilder, List["_events.TraceEvent"],
                    Sequence]
