"""Versioned measurement semantics: where the warm-up window cuts.

Section 5's methodology -- "a warmup trace was run before the
measurement trace to avoid biasing the results" -- is implemented as a
stats reset partway through a replay.  Exactly *where* that reset
lands used to be decided independently by four layers
(``simulate_itlb``, ``simulate_icache``, the sweep runner's window
split, and the figure experiments), and the original single-pass code
carried a family of quirks that every layer had to mirror
reference-for-reference to keep the figures byte-identical:

* **raw-index cut** -- the warm-up cut is computed over raw event
  indices, not over the references the cache actually sees, so for a
  filtered ITLB stream the warmed fraction is not ``warmup_fraction``
  of the ITLB's accesses;
* **skipped ITLB reset** -- ``simulate_itlb`` checks the cut *after*
  the dispatched filter, so a cut landing on a filtered-out event
  means the reset never fires and "warmed" numbers silently include
  every cold miss;
* **asymmetric end of trace** -- a cut at/past the end zeroes
  everything for the ITLB but never fires for the icache, so a
  whole-trace warm-up measures nothing on one cache and everything on
  the other.

This module is the single audited home for that window logic, keyed
by a **semantics version**:

* ``"paper"`` (the default) preserves each quirk bit-for-bit -- it is
  what the 27 reproduced claims are pinned against;
* ``"v2"`` fixes the family: the cut is computed over the reference
  stream the cache observes, the reset always fires, and a cut
  at/past the last reference measures nothing on *both* caches.

Every consumer (``repro.trace.cachesim``, ``repro.sweep``, the
figure experiments, the ``repro sweep`` CLI) imports
:func:`reset_index` instead of re-deriving the window, so the two
behaviours cannot drift apart layer by layer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Known measurement-semantics versions, in historical order.
SEMANTICS: Tuple[str, ...] = ("paper", "v2")

#: What you get when you don't ask: the paper's exact behaviour.
DEFAULT_SEMANTICS = "paper"

#: The quirk family, for docs and CLI help: id -> (paper behaviour,
#: v2 fix).  Purely descriptive; the executable truth is reset_index.
QUIRKS = {
    "raw-index-cut": (
        "warm-up cut computed over raw event indices",
        "cut computed over the references the cache observes",
    ),
    "skipped-itlb-reset": (
        "a cut landing on a non-dispatched event never resets",
        "the warm-up reset always fires",
    ),
    "asymmetric-end-of-trace": (
        "whole-trace warm-up zeroes the ITLB but measures the "
        "whole trace on the icache",
        "a cut at/past the last reference measures nothing on "
        "either cache",
    ),
}


def validate_semantics(semantics: str) -> str:
    """Check a semantics name, returning it for chaining."""
    if semantics not in SEMANTICS:
        raise ValueError(f"unknown measurement semantics {semantics!r}; "
                         f"expected one of {SEMANTICS}")
    return semantics


def validate_warmup_fraction(fraction: float) -> float:
    """Reject warm-up fractions outside ``[0, 1)``.

    A fraction of 1.0 or more would place the cut at or past the end
    of the trace -- a window that measures nothing (or, under the
    paper quirk, everything).  The spec and CLI layers reject it up
    front instead of silently producing an out-of-range cut index;
    the ``simulate_*`` functions stay permissive so the pinned
    characterization tests can still exercise the edge behaviours.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {fraction!r}")
    return fraction


def warmup_cut(semantics: str, n: int, warmup_fraction: float) -> int:
    """The raw warm-up cut index over a stream of ``n`` items.

    The single audited home of the cut *arithmetic*:
    ``int(n * warmup_fraction)``, identical under every known
    semantics version -- the versions differ in **which** stream the
    cut is taken over (raw events vs observed references) and in how
    the reset fires, which is :func:`reset_index`'s business, not in
    the arithmetic itself.  :func:`repro.trace.events.split_warmup`
    and :func:`reset_index` both route through here so a second cut
    implementation cannot creep back in.
    """
    validate_semantics(semantics)
    return int(n * warmup_fraction)


def reset_index(
    semantics: str,
    cache: str,
    events: Sequence,
    n_refs: int,
    *,
    warmup_fraction: float,
    dispatched_only: bool = True,
) -> Optional[int]:
    """Where in the *reference* stream the warm-up stats reset lands.

    ``events`` is the raw trace; ``n_refs`` the length of the
    reference stream the cache observes (the dispatched subset for a
    filtered ITLB, every event otherwise).  The return value is an
    index into that reference stream: ``0 <= i < n_refs`` resets just
    before reference ``i``; ``n_refs`` means "reset after the last
    reference" (everything measured away); ``None`` means the reset
    never fires (everything measured, warm-up included).

    Under ``"paper"`` this reproduces the historical loops
    bit-for-bit, quirks included (see the module docstring).  Under
    ``"v2"`` the cut is ``int(n_refs * warmup_fraction)`` for both
    caches and always takes effect.
    """
    if semantics == "v2":
        cut = warmup_cut(semantics, n_refs, warmup_fraction)
        return min(max(cut, 0), n_refs)
    cut = warmup_cut(semantics, len(events), warmup_fraction)
    if cut < 0:
        # A negative cut never matched a loop index in the historical
        # simulate_* loops: the reset never fires.
        return None
    if cache == "icache":
        # simulate_icache resets iff the loop reaches index == cut;
        # there is no end-of-trace reset.
        return cut if cut < len(events) else None
    if cut >= len(events):
        return n_refs  # simulate_itlb's trailing reset
    if not dispatched_only:
        return cut
    # Columnar traces answer "is the cut event dispatched?" and "how
    # many dispatched references precede it?" from the bitset; event
    # lists walk objects as the historical loops did.
    flag = getattr(events, "dispatched_flag", None)
    if flag is not None:
        if not flag(cut):
            return None    # the cut event is filtered out: never resets
        return events.dispatched_count(cut)
    if not events[cut].dispatched:
        return None        # the cut event is filtered out: never resets
    return sum(1 for event in events[:cut] if event.dispatched)
