"""Trace events: the records the section-5 experiments are built on.

"Traces of large Fith programs were produced by instrumenting the Fith
interpreter [...] to record for each instruction interpreted: the
address of the instruction, the opcode, and the type of object on the
top of the stack."

Both our machines emit this exact record: the Fith interpreter with the
top-of-stack class, and the COM with the dispatch receiver's class.
``dispatched`` distinguishes abstract (ITLB-translated) instructions
from pure stack-manipulation/branch machine operations, so experiments
can study either the full stream or the dispatched subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.trace.semantics import (
    DEFAULT_SEMANTICS,
    validate_warmup_fraction,
    warmup_cut,
)


@dataclass(frozen=True)
class TraceEvent:
    """One interpreted instruction."""

    address: int
    opcode: int
    receiver_class: int
    dispatched: bool = True

    @property
    def itlb_key(self) -> Tuple[int, Tuple[int, ...]]:
        """The (opcode, classes) key this event presents to an ITLB."""
        return (self.opcode, (self.receiver_class,))


def split_warmup(
    events: List[TraceEvent], warmup_fraction: float = 0.25,
    *, semantics: str = DEFAULT_SEMANTICS,
) -> Tuple[List[TraceEvent], List[TraceEvent]]:
    """Split a trace into (warm-up, measurement) parts.

    Section 5: "A warmup trace was run before the measurement trace to
    avoid biasing the results by the initial faulting in of data into
    the caches."

    The cut placement is owned by the versioned semantics module
    (:func:`repro.trace.semantics.warmup_cut`) rather than re-derived
    here; the default stays bit-for-bit the historical ``"paper"``
    behaviour (``int(len(events) * warmup_fraction)`` raw event
    indices).  Splitting a columnar :class:`~repro.trace.columnar.Trace`
    returns two zero-copy views.
    """
    validate_warmup_fraction(warmup_fraction)
    cut = warmup_cut(semantics, len(events), warmup_fraction)
    return events[:cut], events[cut:]


def dispatched_only(events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Only the events that went through instruction translation."""
    return (event for event in events if event.dispatched)


def addresses(events: Iterable[TraceEvent]) -> Iterator[int]:
    """The instruction-address stream (for the instruction cache)."""
    return (event.address for event in events)
