"""Standard trace workloads used by the experiments and benchmarks.

The figure-10/11 measurement trace combines the whole Fith corpus with
a synthetic polymorphic program, interleaved at the program level, so
the key and address working sets resemble a "large Fith program" of
the paper's scale (>= 20,000 instructions at scale 1).

These are the raw *generators*.  Consumers should normally go through
the scenario registry and its on-disk cache instead
(:mod:`repro.workloads`): ``load_events("paper")`` returns the same
events as :func:`paper_trace` but only pays the Fith execution once
per machine.  The registered specs' defaults mirror the calibrated
keyword defaults below; changing either means bumping the workload's
generator version so cached traces invalidate.
"""

from __future__ import annotations

from repro.fith.interp import FithMachine
from repro.fith.programs import CORPUS, combined_trace, polymorphic_workload
from repro.trace.columnar import Trace, TraceBuilder


def paper_trace(scale: int = 1, *, classes: int = 20, selectors: int = 32,
                rounds: int = 450, phase_length: int = 700,
                stray_percent: int = 2,
                hot_selectors: int = 10) -> Trace:
    """The standard measurement trace: corpus + polymorphic workload.

    At scale 1 this yields well over the paper's 20,000 instructions
    (about 220k events over ~320 distinct ITLB keys and ~4.3k distinct
    instruction addresses).  The defaults are calibrated so both
    figures' operating points match the paper under the double-pass
    warm-up: a 512-entry 2-way ITLB exceeds a 99% hit ratio (figure
    10), and the instruction cache needs 4096 entries *and* 2/4-way
    associativity to reach 99% (figure 11).  The polymorphic section is
    rebased past the corpus's code region.
    """
    corpus = combined_trace(scale)
    top = max(corpus.addresses()) if len(corpus) else 0
    machine = FithMachine(trace=True)
    machine.run_source(
        polymorphic_workload(classes=classes, selectors=selectors,
                             rounds=rounds * scale,
                             phase_length=phase_length,
                             stray_percent=stray_percent,
                             hot_selectors=hot_selectors),
        max_steps=50_000_000,
    )
    builder = TraceBuilder()
    builder.extend(corpus)
    builder.extend(machine.trace, address_offset=top + 64)
    return builder.snapshot()


def interleaved_trace(scale: int = 1, chunk: int = 2000) -> Trace:
    """Corpus programs round-robin interleaved in ``chunk``-event slices.

    Models multiprogramming: the instruction cache and ITLB see
    alternating working sets (a harder workload than one long program).
    Each slice is a zero-copy view of its program's trace, rebased at
    append time -- no intermediate event objects.
    """
    parts = []
    base = 0
    for name in sorted(CORPUS):
        machine = FithMachine(trace=True)
        machine.run_source(CORPUS[name](scale), max_steps=20_000_000)
        parts.append((machine.trace.snapshot(), base))
        base += 1 << 16
    builder = TraceBuilder()
    cursors = [0] * len(parts)
    remaining = sum(len(part) for part, _ in parts)
    while remaining:
        for index, (part, part_base) in enumerate(parts):
            start = cursors[index]
            if start >= len(part):
                continue
            stop = min(start + chunk, len(part))
            builder.extend(part[start:stop], address_offset=part_base)
            remaining -= stop - start
            cursors[index] = stop
    return builder.snapshot()


def monomorphic_trace(length: int = 20_000) -> Trace:
    """A degenerate single-key trace (control for cache experiments)."""
    builder = TraceBuilder()
    record = builder.record
    for i in range(length):
        record(i % 64, 1, 1)
    return builder.snapshot()
