"""The ``repro`` command line interface (``python -m repro``).

Subcommands::

    repro run    [--quick] [--jobs N] [--only/--skip IDs] [--list]
                 [--retries N] [--task-timeout S] [--resume]
                 [--faults PLAN] [--fault-seed N] ...
                 run the experiment suite (the registry-driven
                 harness, with retry/timeout/resume fault tolerance)
    repro sweep  [WORKLOAD] [--cache itlb|icache|both] [--sizes CSV]
                 [--assoc CSV] [--opt] [--full] [--warmup F] ...
                 single-pass cache sweep over a registered workload
    repro list   [--workloads] [--experiments] [--engines]
                 [--versions]
                 list registered workloads, experiments, the
                 available sweep execution backends and the
                 package/format/semantics versions
    repro report [--run KEY] [--run-dir DIR] [--format text|json]
                 [--top N]
                 render the latest (or named) run's telemetry:
                 phase-time breakdown, slowest tasks, store hit
                 rates, robustness ledger (requires a previous
                 `repro run --telemetry`)
    repro trace  [NAME] [--set k=v ...] [--force] [--stats]
                 [--verify]
                 materialize one workload into the trace store;
                 --stats prints column-level statistics (no event
                 objects are materialized); --verify audits every
                 stored payload's CRC32 integrity and quarantines
                 the corrupt ones
    repro store  {stats|verify|gc|migrate} [--trace-dir DIR]
                 administer the trace library: layout/result-cache
                 statistics, integrity audit (same as
                 `repro trace --verify`), index-litter sweep, and
                 flat-to-sharded layout migration
    repro serve  [--host H] [--port P] [--queue-limit N]
                 [--max-requests N] [--telemetry] [--run-dir DIR]
                 serve batched sweep queries (JSON lines or HTTP)
                 through the coalescing query planner: cache hits
                 answered inline, replays behind a bounded
                 admission gate
    repro bench  [pytest args ...]
                 run the benchmark suite (pytest-benchmark)

``repro --version`` prints the package version plus the versioned
surfaces a result depends on (trace format, measurement semantics,
available engines).

Installed as the ``repro`` console script (see pyproject.toml); also
reachable as ``python -m repro`` from a source checkout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def _parse_override(text: str):
    """``k=v`` -> (k, v) with ints/floats/bools decoded."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    key, raw = text.split("=", 1)
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    for kind in (int, float):
        try:
            return key, kind(raw)
        except ValueError:
            pass
    return key, raw


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import harness
    return harness.run_from_args(args)


def _format_params(params) -> str:
    return ", ".join(f"{key}={params[key]}" for key in sorted(params))


def _print_engines() -> None:
    from repro.sweep import np_engine

    print("sweep engines:")
    print("  single-pass  pure-python stack-distance engine "
          "(always available)")
    print("  grid         per-configuration simulation "
          "(always available; any policy/geometry)")
    if np_engine.numpy_available():
        import numpy
        print(f"  numpy        vectorized stack-distance backend "
              f"(available, numpy {numpy.__version__})")
    else:
        print("  numpy        UNAVAILABLE (numpy not importable; "
              "pip install .[numpy])")
    print("  auto         numpy when available and eligible, else "
          "single-pass, else grid")


def _print_versions() -> None:
    """The versioned surfaces a reproduced number depends on."""
    import repro
    from repro.sweep import np_engine
    from repro.trace.columnar import FORMAT_VERSION
    from repro.trace.semantics import SEMANTICS

    engines = ["single-pass", "grid"]
    if np_engine.numpy_available():
        engines.insert(1, "numpy")
    print(f"repro {repro.__version__}")
    print(f"  trace format:  v{FORMAT_VERSION} (columnar, CRC32 "
          f"per block)")
    print(f"  semantics:     {', '.join(SEMANTICS)}")
    print(f"  engines:       {', '.join(engines)}"
          + ("" if np_engine.numpy_available()
             else "  (numpy unavailable)"))


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import harness
    from repro.workloads import specs
    from repro.workloads.store import TraceStore

    if args.versions:
        _print_versions()
        return 0
    only_flags = (args.workloads, args.experiments, args.engines)
    show_all = not any(only_flags)
    show_workloads = args.workloads or show_all
    show_experiments = args.experiments or show_all
    show_engines = args.engines or show_all
    if show_workloads:
        store = TraceStore(args.trace_dir)
        cached = store.cached_names()
        print("workloads (scenario registry):")
        width = max(len(spec.name) for spec in specs()) + 2
        pad = " " * (width + 2)
        for spec in specs():
            entries = cached.get(spec.name, 0)
            suffix = (f"  [cached: {entries} parameterization"
                      f"{'s' if entries != 1 else ''}]" if entries else "")
            print(f"  {spec.name:<{width}}v{spec.version}  "
                  f"{spec.description}{suffix}")
            if spec.defaults:
                print(f"{pad}defaults: {_format_params(spec.defaults)}")
            if spec.quick_overrides:
                print(f"{pad}quick:    "
                      f"{_format_params(spec.quick_overrides)}")
        print(f"\ntrace store: {store.root}")
    if show_workloads and show_experiments:
        print()
    if show_experiments:
        print("experiments (claim registry):")
        harness.list_experiments()
    if show_engines:
        if show_workloads or show_experiments:
            print()
        _print_engines()
    return 0


def _cmd_trace_verify(args: argparse.Namespace) -> int:
    from repro.workloads.store import QUARANTINE_DIR, TraceStore

    store = TraceStore(args.trace_dir)
    report = store.verify()
    print(f"trace store: {store.root}")
    print(f"checked:     {report['checked']} payload(s)")
    print(f"ok:          {report['ok']}")
    if report["stale"]:
        print(f"stale:       {len(report['stale'])} legacy-format "
              f"file(s) (clean misses, left in place)")
        for name in report["stale"]:
            print(f"  - {name}")
    if report["corrupt"]:
        print(f"corrupt:     {len(report['corrupt'])} payload(s) "
              f"moved to {store.root / QUARANTINE_DIR}")
        for name, reason in report["corrupt"]:
            print(f"  - {name}: {reason}")
    else:
        print("corrupt:     0")
    if report["mismatched"]:
        print(f"mismatched:  {len(report['mismatched'])} sidecar(s) "
              f"misdescribe a healthy payload (reported only; the "
              f"payload is the truth)")
        for name, reason in report["mismatched"]:
            print(f"  - {name}: {reason}")
    return 1 if report["corrupt"] else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads import get
    from repro.workloads.store import TraceStore

    if args.verify:
        return _cmd_trace_verify(args)
    if not args.name:
        print("error: a workload name is required unless --verify "
              "is given", file=sys.stderr)
        return 2
    spec = get(args.name)
    store = TraceStore(args.trace_dir)
    overrides = dict(args.set or [])
    params = spec.resolve(quick=args.quick, scale=args.scale,
                          overrides=overrides)
    path = store.path_for(spec, params)
    if args.force and path.exists():
        path.unlink()
    path, hit = store.ensure(spec, quick=args.quick, scale=args.scale,
                             **overrides)
    events = store.load(spec, quick=args.quick, scale=args.scale,
                        **overrides)
    # Everything below reads the columns; no TraceEvent is built.
    print(f"workload:   {spec.name} (generator v{spec.version})")
    print(f"params:     {params}")
    print(f"state:      {'cache hit' if hit else 'generated'}")
    print(f"trace:      {len(events)} events, "
          f"{events.dispatched_count()} dispatched")
    print(f"keys:       {events.unique_itlb_key_count()} distinct "
          f"ITLB keys, {events.unique_address_count()} distinct "
          f"addresses")
    print(f"store path: {path}")
    if args.stats:
        stats = events.stats()
        print()
        print("column statistics:")
        print(f"  events:              {stats['events']}")
        print(f"  dispatched:          {stats['dispatched']} "
              f"({stats['dispatched_fraction']:.1%})")
        print(f"  unique opcodes:      {stats['unique_opcodes']}")
        print(f"  unique classes:      {stats['unique_classes']}")
        print(f"  unique ITLB keys:    {stats['unique_itlb_keys']}")
        print(f"  address footprint:   {stats['unique_addresses']} "
              f"distinct addresses"
              + (f" in [{stats['address_min']}, {stats['address_max']}]"
                 if stats["events"] else ""))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.workloads.store import TraceStore

    if args.action == "verify":
        return _cmd_trace_verify(args)
    store = TraceStore(args.trace_dir)
    if args.action == "stats":
        stats = store.stats()
        cache = stats["result_cache"]
        print(f"trace store:  {stats['root']}")
        print(f"payloads:     {stats['payloads']} "
              f"({stats['sharded']} sharded across {stats['shards']} "
              f"shard dir(s), {stats['flat']} flat legacy), "
              f"{stats['payload_bytes']} bytes")
        print(f"manifest:     "
              f"{'present' if stats['manifest'] else 'absent (rebuilt on demand)'}")
        print(f"quarantined:  {stats['quarantined']}")
        state = ("enabled" if cache["enabled"]
                 else "disabled via $REPRO_RESULT_CACHE")
        print(f"result cache: {cache['entries']} entries, "
              f"{cache['bytes']} of {cache['budget_bytes']} budget "
              f"bytes ({state})")
        return 0
    if args.action == "gc":
        report = store.library.gc()
        print(f"trace store: {store.root}")
        print(f"tmp files removed:       {len(report['tmp_files'])}")
        print(f"orphan sidecars removed: "
              f"{len(report['orphan_sidecars'])}")
        print(f"empty shards removed:    {len(report['empty_shards'])}")
        for kind in ("tmp_files", "orphan_sidecars", "empty_shards"):
            for name in report[kind]:
                print(f"  - {name}")
        return 0
    if args.action == "migrate":
        report = store.library.migrate()
        print(f"trace store: {store.root}")
        print(f"migrated:        {len(report['migrated'])} payload(s) "
              f"into the sharded layout")
        for name in report["migrated"]:
            print(f"  - {name}")
        print(f"already sharded: {report['already_sharded']}")
        if report["failed"]:
            print(f"failed:          {len(report['failed'])}")
            for name, reason in report["failed"]:
                print(f"  - {name}: {reason}")
            return 1
        return 0
    raise AssertionError(f"unhandled store action {args.action!r}")


def _warmup_fraction(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}")
    from repro.trace.semantics import validate_warmup_fraction
    try:
        return validate_warmup_fraction(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _csv_sizes(text: str):
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}")


def _csv_assocs(text: str):
    out = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "full":
            out.append("full")
        else:
            try:
                out.append(int(part))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"expected integers or 'full', got {part!r}")
    return tuple(out)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.sweep import (HierarchySpec, SweepSpec,
                             run_hierarchy_planned, run_sweep,
                             semantics_delta_table)
    from repro.trace.cachesim import ascii_plot
    from repro.workloads.store import TraceStore

    store = TraceStore(args.trace_dir)
    overrides = dict(args.set or [])
    events = store.load(args.workload, quick=args.quick,
                        scale=args.scale, **overrides)
    caches = (("itlb", "icache") if args.cache == "both"
              else (args.cache,))
    common = dict(warmup_fraction=(args.warmup if args.warmup is not None
                                   else 0.25),
                  double_pass=args.warmup is None,
                  policy=args.policy, include_full=args.full,
                  include_opt=args.opt, engine=args.engine,
                  semantics=args.semantics)
    # `is not None`: an explicitly empty CSV must reach SweepSpec's
    # "at least one size" validation, not silently mean "default grid".
    if args.sizes is not None:
        common["sizes"] = args.sizes
    if args.assoc is not None:
        common["associativities"] = args.assoc
    levels = tuple(
        SweepSpec(cache=cache,
                  line_words=(args.line_words if cache == "icache" else 1),
                  **common)
        for cache in caches)
    hierarchy = HierarchySpec(name=f"sweep:{args.workload}",
                              levels=levels)
    print(f"workload: {args.workload} ({len(events)} events, "
          f"{events.dispatched_count()} dispatched)")
    print(f"warm-up:  "
          f"{'double pass' if args.warmup is None else f'fraction {args.warmup}'}"
          f" (semantics: {args.semantics})")
    surfaces, batch = run_hierarchy_planned(hierarchy, events)
    for level, surface in zip(hierarchy.levels, surfaces):
        meta = surface.meta
        print()
        print(surface.table())
        if args.plot:
            print()
            print(ascii_plot(surface.to_sweep_result()))
        thresholds = ", ".join(
            f"{'full' if assoc == 'full' else f'{assoc}-way'}: "
            f"{size if size is not None else '>max'}"
            for assoc, size in surface.isoratio(0.99).items())
        print(f"[99% threshold  {thresholds}]")
        print(f"[engine: {meta['engine']}, "
              f"semantics: {meta['semantics']}, "
              f"{meta['trace_passes']} simulation pass"
              f"{'es' if meta['trace_passes'] != 1 else ''} over the "
              f"trace]")
        if args.compare_semantics:
            print()
            if level.double_pass:
                print(f"[{surface.label}: double-pass warm-up is "
                      f"quirk-free; paper and v2 semantics agree "
                      f"bitwise]")
            else:
                # The args.semantics side is already in hand; only
                # the counterpart costs another replay.
                other = "v2" if level.semantics == "paper" else "paper"
                counterpart = run_sweep(
                    replace(level, semantics=other), events)
                paper_s, v2_s = ((surface, counterpart)
                                 if level.semantics == "paper"
                                 else (counterpart, surface))
                print(semantics_delta_table(paper_s, v2_s))
    cache_hits = batch.memory_hits + batch.disk_hits \
        + batch.superset_hits
    print()
    print(f"[planner: {batch.queries} "
          f"quer{'y' if batch.queries == 1 else 'ies'} -> "
          f"{batch.replays} replay(s), {batch.coalesced} coalesced, "
          f"{cache_hits} cache hit(s), {batch.fallbacks} fallback(s)]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_main
    return serve_main(args)


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.journal import default_root
    from repro.telemetry import report as telemetry_report

    root = Path(args.run_dir) if args.run_dir else default_root()
    try:
        run_dir = telemetry_report.find_run_directory(root, run=args.run)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    data = telemetry_report.load_run(run_dir)
    document = telemetry_report.build_report(data, top=args.top)
    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(telemetry_report.render(document))
    return 0


_BENCH_HELP = """\
usage: repro bench [pytest args ...]

Run the benchmark suite (pytest-benchmark).  All arguments are
forwarded to pytest verbatim; the benchmarks/ directory under the
current working directory is targeted unless an explicit file or
directory path is given.

examples:
  repro bench
  repro bench -k fith --benchmark-only
  repro bench benchmarks/test_bench_fig10.py -q
"""


def _cmd_bench(extra: List[str]) -> int:
    import subprocess

    if extra and extra[0] in ("-h", "--help"):
        print(_BENCH_HELP, end="")
        return 0
    if extra and extra[0] == "--":
        extra = extra[1:]
    command = [sys.executable, "-m", "pytest"]
    # Default target is benchmarks/; an explicit *existing* path
    # argument replaces it (`repro bench benchmarks/foo.py`), while
    # option values like `-k fith` do not.
    explicit_path = any(not part.startswith("-") and Path(part).exists()
                        for part in extra)
    if not explicit_path:
        bench_dir = Path.cwd() / "benchmarks"
        if not bench_dir.is_dir():
            print("error: no benchmarks/ directory under the current "
                  "working directory; run from a source checkout",
                  file=sys.stderr)
            return 2
        command.append(str(bench_dir))
    command += extra
    return subprocess.call(command)


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments import harness

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Dally & Kajiya, 'An Object "
                    "Oriented Architecture' (ISCA 1985)")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run the experiment suite")
    harness.add_run_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = commands.add_parser(
        "sweep",
        help="single-pass cache sweep (size x associativity grid) "
             "over a registered workload")
    sweep_parser.add_argument("workload", nargs="?", default="paper",
                              help="registered workload name "
                                   "(default: paper)")
    sweep_parser.add_argument("--cache", choices=("itlb", "icache",
                                                  "both"),
                              default="both",
                              help="which cache level(s) to sweep")
    sweep_parser.add_argument("--sizes", type=_csv_sizes, default=None,
                              metavar="CSV",
                              help="cache sizes (default: the paper's "
                                   "8..4096)")
    sweep_parser.add_argument("--assoc", type=_csv_assocs, default=None,
                              metavar="CSV",
                              help="associativities, integers or "
                                   "'full' (default: 1,2,4)")
    sweep_parser.add_argument("--line-words", type=int, default=1,
                              help="icache line size in words")
    sweep_parser.add_argument("--policy", default="lru",
                              choices=("lru", "fifo", "random"),
                              help="replacement policy (non-LRU falls "
                                   "back to per-config simulation)")
    sweep_parser.add_argument("--warmup", type=_warmup_fraction,
                              default=None, metavar="FRACTION",
                              help="exclude this warm-up fraction in "
                                   "[0, 1) instead of the default "
                                   "double-pass methodology")
    sweep_parser.add_argument("--semantics", default="paper",
                              choices=("paper", "v2"),
                              help="measurement-semantics version: "
                                   "'paper' reproduces the published "
                                   "warm-up quirks bit-for-bit, 'v2' "
                                   "fixes them (cut over observed "
                                   "references, reset always fires, "
                                   "symmetric end-of-trace)")
    sweep_parser.add_argument("--compare-semantics", action="store_true",
                              help="also print the per-cell paper-vs-v2 "
                                   "hit-ratio delta table")
    sweep_parser.add_argument("--full", action="store_true",
                              help="add the fully-associative LRU "
                                   "reference column")
    sweep_parser.add_argument("--opt", action="store_true",
                              help="add the OPT/Belady reference "
                                   "column (two-pass)")
    sweep_parser.add_argument("--engine", default="auto",
                              choices=("auto", "single-pass", "numpy",
                                       "grid"),
                              help="force the execution engine "
                                   "('numpy' requires the optional "
                                   "numpy extra; 'auto' uses it when "
                                   "importable and falls back to the "
                                   "pure-python single-pass engine)")
    sweep_parser.add_argument("--plot", action="store_true",
                              help="also render the ASCII figure")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="use the workload's quick "
                                   "parameters")
    sweep_parser.add_argument("--scale", type=int, default=None)
    sweep_parser.add_argument("--set", action="append",
                              type=_parse_override, metavar="KEY=VALUE",
                              help="override a workload generator "
                                   "parameter")
    sweep_parser.add_argument("--trace-dir", type=str, default=None)
    sweep_parser.set_defaults(func=_cmd_sweep)

    list_parser = commands.add_parser(
        "list", help="list registered workloads, experiments and "
                     "sweep engine backends")
    list_parser.add_argument("--workloads", action="store_true",
                             help="only the workload registry")
    list_parser.add_argument("--experiments", action="store_true",
                             help="only the experiment registry")
    list_parser.add_argument("--engines", action="store_true",
                             help="only the sweep execution backends "
                                  "(reports whether numpy was "
                                  "importable, so logs show which "
                                  "path actually ran)")
    list_parser.add_argument("--versions", action="store_true",
                             help="only the package / trace-format / "
                                  "semantics / engine versions "
                                  "(same block as `repro --version`)")
    list_parser.add_argument("--trace-dir", type=str, default=None)
    list_parser.set_defaults(func=_cmd_list)

    report_parser = commands.add_parser(
        "report",
        help="render a run's telemetry (phase times, slowest tasks, "
             "store hit rates, robustness ledger)")
    report_parser.add_argument("--run", type=str, default=None,
                               metavar="KEY",
                               help="run-key prefix to report on "
                                    "(default: the newest "
                                    "telemetry-bearing run)")
    report_parser.add_argument("--run-dir", type=str, default=None,
                               help="run-journal directory (default "
                                    ".repro_runs or $REPRO_RUN_DIR)")
    report_parser.add_argument("--format", choices=("text", "json"),
                               default="text",
                               help="output format (default text)")
    report_parser.add_argument("--top", type=int, default=10,
                               help="slowest tasks to list (default 10)")
    report_parser.set_defaults(func=_cmd_report)

    trace_parser = commands.add_parser(
        "trace", help="materialize one workload into the trace "
                      "store, or audit the store with --verify")
    trace_parser.add_argument("name", nargs="?", default=None,
                              help="registered workload name "
                                   "(omit with --verify)")
    trace_parser.add_argument("--verify", action="store_true",
                              help="audit every stored payload's "
                                   "integrity (length + per-block "
                                   "CRC32); corrupt payloads are "
                                   "quarantined and reported; exits "
                                   "1 if any corruption was found")
    trace_parser.add_argument("--scale", type=int, default=None)
    trace_parser.add_argument("--quick", action="store_true")
    trace_parser.add_argument("--force", action="store_true",
                              help="regenerate even on a cache hit")
    trace_parser.add_argument("--stats", action="store_true",
                              help="print column-level statistics "
                                   "(event/dispatched counts, unique "
                                   "opcode/class/key counts, address "
                                   "footprint) computed straight from "
                                   "the stored columns")
    trace_parser.add_argument("--set", action="append",
                              type=_parse_override, metavar="KEY=VALUE",
                              help="override a generator parameter")
    trace_parser.add_argument("--trace-dir", type=str, default=None)
    trace_parser.set_defaults(func=_cmd_trace)

    store_parser = commands.add_parser(
        "store",
        help="administer the trace library (layout stats, integrity "
             "audit, index-litter gc, flat-to-sharded migration)")
    store_parser.add_argument(
        "action", choices=("stats", "verify", "gc", "migrate"),
        help="stats: layout + result-cache numbers; verify: audit "
             "every payload (quarantines corruption, reports stale "
             "sidecars); gc: remove orphan sidecars / tmp litter / "
             "empty shard dirs (payloads are never touched); "
             "migrate: move legacy flat payloads into shards/")
    store_parser.add_argument("--trace-dir", type=str, default=None)
    store_parser.set_defaults(func=_cmd_store)

    serve_parser = commands.add_parser(
        "serve",
        help="serve batched sweep queries (JSON lines / HTTP) through "
             "the coalescing query planner")
    serve_parser.add_argument("--host", type=str, default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="listen port (default 0 = pick an "
                                   "ephemeral port and print it)")
    serve_parser.add_argument("--queue-limit", type=int, default=4,
                              help="concurrent replaying requests "
                                   "admitted before overload "
                                   "rejection (default 4); cache "
                                   "hits are always served inline")
    serve_parser.add_argument("--max-requests", type=int, default=None,
                              metavar="N",
                              help="exit cleanly after N requests "
                                   "(smoke tests / CI); default: "
                                   "serve until interrupted")
    serve_parser.add_argument("--telemetry", action="store_true",
                              help="record spans/metrics under "
                                   "<run-dir>/serve/ for "
                                   "`repro report --run serve`")
    serve_parser.add_argument("--run-dir", type=str, default=None,
                              help="run-journal root for --telemetry "
                                   "(default .repro_runs or "
                                   "$REPRO_RUN_DIR)")
    serve_parser.add_argument("--trace-dir", type=str, default=None)
    serve_parser.set_defaults(func=_cmd_serve)

    # bench is dispatched before argparse (see main): REMAINDER cannot
    # forward leading pytest flags like `-k`.  Registered here only so
    # it appears in `repro --help`.
    commands.add_parser(
        "bench", add_help=False,
        help="run the benchmark suite (pytest-benchmark); all "
             "arguments are forwarded to pytest")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    # Dispatched before argparse: the subcommand is `required`, so a
    # bare top-level flag needs its own path.
    if arguments and arguments[0] in ("--version", "-V", "version"):
        _print_versions()
        return 0
    # `repro bench -k fith`: everything after `bench` goes to pytest
    # verbatim, which argparse.REMAINDER cannot express for leading
    # options.
    if arguments and arguments[0] == "bench":
        return _cmd_bench(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
