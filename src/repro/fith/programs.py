"""The Fith workload corpus (the section-5 "large Fith programs").

The paper's traces came from unpublished Fith programs, the longest
about 20,000 instructions.  This corpus substitutes workloads of the
same scale and character: recursive arithmetic, array algorithms,
polymorphic dispatch over class hierarchies, object allocation churn
and float-heavy kernels.  Each entry is a function ``scale -> source``
so experiments can grow traces; :func:`trace_for` compiles, runs and
returns the recorded events.

Stack-effect conventions used throughout (``put`` pops value, index,
array; ``at`` pops index, array; ``!`` pops address, value):

    arr idx val put      arr idx at      value addr !

A synthetic generator (:func:`polymorphic_workload`) additionally
produces programs with a controlled number of classes and selectors,
used to stress the ITLB across its whole size sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.fith.interp import FithMachine
from repro.trace.columnar import Trace, TraceBuilder


def hanoi(scale: int = 1) -> str:
    """Towers of Hanoi move counting: deep LIFO recursion."""
    disks = min(9 + scale, 16)
    return f"""
    variable moves
    0 moves !
    : count-move  moves @ 1 + moves ! ;
    :: SmallInteger move-tower ( n -- )
        dup 1 < if drop else
            dup 1 - move-tower
            count-move
            dup 1 - move-tower
            drop
        then ;
    {disks} move-tower
    moves @ .
    """


def sieve(scale: int = 1) -> str:
    """Sieve of Eratosthenes: array traffic, tight loops."""
    limit = 150 * scale
    return f"""
    variable primes
    {limit} array primes !
    variable count
    0 count !
    : flags primes @ ;
    : mark ( i -- )  flags swap true put ;
    : clear-multiples ( p -- )
        dup dup * begin
            dup {limit} < while
            dup mark
            over +
        repeat drop drop ;
    : run-sieve
        {limit} 2 do
            flags i at true = not if
                count @ 1 + count !
                i clear-multiples
            then
        loop ;
    run-sieve
    count @ .
    """


def sort(scale: int = 1) -> str:
    """In-place insertion sort over a pseudo-random array."""
    n = 40 * scale
    return f"""
    variable data
    {n} array data !
    variable seed
    12345 seed !
    : rand  seed @ 75 * 74 + 65537 mod dup seed ! ;
    : fill-data  {n} 0 do data @ i rand put loop ;
    : get ( i -- v )  data @ swap at ;
    : set ( i v -- )  data @ rot rot put ;
    : exch ( i j -- )
        over get over get   ( i j vi vj )
        swap rot swap       ( i vj j vi )
        set                 ( i vj )
        set ;
    : insert-sort
        {n} 1 do
            i begin
                dup 0 > if
                    dup get over 1 - get < if
                        dup dup 1 - exch
                        1 - true
                    else false then
                else false then
            while repeat drop
        loop ;
    : check-sorted
        true
        {n} 1 do
            i get i 1 - get >= and
        loop ;
    fill-data
    insert-sort
    check-sorted .
    data @ 0 at . data @ {n - 1} at .
    """


def shapes(scale: int = 1) -> str:
    """Polymorphic dispatch over a small class hierarchy."""
    rounds = 12 * scale
    return f"""
    class Circle 1
    class Square 1
    class Rect 2
    class Tri 2

    :: Circle area   0 at dup * 3 * ;
    :: Square area   0 at dup * ;
    :: Rect area     dup 0 at swap 1 at * ;
    :: Tri area      dup 0 at swap 1 at * 2 / ;
    :: Circle grow   dup 0 at 1 + over swap 0 swap put drop ;
    :: Square grow   dup 0 at 1 + over swap 0 swap put drop ;
    :: Rect grow     dup 0 at 1 + over swap 0 swap put drop ;
    :: Tri grow      dup 1 at 1 + over swap 1 swap put drop ;

    variable shapes-arr
    4 array shapes-arr !
    : setup
        #Circle new dup 0 2 put  shapes-arr @ 0 rot put
        #Square new dup 0 3 put  shapes-arr @ 1 rot put
        #Rect new dup 0 2 put dup 1 5 put  shapes-arr @ 2 rot put
        #Tri new dup 0 6 put dup 1 4 put  shapes-arr @ 3 rot put ;
    variable total
    0 total !
    : tally ( n -- ) total @ + total ! ;
    : round
        4 0 do
            shapes-arr @ i at grow
            shapes-arr @ i at area tally
        loop ;
    setup
    {rounds} 0 do round loop
    total @ .
    """


def bank(scale: int = 1) -> str:
    """Object churn: accounts with deposits and withdrawals."""
    accounts = 8
    rounds = 20 * scale
    return f"""
    class Account 1
    class Savings 1
    class Checking 1

    :: Account balance   0 at ;
    :: Savings balance   0 at ;
    :: Checking balance  0 at ;
    : set-balance ( acct n -- )  0 swap put ;
    : deposit ( acct n -- )  over balance + set-balance ;
    : withdraw ( acct n -- )  over balance swap - set-balance ;

    variable accounts-arr
    {accounts} array accounts-arr !
    variable seed
    777 seed !
    : rand  seed @ 75 * 74 + 65537 mod dup seed ! ;
    : nth ( i -- acct ) accounts-arr @ swap at ;
    : setup
        {accounts} 0 do
            i 3 mod 0 = if #Account new else
            i 3 mod 1 = if #Savings new else
            #Checking new then then
            dup 100 set-balance
            accounts-arr @ i rot put
        loop ;
    : churn
        {accounts} 0 do
            i nth rand 50 mod deposit
            i nth rand 25 mod withdraw
        loop ;
    setup
    {rounds} 0 do churn loop
    0 nth balance .
    """


def matrix(scale: int = 1) -> str:
    """Float-heavy kernel: dense matrix-vector products."""
    n = 8
    rounds = 8 * scale
    return f"""
    variable mat
    {n * n} array mat !
    variable vec
    {n} array vec !
    variable out
    {n} array out !
    : mset ( r c v -- )  rot rot swap {n} * + mat @ swap rot put ;
    : mget ( r c -- v )  swap {n} * + mat @ swap at ;
    : setup
        {n} 0 do
            {n} 0 do
                j i  j i + 1 + float 1.0 swap /  mset
            loop
            vec @ i  i 1 + float  put
        loop ;
    : mvmul
        {n} 0 do
            0.0
            {n} 0 do
                j i mget  vec @ i at  * +
            loop
            out @ i rot put
        loop ;
    setup
    {rounds} 0 do mvmul loop
    out @ 0 at .
    """


def fib(scale: int = 1) -> str:
    """Naive Fibonacci: maximal call/return density."""
    n = min(13 + scale, 22)
    return f"""
    :: SmallInteger fib
        dup 2 < if else dup 1 - fib swap 2 - fib + then ;
    {n} fib .
    """


def collatz(scale: int = 1) -> str:
    """Collatz trajectories: data-dependent branching."""
    limit = 40 * scale
    return f"""
    variable steps
    0 steps !
    : bump steps @ 1 + steps ! ;
    :: SmallInteger collatz
        begin dup 1 > while
            bump
            dup 2 mod 0 = if 2 / else 3 * 1 + then
        repeat drop ;
    {limit} 2 do i collatz loop
    steps @ .
    """


def polymorphic_workload(
    classes: int = 12, selectors: int = 24, rounds: int = 40,
    seed: int = 99, phase_length: int = 120,
    hot_classes: int = 5, hot_selectors: int = 10,
    stray_percent: int = 4,
) -> str:
    """Generate a synthetic program with a controlled dispatch surface.

    ``classes`` x ``selectors`` bounds the number of distinct ITLB keys
    the trace can touch.  Calls are issued in *phases*: each phase
    works a hot subset of ``hot_classes`` x ``hot_selectors`` keys with
    an occasional stray call outside it, modelling the phase-local
    locality of real programs (uniform random calls would thrash every
    LRU cache and match no real workload).  Method bodies chain to
    strictly lower-numbered selectors pseudo-randomly (a scrambled but
    guaranteed-terminating call graph).
    """
    state = seed or 1

    def rand(bound: int) -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        # Use the high bits: the low bits of a mod-2^31 LCG have tiny
        # periods and would collapse the (class, selector) space.
        return (state >> 16) % bound

    lines: List[str] = []
    for c in range(classes):
        lines.append(f"class C{c} 1")
    for c in range(classes):
        for s in range(selectors):
            if s < 4:
                # A few "real" methods: bump field 0, maybe chain down.
                body = "dup 0 at 1 + over swap 0 swap put"
                if s > 0 and rand(100) < 45:
                    body += f" dup m{rand(s)}"
                body += " drop"
            else:
                # Most methods are small (Smalltalk methods are tiny);
                # this keeps the code footprint proportional to the
                # class count rather than the full key space.
                body = f"dup m{rand(4)} drop" if rand(100) < 30 else "drop"
            lines.append(f":: C{c} m{s} {body} ;")
    lines.append("variable objs")
    lines.append(f"{classes} array objs !")
    for c in range(classes):
        lines.append(f"#C{c} new dup 0 0 put objs @ {c} rot put")
    # Call sites are grouped into phase *words*, each executed `reps`
    # times from a loop, so the instruction stream has the loop reuse
    # of real programs (straight-line call sites would be all-cold).
    reps = max(1, phase_length // 40)
    sites_per_phase = 40
    issued = 0
    phase_index = 0
    while issued < rounds:
        phase_classes = [rand(classes)
                         for _ in range(min(hot_classes, classes))]
        phase_selectors = [rand(selectors)
                           for _ in range(min(hot_selectors, selectors))]
        sites = []
        for _ in range(min(sites_per_phase, rounds - issued)):
            if rand(100) < stray_percent:
                obj, sel = rand(classes), rand(selectors)
            else:
                obj = phase_classes[rand(len(phase_classes))]
                sel = phase_selectors[rand(len(phase_selectors))]
            sites.append(f"objs @ {obj} at m{sel}")
            issued += 1
        lines.append(f": p{phase_index} " + " ".join(sites) + " ;")
        lines.append(f"{reps} 0 do p{phase_index} loop")
        phase_index += 1
    lines.append("objs @ 0 at 0 at .")
    return "\n".join(lines)


def gc_churn(scale: int = 1, slots: int = 16, batch: int = 48) -> str:
    """Allocation churn: a rotating window of short-lived objects.

    Every round allocates ``batch`` fresh objects of three classes and
    stores them into a ``slots``-entry window, unlinking the previous
    generation (which becomes garbage); a sweep then reads every
    survivor.  The trace is dominated by ``new``/``put`` traffic with a
    constantly moving object population -- the storage-management
    regime section 2.3 budgets for.
    """
    rounds = 30 * scale
    return f"""
    class Node 2
    class Leaf 1
    class Pair 2
    variable slots
    {slots} array slots !
    variable seed
    4242 seed !
    : rand  seed @ 75 * 74 + 65537 mod dup seed ! ;
    : churn
        {batch} 0 do
            i 3 mod 0 = if #Node new dup 0 i put dup 1 rand put else
            i 3 mod 1 = if #Leaf new dup 0 rand 64 mod put else
            #Pair new dup 0 i put dup 1 i 2 * put then then
            slots @ i {slots} mod rot put
        loop ;
    : sweep ( -- n )
        0 {slots} 0 do slots @ i at 0 at + loop ;
    variable total
    0 total !
    : round  churn sweep total @ + total ! ;
    {rounds} 0 do round loop
    total @ .
    """


def megamorphic(scale: int = 1, classes: int = 26) -> str:
    """A megamorphic dispatch storm: one call site, ``classes`` receivers.

    Every class implements the same two selectors; the storm loop walks
    an array holding one instance of each class, so consecutive sends at
    the *same* site see a different receiver class every time -- the
    worst case for any translation cache whose associativity is below
    the receiver count (the anti-workload to ``polymorphic_workload``'s
    phase locality).
    """
    rounds = 40 * scale
    lines: List[str] = []
    for c in range(classes):
        lines.append(f"class M{c} 1")
    for c in range(classes):
        lines.append(f":: M{c} poke dup 0 at 1 + over swap 0 swap put "
                     "drop ;")
        lines.append(f":: M{c} probe 0 at {c % 7} + ;")
    lines.append("variable objs")
    lines.append(f"{classes} array objs !")
    for c in range(classes):
        lines.append(f"#M{c} new dup 0 0 put objs @ {c} rot put")
    lines.append("variable acc")
    lines.append("0 acc !")
    lines.append(f": storm {classes} 0 do "
                 "objs @ i at poke "
                 "objs @ i at probe acc @ + acc ! "
                 "loop ;")
    lines.append(f"{rounds} 0 do storm loop")
    lines.append("acc @ .")
    return "\n".join(lines)


def deep_calls(scale: int = 1, depth: int = 500) -> str:
    """Deep-recursion call stress: frames far past the context cache.

    ``sink`` recurses ``depth`` levels (a single self-call chain);
    ``m-even``/``m-odd`` alternate through two code addresses for the
    same depth.  Call/return density approaches one send per two
    instructions, and the return stack grows to ``depth`` frames --
    the copy-back regime of the paper's context cache.
    """
    reps = 8 * scale
    return f"""
    :: SmallInteger sink
        dup 1 < if drop 0 else dup 1 - sink 1 + swap drop then ;
    :: SmallInteger m-even  dup 1 < if drop 1 else 1 - m-odd then ;
    :: SmallInteger m-odd   dup 1 < if drop 0 else 1 - m-even then ;
    variable total
    0 total !
    {reps} 0 do
        {depth} sink
        {depth} m-even +
        total @ + total !
    loop
    total @ .
    """


def redefinition_epoch(epoch: int, scale: int = 1,
                       classes: int = 6) -> str:
    """One epoch of method-redefinition churn (load, run, repeat).

    Epoch 0 declares the classes, the object population and the
    accumulator; every epoch (including 0) *redefines* ``work`` on all
    ``classes`` classes with a body that varies by ``(epoch, class)``
    and then drives a dispatch loop over the population.  Reloading a
    program into a live machine is the Fith analogue of the COM's
    ``install_method``: it shoots down the send-translation memo
    (PR-1's predecode invalidation path) and places the new method
    bodies at fresh code addresses, so the instruction cache sees a
    shifting footprint.
    """
    rounds = 10 * scale
    lines: List[str] = []
    if epoch == 0:
        for c in range(classes):
            lines.append(f"class R{c} 1")
        lines.append("variable objs")
        lines.append(f"{classes} array objs !")
        for c in range(classes):
            lines.append(f"#R{c} new dup 0 {c + 1} put objs @ {c} rot put")
        lines.append("variable acc")
        lines.append("0 acc !")
    bodies = [
        "0 at",
        "dup 0 at 1 + over swap 0 swap put 0 at",
        "0 at 2 *",
        "0 at 3 +",
    ]
    for c in range(classes):
        body = bodies[(epoch + c) % len(bodies)]
        lines.append(f":: R{c} work {body} ;")
    lines.append(f": e{epoch} {rounds} 0 do {classes} 0 do "
                 "objs @ i at work acc @ + acc ! "
                 "loop loop ;")
    lines.append(f"e{epoch}")
    lines.append("acc @ .")
    return "\n".join(lines)


#: Additional single-source workloads (not part of the calibrated
#: section-5 corpus: CORPUS feeds the figure-10/11 measurement trace,
#: whose operating points must not shift when scenarios are added).
EXTRA_WORKLOADS: Dict[str, Callable[[int], str]] = {
    "gc_churn": gc_churn,
    "megamorphic": megamorphic,
    "deep_calls": deep_calls,
}


#: The named corpus: name -> source builder.
CORPUS: Dict[str, Callable[[int], str]] = {
    "hanoi": hanoi,
    "sieve": sieve,
    "sort": sort,
    "shapes": shapes,
    "bank": bank,
    "matrix": matrix,
    "fib": fib,
    "collatz": collatz,
}


def trace_for(name_or_source: str, scale: int = 1,
              max_steps: int = 20_000_000) -> Trace:
    """Run a corpus program (or literal source) and return its trace."""
    if name_or_source in CORPUS:
        source = CORPUS[name_or_source](scale)
    else:
        source = name_or_source
    machine = FithMachine(trace=True)
    machine.run_source(source, max_steps=max_steps)
    return machine.trace.snapshot()


def combined_trace(scale: int = 1, names=None,
                   max_steps: int = 20_000_000) -> Trace:
    """Concatenate the whole corpus into one long measurement trace.

    Each program runs in its own machine; addresses are rebased so the
    programs occupy disjoint code regions, as separate programs would.
    The concatenation is column-to-column (bulk array extends); no
    per-event objects are built.
    """
    builder = TraceBuilder()
    base = 0
    top = 0
    for name in (names or sorted(CORPUS)):
        part = trace_for(name, scale, max_steps)
        builder.extend(part, address_offset=base)
        if len(part):
            top = max(top, base + max(part.addresses()))
        base = top + 64
    return builder.snapshot()
