"""Fith: Forth syntax, Smalltalk semantics (paper section 5)."""

from repro.fith.code import CompiledWord, FithInstruction, FithOp
from repro.fith.interp import FithMachine, FithObject
from repro.fith.programs import (
    CORPUS,
    combined_trace,
    polymorphic_workload,
    trace_for,
)

__all__ = [
    "CORPUS", "CompiledWord", "FithInstruction", "FithMachine",
    "FithObject", "FithOp", "combined_trace", "polymorphic_workload",
    "trace_for",
]
