"""The Fith interpreter: Forth syntax, Smalltalk semantics (section 5).

Every word that is not stack manipulation or control flow is a
*message* sent to the object on top of the stack, resolved against the
class hierarchy exactly like a Smalltalk send -- which is why traces of
Fith execution exercise the same instruction-translation mechanism the
COM uses, and why the paper's ITLB results transfer.

Source language::

    \\ line comment        ( inline comment )
    : square  dup * ;                 \\ define 'square' on Object
    :: SmallInteger half  2 / ;       \\ define 'half' on SmallInteger
    class Point 2                     \\ class with 2 fields
    variable total                    \\ a global one-field cell
    5 square total !                  \\ immediate (main) code
    10 0 do i . loop
    flag @ if 1 else 2 then

Control words: ``if else then``, ``begin until``, ``begin while
repeat``, ``do loop`` with ``i``/``j``, ``exit``.

The interpreter records one trace record per instruction when tracing
is enabled -- instruction address, opcode number and the class of the
top of stack, the exact record of section 5 -- into a columnar
:class:`~repro.trace.columnar.TraceBuilder` (four packed ints per
event, no object construction on the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FithError
from repro.memory.tags import Tag, Word, fits_small_integer
from repro.objects.model import ClassRegistry, ObjectClass, PrimitiveMethod
from repro.core.isa import OpcodeTable
from repro.fith.code import (
    CompiledWord,
    FithInstruction,
    FithOp,
    MACHINE_OP_SELECTORS,
)
from repro.trace.columnar import TraceBuilder

_TRUE = Word.atom("true")
_FALSE = Word.atom("false")
_NIL = Word.atom("nil")


def _bool(value: bool) -> Word:
    return _TRUE if value else _FALSE


def _is_true(word: Word) -> bool:
    if word.is_small_integer:
        return word.value != 0
    return word.same_object_as(_TRUE)


@dataclass
class FithObject:
    """A heap object: a class tag and a list of field words."""

    class_tag: int
    fields: List[Word]


@dataclass
class _Frame:
    word: CompiledWord
    pc: int = 0


@dataclass
class _LoopFrame:
    index: int
    limit: int


class FithMachine:
    """Compiler plus interpreter for Fith programs."""

    def __init__(self, *, trace: bool = False) -> None:
        self.registry = ClassRegistry()
        self.opcodes = OpcodeTable()
        self.object_class = self.registry.define_class("Object")
        for name in ("Uninitialized", "SmallInteger", "Float", "Atom",
                     "Instruction", "ObjectPointer"):
            self.registry.by_name(name).superclass = self.object_class
        self.array_class = self.registry.define_class(
            "Array", self.object_class)
        self.stack: List[Word] = []
        self.output: List[Word] = []
        self.trace: Optional[TraceBuilder] = \
            TraceBuilder() if trace else None
        self.steps = 0
        self._objects: Dict[int, FithObject] = {}
        self._next_oid = 1
        self._words: Dict[str, CompiledWord] = {}
        self._globals: Dict[str, Word] = {}
        self._next_address = 0
        self._machine_opcode = {
            op: self.opcodes.intern(spelling)
            for op, spelling in MACHINE_OP_SELECTORS.items()
        }
        self._primitives: Dict[str, Callable[["FithMachine"], None]] = {}
        #: Send-translation memo, the Fith analogue of the COM's ITLB
        #: ("the instruction translation mechanisms of the two machines
        #: are identical"): (opcode, receiver tag) -> resolved action.
        #: Cleared whenever definitions can change (load, define_class).
        self._send_memo: Dict[Tuple[int, int], tuple] = {}
        self._install_primitives()

    # ------------------------------------------------------------------
    # object model
    # ------------------------------------------------------------------

    def define_class(self, name: str, fields: int = 0,
                     superclass: Optional[str] = None) -> ObjectClass:
        self._send_memo.clear()
        parent = (self.registry.by_name(superclass)
                  if superclass else self.object_class)
        if name in self.registry:
            cls = self.registry.by_name(name)
            cls.instance_size = fields
            return cls
        return self.registry.define_class(name, parent, instance_size=fields)

    def allocate(self, cls: ObjectClass, size: Optional[int] = None) -> Word:
        oid = self._next_oid
        self._next_oid += 1
        count = cls.instance_size if size is None else size
        self._objects[oid] = FithObject(cls.class_tag, [_NIL] * max(count, 0))
        return Word.pointer(oid, cls.class_tag)

    def object_of(self, pointer: Word) -> FithObject:
        if not pointer.is_pointer:
            raise FithError(f"not an object pointer: {pointer!r}")
        try:
            return self._objects[pointer.value]
        except KeyError:
            raise FithError(f"dangling pointer {pointer!r}") from None

    # ------------------------------------------------------------------
    # stack helpers
    # ------------------------------------------------------------------

    def push(self, word: Word) -> None:
        self.stack.append(word)

    def pop(self) -> Word:
        try:
            return self.stack.pop()
        except IndexError:
            raise FithError("stack underflow") from None

    def pop_int(self) -> int:
        word = self.pop()
        if not word.is_small_integer:
            raise FithError(f"expected a small integer, got {word!r}")
        return word.value

    def _tos_class(self) -> int:
        return self.stack[-1].class_tag if self.stack else -1

    # ------------------------------------------------------------------
    # primitive vocabulary
    # ------------------------------------------------------------------

    def _register(self, class_name: str, selector: str,
                  handler: Callable[["FithMachine"], None]) -> None:
        unit = f"fith.{class_name}.{selector}"
        self._primitives[unit] = handler
        self.registry.by_name(class_name).define_primitive(selector, unit)
        self.opcodes.intern(selector)

    def _numeric_binary(self, fn) -> Callable[["FithMachine"], None]:
        def handler(machine: "FithMachine") -> None:
            b = machine.pop()
            a = machine.pop()
            if not (a.is_number and b.is_number):
                raise FithError(f"numeric word applied to {a!r}, {b!r}")
            result = fn(a.value, b.value)
            if isinstance(result, bool):
                machine.push(_bool(result))
            elif a.is_small_integer and b.is_small_integer \
                    and isinstance(result, int):
                machine.push(Word.small_integer(result))
            else:
                machine.push(Word.floating(float(result)))
        return handler

    def _install_primitives(self) -> None:
        for class_name in ("SmallInteger", "Float"):
            self._register(class_name, "+", self._numeric_binary(
                lambda a, b: a + b))
            self._register(class_name, "-", self._numeric_binary(
                lambda a, b: a - b))
            self._register(class_name, "*", self._numeric_binary(
                lambda a, b: a * b))
            self._register(class_name, "/", self._numeric_binary(_fith_div))
            self._register(class_name, "<", self._numeric_binary(
                lambda a, b: a < b))
            self._register(class_name, "<=", self._numeric_binary(
                lambda a, b: a <= b))
            self._register(class_name, ">", self._numeric_binary(
                lambda a, b: a > b))
            self._register(class_name, ">=", self._numeric_binary(
                lambda a, b: a >= b))
            self._register(class_name, "max", self._numeric_binary(max))
            self._register(class_name, "min", self._numeric_binary(min))
        self._register("SmallInteger", "mod", self._numeric_binary(
            lambda a, b: a % b if b else _raise_div0()))
        self._register("SmallInteger", "neg", _unary_numeric(
            lambda v: -v))
        self._register("Float", "neg", _unary_numeric(lambda v: -v))
        self._register("SmallInteger", "abs", _unary_numeric(abs))
        self._register("Float", "abs", _unary_numeric(abs))
        self._register("Float", "floor", _float_floor)
        self._register("SmallInteger", "float", _int_to_float)

        # Equality and printing live on Object: any receiver works.
        self._register("Object", "=", _generic_eq)
        self._register("Object", "<>", _generic_ne)
        self._register("Object", ".", _print_pop)

        # Boolean algebra on the atoms true/false.
        self._register("Atom", "and", _logical(lambda a, b: a and b))
        self._register("Atom", "or", _logical(lambda a, b: a or b))
        self._register("Atom", "not", _logical_not)

        # Object and array vocabulary.
        self._register("Atom", "new", _new_instance)
        self._register("SmallInteger", "array", _new_array)
        self._register("SmallInteger", "at", _array_at)
        self._register("Object", "put", _array_put)
        # Dispatch sees the *referent's* class in a pointer word, so the
        # generic pointer vocabulary lives on Object.
        self._register("Object", "size", _array_size)
        self._register("Object", "@", _cell_fetch)
        self._register("Object", "!", _cell_store)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _tokenize(source: str) -> List[str]:
        tokens: List[str] = []
        for raw_line in source.splitlines():
            line = raw_line.split("\\", 1)[0]
            parts = line.split()
            tokens.extend(parts)
        # Strip ( ... ) comments (token-delimited, possibly multi-token).
        result: List[str] = []
        depth = 0
        for token in tokens:
            if token == "(":
                depth += 1
                continue
            if token == ")":
                if depth == 0:
                    raise FithError("unbalanced comment )")
                depth -= 1
                continue
            if depth == 0:
                result.append(token)
        if depth:
            raise FithError("unterminated ( comment")
        return result

    def _literal(self, token: str) -> Optional[Word]:
        if token == "true":
            return _TRUE
        if token == "false":
            return _FALSE
        if token == "nil":
            return _NIL
        if token.startswith("#") and len(token) > 1:
            return Word.atom(token[1:])
        try:
            value = int(token)
        except ValueError:
            pass
        else:
            if not fits_small_integer(value):
                raise FithError(
                    f"integer literal {token} out of small-integer range")
            return Word.small_integer(value)
        try:
            if "." in token:
                return Word.floating(float(token))
        except ValueError:
            pass
        return None

    def load(self, source: str) -> Optional[CompiledWord]:
        """Compile a program; returns the main word (immediate code).

        Definitions are installed as methods; immediate (outside-
        definition) code is collected into an anonymous main word.
        """
        self._send_memo.clear()
        tokens = self._tokenize(source)
        main_instructions: List[FithInstruction] = []
        main_control: List[Tuple[str, int]] = []
        position = 0
        while position < len(tokens):
            token = tokens[position]
            if token == ":":
                position = self._compile_definition(
                    tokens, position + 1, "Object")
            elif token == "::":
                if position + 1 >= len(tokens):
                    raise FithError(":: needs a class name")
                class_name = tokens[position + 1]
                if class_name not in self.registry:
                    raise FithError(f":: on unknown class {class_name!r}")
                position = self._compile_definition(
                    tokens, position + 2, class_name)
            elif token == "class":
                if position + 2 >= len(tokens) or \
                        not tokens[position + 2].isdigit():
                    raise FithError("class needs a name and a field count")
                self.define_class(tokens[position + 1],
                                  int(tokens[position + 2]))
                position += 3
            elif token == "variable":
                if position + 1 >= len(tokens):
                    raise FithError("variable needs a name")
                name = tokens[position + 1]
                self._globals[name] = self.allocate(self.array_class, 1)
                position += 2
            else:
                consumed = self._compile_token(token, main_instructions,
                                               control_stack=main_control)
                position += consumed
        if main_control:
            raise FithError("unterminated control structure in main code")
        if not main_instructions:
            return None
        main_instructions.append(FithInstruction(FithOp.HALT))
        word = CompiledWord("(main)", "Object", self._next_address,
                            main_instructions)
        self._next_address += len(main_instructions)
        self._words.setdefault("(main)", word)
        self._main = word
        return word

    _STACK_OPS = {
        "dup": FithOp.DUP, "drop": FithOp.DROP, "swap": FithOp.SWAP,
        "over": FithOp.OVER, "rot": FithOp.ROT,
        "i": FithOp.LOOP_I, "j": FithOp.LOOP_J, "exit": FithOp.EXIT,
    }

    def _compile_definition(self, tokens: List[str], position: int,
                            class_name: str) -> int:
        if position >= len(tokens):
            raise FithError("definition missing a name")
        name = tokens[position]
        position += 1
        instructions: List[FithInstruction] = []
        control: List[Tuple[str, int]] = []
        while position < len(tokens):
            token = tokens[position]
            if token == ";":
                if control:
                    raise FithError(
                        f"unterminated control structure in {name!r}")
                instructions.append(FithInstruction(FithOp.RETURN))
                word = CompiledWord(name, class_name, self._next_address,
                                    instructions)
                self._next_address += len(instructions)
                self._words[f"{class_name}>>{name}"] = word
                cls = self.registry.by_name(class_name)
                cls.define_method(name, word)
                self.opcodes.intern(name)
                return position + 1
            position += self._compile_token(token, instructions, control)
        raise FithError(f"definition {name!r} missing ;")

    def _compile_token(self, token: str,
                       instructions: List[FithInstruction],
                       control_stack: Optional[List[Tuple[str, int]]]) -> int:
        """Compile one token into ``instructions``; returns tokens used."""
        word = self._literal(token)
        if word is not None:
            instructions.append(FithInstruction(FithOp.PUSH, literal=word))
            return 1
        if token in self._STACK_OPS:
            instructions.append(FithInstruction(self._STACK_OPS[token]))
            return 1
        if token in ("if", "else", "then", "begin", "until", "while",
                     "repeat", "do", "loop"):
            if control_stack is None:
                raise FithError(
                    f"control word {token!r} outside a definition")
            self._compile_control(token, instructions, control_stack)
            return 1
        if token in self._globals:
            instructions.append(
                FithInstruction(FithOp.PUSH, literal=self._globals[token]))
            return 1
        # Everything else is an abstract instruction: a late-bound send.
        self.opcodes.intern(token)
        instructions.append(FithInstruction(FithOp.SEND, selector=token))
        return 1

    def _compile_control(self, token: str,
                         instructions: List[FithInstruction],
                         control: List[Tuple[str, int]]) -> None:
        here = len(instructions)
        if token == "if":
            instructions.append(FithInstruction(FithOp.BRANCH_IF_FALSE))
            control.append(("if", here))
        elif token == "else":
            kind, origin = _pop_control(control, "if", "else")
            instructions.append(FithInstruction(FithOp.BRANCH))
            instructions[origin].displacement = \
                len(instructions) - origin - 1
            control.append(("else", len(instructions) - 1))
        elif token == "then":
            kind, origin = _pop_control(control, "if", "then", "else")
            instructions[origin].displacement = \
                len(instructions) - origin - 1
        elif token == "begin":
            control.append(("begin", here))
        elif token == "until":
            kind, origin = _pop_control(control, "begin", "until")
            instructions.append(FithInstruction(
                FithOp.BRANCH_IF_FALSE,
                displacement=origin - here - 1))
        elif token == "while":
            kind, origin = _pop_control(control, "begin", "while")
            instructions.append(FithInstruction(FithOp.BRANCH_IF_FALSE))
            control.append(("while", here))
            control.append(("begin-while", origin))
        elif token == "repeat":
            kind, begin_origin = _pop_control(
                control, "begin-while", "repeat")
            kind, while_origin = _pop_control(control, "while", "repeat")
            instructions.append(FithInstruction(
                FithOp.BRANCH, displacement=begin_origin - here - 1))
            instructions[while_origin].displacement = \
                len(instructions) - while_origin - 1
        elif token == "do":
            instructions.append(FithInstruction(FithOp.DO))
            control.append(("do", here))
        elif token == "loop":
            kind, origin = _pop_control(control, "do", "loop")
            instructions.append(FithInstruction(
                FithOp.LOOP, displacement=origin - here))
        else:  # pragma: no cover - guarded by caller
            raise FithError(f"unknown control word {token!r}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _plan_of(self, word: CompiledWord) -> list:
        """Predecode a word's instructions into plan tuples.

        Each entry is ``(code, literal, displacement, selector,
        trace_opcode, dispatched)``: the integer opcode replaces enum
        identity chains, and the trace opcode -- which the seed
        re-derived from the opcode table on every traced step -- is
        resolved once.  The plan is cached on the word; compiled words
        are immutable after :meth:`load` returns.
        """
        plan = []
        for inst in word.instructions:
            op = inst.op
            dispatched = op is FithOp.SEND
            trace_opcode = (self.opcodes.number_of(inst.selector)
                            if dispatched else self._machine_opcode[op])
            plan.append((_CODE_OF[op], inst.literal, inst.displacement,
                         inst.selector, trace_opcode, dispatched))
        word.plan = plan
        return plan

    def run(self, max_steps: int = 5_000_000) -> None:
        """Execute the main word compiled by :meth:`load`.

        The interpreter runs each word's predecoded plan in a tight
        inner loop with a local program counter; the hottest operations
        (push, send, branches, dup) are inlined and the rest dispatch
        through the ``_HANDLERS`` table, replacing the seed's long
        if/elif ladder.  Trace events, step counts and error messages
        are identical to the seed interpreter.
        """
        main = getattr(self, "_main", None)
        if main is None:
            raise FithError("no main code loaded")
        frames: List[_Frame] = [_Frame(main)]
        loops: List[_LoopFrame] = []
        stack = self.stack
        registry = self.registry
        primitives = self._primitives
        send_memo = self._send_memo
        trace = self.trace
        handlers = _HANDLERS
        object_tag = self.object_class.class_tag
        steps = self.steps
        try:
            while frames:
                if steps >= max_steps:
                    raise FithError(f"exceeded step budget {max_steps}")
                frame = frames[-1]
                word = frame.word
                plan = word.plan
                if plan is None:
                    plan = self._plan_of(word)
                base = word.base_address
                pc = frame.pc
                limit = len(plan)
                while pc < limit:
                    if steps >= max_steps:
                        raise FithError(
                            f"exceeded step budget {max_steps}")
                    entry = plan[pc]
                    steps += 1
                    if trace is not None:
                        trace.record(
                            base + pc, entry[4],
                            stack[-1].class_tag if stack else -1,
                            entry[5])
                    pc += 1
                    code = entry[0]
                    if code == _PUSH:
                        stack.append(entry[1])
                    elif code == _SEND:
                        receiver_tag = (stack[-1].class_tag if stack
                                        else object_tag)
                        key = (entry[4], receiver_tag)
                        action = send_memo.get(key)
                        if action is None:
                            method = registry.lookup_by_tag(
                                entry[3], receiver_tag).method
                            if isinstance(method, PrimitiveMethod):
                                action = (primitives[method.unit], None)
                            else:
                                action = (None, method.code)
                            send_memo[key] = action
                        handler, callee = action
                        if handler is not None:
                            handler(self)
                        else:
                            frame.pc = pc
                            frames.append(_Frame(callee))
                            break
                    elif code == _BRANCH_IF_FALSE:
                        try:
                            top = stack.pop()
                        except IndexError:
                            raise FithError("stack underflow") from None
                        if not _is_true(top):
                            pc += entry[2]
                    elif code == _DUP:
                        if not stack:
                            raise FithError("dup on empty stack")
                        stack.append(stack[-1])
                    elif code == _BRANCH:
                        pc += entry[2]
                    elif code == _RETURN or code == _EXIT:
                        frames.pop()
                        break
                    elif code == _HALT:
                        frames.clear()
                        break
                    else:
                        pc = handlers[code](self, entry, pc, stack, loops)
                else:
                    # Ran off the end of the word with no explicit
                    # return: the frame simply pops.
                    frames.pop()
        finally:
            self.steps = steps

    def _send(self, selector: str, frames: List[_Frame]) -> None:
        # With an empty stack there is no receiver class; dispatch falls
        # back to Object (zero-argument words like 'setup' still work).
        receiver_tag = (self.stack[-1].class_tag if self.stack
                        else self.object_class.class_tag)
        lookup = self.registry.lookup_by_tag(selector, receiver_tag)
        method = lookup.method
        if isinstance(method, PrimitiveMethod):
            self._primitives[method.unit](self)
        else:
            frames.append(_Frame(method.code))

    # -- conveniences -----------------------------------------------------

    def run_source(self, source: str, max_steps: int = 5_000_000) -> None:
        self.load(source)
        self.run(max_steps)

    def result(self) -> Optional[Word]:
        """Top of stack after a run (None when empty)."""
        return self.stack[-1] if self.stack else None


# ----------------------------------------------------------------------
# interpreter dispatch table
# ----------------------------------------------------------------------

#: Dense integer opcodes for the plan tuples (see FithMachine._plan_of).
(_PUSH, _DUP, _DROP, _SWAP, _OVER, _ROT, _BRANCH, _BRANCH_IF_FALSE,
 _DO, _LOOP, _LOOP_I, _LOOP_J, _RETURN, _EXIT, _SEND, _HALT) = range(16)

_CODE_OF = {
    FithOp.PUSH: _PUSH, FithOp.DUP: _DUP, FithOp.DROP: _DROP,
    FithOp.SWAP: _SWAP, FithOp.OVER: _OVER, FithOp.ROT: _ROT,
    FithOp.BRANCH: _BRANCH, FithOp.BRANCH_IF_FALSE: _BRANCH_IF_FALSE,
    FithOp.DO: _DO, FithOp.LOOP: _LOOP, FithOp.LOOP_I: _LOOP_I,
    FithOp.LOOP_J: _LOOP_J, FithOp.RETURN: _RETURN, FithOp.EXIT: _EXIT,
    FithOp.SEND: _SEND, FithOp.HALT: _HALT,
}


def _op_drop(machine, entry, pc, stack, loops):
    try:
        stack.pop()
    except IndexError:
        raise FithError("stack underflow") from None
    return pc


def _op_swap(machine, entry, pc, stack, loops):
    b = machine.pop()
    a = machine.pop()
    stack.append(b)
    stack.append(a)
    return pc


def _op_over(machine, entry, pc, stack, loops):
    if len(stack) < 2:
        raise FithError("over on short stack")
    stack.append(stack[-2])
    return pc


def _op_rot(machine, entry, pc, stack, loops):
    c = machine.pop()
    b = machine.pop()
    a = machine.pop()
    stack.append(b)
    stack.append(c)
    stack.append(a)
    return pc


def _op_do(machine, entry, pc, stack, loops):
    start = machine.pop_int()
    limit = machine.pop_int()
    loops.append(_LoopFrame(start, limit))
    return pc


def _op_loop(machine, entry, pc, stack, loops):
    if not loops:
        raise FithError("loop without do")
    loop = loops[-1]
    loop.index += 1
    if loop.index < loop.limit:
        # Branch back to the instruction after the DO.
        return pc + entry[2]
    loops.pop()
    return pc


def _op_loop_i(machine, entry, pc, stack, loops):
    if not loops:
        raise FithError("i outside a do loop")
    stack.append(Word.small_integer(loops[-1].index))
    return pc


def _op_loop_j(machine, entry, pc, stack, loops):
    if len(loops) < 2:
        raise FithError("j needs two nested do loops")
    stack.append(Word.small_integer(loops[-2].index))
    return pc


#: Handlers for the ops the run loop does not inline, indexed by the
#: integer opcode.  ``None`` marks ops handled inline (or that end the
#: inner loop) and is never reached through the table.
_HANDLERS = [
    None,          # PUSH (inline)
    None,          # DUP (inline)
    _op_drop,
    _op_swap,
    _op_over,
    _op_rot,
    None,          # BRANCH (inline)
    None,          # BRANCH_IF_FALSE (inline)
    _op_do,
    _op_loop,
    _op_loop_i,
    _op_loop_j,
    None,          # RETURN (inline)
    None,          # EXIT (inline)
    None,          # SEND (inline)
    None,          # HALT (inline)
]


def _pop_control(control: List[Tuple[str, int]], expected: str,
                 closer: str, alt: str = None):
    if not control or control[-1][0] not in (expected, alt):
        raise FithError(f"{closer!r} without matching {expected!r}")
    return control.pop()


def _fith_div(a, b):
    if b == 0:
        raise FithError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient
    return a / b


def _raise_div0():
    raise FithError("modulo by zero")


def _unary_numeric(fn):
    def handler(machine: FithMachine) -> None:
        a = machine.pop()
        if not a.is_number:
            raise FithError(f"numeric word applied to {a!r}")
        value = fn(a.value)
        if a.is_small_integer:
            machine.push(Word.small_integer(int(value)))
        else:
            machine.push(Word.floating(float(value)))
    return handler


def _float_floor(machine: FithMachine) -> None:
    a = machine.pop()
    if not a.is_number:
        raise FithError("floor needs a number")
    machine.push(Word.small_integer(int(a.value // 1)))


def _int_to_float(machine: FithMachine) -> None:
    a = machine.pop()
    if not a.is_number:
        raise FithError("float needs a number")
    machine.push(Word.floating(float(a.value)))


def _generic_eq(machine: FithMachine) -> None:
    b = machine.pop()
    a = machine.pop()
    machine.push(_bool(a.same_object_as(b)))


def _generic_ne(machine: FithMachine) -> None:
    b = machine.pop()
    a = machine.pop()
    machine.push(_bool(not a.same_object_as(b)))


def _print_pop(machine: FithMachine) -> None:
    machine.output.append(machine.pop())


def _logical(fn):
    def handler(machine: FithMachine) -> None:
        b = machine.pop()
        a = machine.pop()
        machine.push(_bool(fn(_is_true(a), _is_true(b))))
    return handler


def _logical_not(machine: FithMachine) -> None:
    machine.push(_bool(not _is_true(machine.pop())))


def _new_instance(machine: FithMachine) -> None:
    atom = machine.pop()
    if atom.tag is not Tag.ATOM or atom.value not in machine.registry:
        raise FithError(f"new on non-class {atom!r}")
    machine.push(machine.allocate(machine.registry.by_name(atom.value)))


def _new_array(machine: FithMachine) -> None:
    size = machine.pop_int()
    if size < 0:
        raise FithError("array size must be non-negative")
    machine.push(machine.allocate(machine.array_class, size))


def _array_at(machine: FithMachine) -> None:
    index = machine.pop_int()
    pointer = machine.pop()
    obj = machine.object_of(pointer)
    if not 0 <= index < len(obj.fields):
        raise FithError(f"index {index} out of bounds")
    machine.push(obj.fields[index])


def _array_put(machine: FithMachine) -> None:
    value = machine.pop()
    index = machine.pop_int()
    pointer = machine.pop()
    obj = machine.object_of(pointer)
    if not 0 <= index < len(obj.fields):
        raise FithError(f"index {index} out of bounds")
    obj.fields[index] = value


def _array_size(machine: FithMachine) -> None:
    pointer = machine.pop()
    machine.push(Word.small_integer(len(machine.object_of(pointer).fields)))


def _cell_fetch(machine: FithMachine) -> None:
    pointer = machine.pop()
    obj = machine.object_of(pointer)
    if not obj.fields:
        raise FithError("@ on empty object")
    machine.push(obj.fields[0])


def _cell_store(machine: FithMachine) -> None:
    # Forth convention: ( value addr -- ), address on top.  Dispatch is
    # still on the top of stack, so ! is installed on Object (any value
    # class may sit beneath the pointer).
    pointer = machine.pop()
    value = machine.pop()
    obj = machine.object_of(pointer)
    if not obj.fields:
        raise FithError("! on empty object")
    obj.fields[0] = value
