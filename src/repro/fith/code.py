"""Instruction set of the Fith Machine (paper section 5).

The Fith Machine "was a stack machine and had an instruction set very
different from the three address instruction set of the COM; however
the instruction translation mechanisms of the two machines are
identical".  We model it with a compact stack ISA:

* pure stack manipulation and branches are *machine operations*
  (``dispatched=False`` in traces);
* every other word is an abstract ``SEND`` whose meaning is resolved
  from the class of the object on top of the stack -- Forth syntax,
  Smalltalk semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory.tags import Word


class FithOp(enum.Enum):
    """Stack-machine operations."""

    PUSH = "push"              # push a literal word
    DUP = "dup"
    DROP = "drop"
    SWAP = "swap"
    OVER = "over"
    ROT = "rot"
    BRANCH = "branch"          # unconditional relative branch
    BRANCH_IF_FALSE = "0branch"  # pop; branch when false
    DO = "do"                  # pop start, limit; push loop frame
    LOOP = "loop"              # bump index; branch back while index < limit
    LOOP_I = "i"               # push innermost loop index
    LOOP_J = "j"               # push next-outer loop index
    RETURN = "return"          # return from a colon definition
    EXIT = "exit"              # early return
    SEND = "send"              # abstract instruction: dispatch on TOS class
    HALT = "halt"              # end of the main word

    @property
    def is_dispatched(self) -> bool:
        """Whether the op goes through instruction translation."""
        return self is FithOp.SEND


#: Spellings used when interning machine ops into an opcode table so
#: that every traced instruction has a well-defined opcode number.
MACHINE_OP_SELECTORS = {
    FithOp.PUSH: "(push)",
    FithOp.DUP: "(dup)",
    FithOp.DROP: "(drop)",
    FithOp.SWAP: "(swap)",
    FithOp.OVER: "(over)",
    FithOp.ROT: "(rot)",
    FithOp.BRANCH: "(branch)",
    FithOp.BRANCH_IF_FALSE: "(0branch)",
    FithOp.DO: "(do)",
    FithOp.LOOP: "(loop)",
    FithOp.LOOP_I: "(i)",
    FithOp.LOOP_J: "(j)",
    FithOp.RETURN: "(return)",
    FithOp.EXIT: "(exit)",
    FithOp.HALT: "(halt)",
}


@dataclass
class FithInstruction:
    """One stack-machine instruction.

    ``literal`` is set for PUSH; ``displacement`` for branches and
    LOOP; ``selector`` for SEND.
    """

    op: FithOp
    literal: Optional[Word] = None
    displacement: int = 0
    selector: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover
        if self.op is FithOp.PUSH:
            return f"PUSH {self.literal!r}"
        if self.op is FithOp.SEND:
            return f"SEND {self.selector}"
        if self.op in (FithOp.BRANCH, FithOp.BRANCH_IF_FALSE, FithOp.LOOP):
            return f"{self.op.name} {self.displacement:+d}"
        return self.op.name


@dataclass
class CompiledWord:
    """A compiled Fith word: a method on some class."""

    name: str
    class_name: str
    base_address: int
    instructions: List[FithInstruction]
    #: Predecoded plan tuples, filled lazily by the interpreter
    #: (``FithMachine._plan_of``); words are immutable once compiled.
    plan: Optional[list] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instructions)
