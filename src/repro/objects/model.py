"""Classes, method dictionaries and method lookup.

The COM executes *abstract instructions*: an opcode is a message name
whose meaning is resolved against the class of its operands.  On an
ITLB miss "an instruction descriptor must be pulled in from the
appropriate message dictionary, via the standard technique of method
lookup" (section 2.1) -- i.e. the receiver's class hierarchy is walked,
hashing the selector into each class's message dictionary in turn.

The dictionaries here are real open-addressing hash tables with probe
counting so the cost of a full lookup (the thing the ITLB removes from
the critical path) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import DoesNotUnderstandTrap, ReproError
from repro.memory.tags import NUM_CLASS_TAGS, Tag


@dataclass(frozen=True)
class PrimitiveMethod:
    """A method realised directly by a function unit.

    ``unit`` names the hardware function unit (see
    :mod:`repro.core.primitives`); the ITLB entry for this method has
    its primitive bit set and its method field selects the unit.
    """

    selector: str
    unit: str

    @property
    def is_primitive(self) -> bool:
        return True


@dataclass(frozen=True)
class DefinedMethod:
    """A method realised by code: the ITLB method field holds its address.

    ``code`` is the compiled method object (a CompiledMethod from the
    compiler, or any object exposing ``entry_address``); ``argument_count``
    is the number of operands the caller must copy into the new context.
    """

    selector: str
    code: object
    argument_count: int = 0

    @property
    def is_primitive(self) -> bool:
        return False


Method = object  # PrimitiveMethod | DefinedMethod (py39-friendly alias)


class MethodDictionary:
    """An open-addressing hash table from selector to method.

    Linear probing with power-of-two capacity, growing at 3/4 load.
    ``probes`` accumulates the number of slots inspected across all
    lookups -- the figure the ITLB exists to amortise away.
    """

    _TOMBSTONE = object()

    def __init__(self, capacity: int = 8) -> None:
        capacity = max(4, capacity)
        if capacity & (capacity - 1):
            capacity = 1 << capacity.bit_length()
        self._slots: List[Optional[Tuple[str, Method]]] = [None] * capacity
        self._count = 0
        self.probes = 0
        self.lookups = 0

    @staticmethod
    def _hash(selector: str) -> int:
        h = 0xCBF29CE484222325
        for ch in selector.encode("utf-8"):
            h ^= ch
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    def _probe_sequence(self, selector: str) -> Iterator[int]:
        mask = len(self._slots) - 1
        index = self._hash(selector) & mask
        for _ in range(len(self._slots)):
            yield index
            index = (index + 1) & mask

    def install(self, selector: str, method: Method) -> None:
        """Add or replace the binding for ``selector``."""
        if (self._count + 1) * 4 >= len(self._slots) * 3:
            self._grow()
        first_tombstone = None
        for index in self._probe_sequence(selector):
            slot = self._slots[index]
            if slot is None:
                target = first_tombstone if first_tombstone is not None else index
                self._slots[target] = (selector, method)
                self._count += 1
                return
            if slot is self._TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = index
                continue
            if slot[0] == selector:
                self._slots[index] = (selector, method)
                return
        raise ReproError("method dictionary probe sequence exhausted")

    def remove(self, selector: str) -> bool:
        """Unbind a selector; returns whether it was present."""
        for index in self._probe_sequence(selector):
            slot = self._slots[index]
            if slot is None:
                return False
            if slot is self._TOMBSTONE:
                continue
            if slot[0] == selector:
                self._slots[index] = self._TOMBSTONE
                self._count -= 1
                return True
        return False

    def lookup(self, selector: str) -> Optional[Method]:
        """Find a method, counting hash probes."""
        self.lookups += 1
        for index in self._probe_sequence(selector):
            self.probes += 1
            slot = self._slots[index]
            if slot is None:
                return None
            if slot is self._TOMBSTONE:
                continue
            if slot[0] == selector:
                return slot[1]
        return None

    def _grow(self) -> None:
        old = [slot for slot in self._slots
               if slot is not None and slot is not self._TOMBSTONE]
        self._slots = [None] * (len(self._slots) * 2)
        self._count = 0
        for selector, method in old:
            self.install(selector, method)

    def selectors(self) -> List[str]:
        return [slot[0] for slot in self._slots
                if slot is not None and slot is not self._TOMBSTONE]

    def __len__(self) -> int:
        return self._count

    def __contains__(self, selector: str) -> bool:
        for index in self._probe_sequence(selector):
            slot = self._slots[index]
            if slot is None:
                return False
            if slot is self._TOMBSTONE:
                continue
            if slot[0] == selector:
                return True
        return False


class ObjectClass:
    """A class: a 16-bit tag, a superclass link and a message dictionary."""

    def __init__(
        self,
        class_tag: int,
        name: str,
        superclass: Optional["ObjectClass"] = None,
        instance_size: int = 0,
    ) -> None:
        if not 0 <= class_tag < NUM_CLASS_TAGS:
            raise ReproError(f"class tag {class_tag} out of 16-bit range")
        self.class_tag = class_tag
        self.name = name
        self.superclass = superclass
        self.instance_size = instance_size
        self.methods = MethodDictionary()

    def install(self, selector: str, method: Method) -> None:
        self.methods.install(selector, method)

    def define_primitive(self, selector: str, unit: str) -> PrimitiveMethod:
        method = PrimitiveMethod(selector, unit)
        self.install(selector, method)
        return method

    def define_method(self, selector: str, code: object,
                      argument_count: int = 0) -> DefinedMethod:
        method = DefinedMethod(selector, code, argument_count)
        self.install(selector, method)
        return method

    def ancestry(self) -> Iterator["ObjectClass"]:
        """This class and its superclasses, most specific first."""
        cls: Optional[ObjectClass] = self
        while cls is not None:
            yield cls
            cls = cls.superclass

    def is_kind_of(self, other: "ObjectClass") -> bool:
        return any(cls is other for cls in self.ancestry())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<class {self.name} tag={self.class_tag}>"


@dataclass
class LookupResult:
    """A successful full method lookup."""

    method: Method
    defining_class: ObjectClass
    dictionaries_searched: int
    probes: int


class ClassRegistry:
    """Assigns class tags and performs the full (slow-path) method lookup.

    Tags 0..5 are reserved for the primitive tags so that a primitive
    word's 16-bit class tag (the 4-bit tag zero-extended, section 3.2)
    is itself a valid class tag.
    """

    FIRST_USER_TAG = 16

    def __init__(self) -> None:
        self._by_tag: Dict[int, ObjectClass] = {}
        self._by_name: Dict[str, ObjectClass] = {}
        self._next_tag = self.FIRST_USER_TAG
        self.full_lookups = 0
        self.failed_lookups = 0
        self._install_primitive_classes()

    def _install_primitive_classes(self) -> None:
        names = {
            Tag.UNINITIALIZED: "Uninitialized",
            Tag.SMALL_INTEGER: "SmallInteger",
            Tag.FLOAT: "Float",
            Tag.ATOM: "Atom",
            Tag.INSTRUCTION: "Instruction",
            Tag.OBJECT_POINTER: "ObjectPointer",
        }
        for tag, name in names.items():
            cls = ObjectClass(int(tag), name)
            self._by_tag[int(tag)] = cls
            self._by_name[name] = cls

    # -- registration -----------------------------------------------------

    def define_class(
        self,
        name: str,
        superclass: Optional[ObjectClass] = None,
        instance_size: int = 0,
        class_tag: Optional[int] = None,
    ) -> ObjectClass:
        """Create and register a class, assigning the next free tag."""
        if name in self._by_name:
            raise ReproError(f"class {name!r} already defined")
        if class_tag is None:
            class_tag = self._next_tag
            self._next_tag += 1
        elif class_tag in self._by_tag:
            raise ReproError(f"class tag {class_tag} already in use")
        else:
            self._next_tag = max(self._next_tag, class_tag + 1)
        cls = ObjectClass(class_tag, name, superclass, instance_size)
        self._by_tag[class_tag] = cls
        self._by_name[name] = cls
        return cls

    def by_tag(self, class_tag: int) -> ObjectClass:
        try:
            return self._by_tag[class_tag]
        except KeyError:
            raise ReproError(f"no class with tag {class_tag}") from None

    def by_name(self, name: str) -> ObjectClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise ReproError(f"no class named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def classes(self) -> Iterator[ObjectClass]:
        return iter(self._by_tag.values())

    # -- the slow path the ITLB caches --------------------------------------

    def lookup(self, selector: str, receiver_class: ObjectClass) -> LookupResult:
        """Full method lookup: walk the ancestry hashing into each dictionary.

        Raises :class:`DoesNotUnderstandTrap` when no class in the
        ancestry implements the selector.
        """
        self.full_lookups += 1
        searched = 0
        probes = 0
        for cls in receiver_class.ancestry():
            searched += 1
            before = cls.methods.probes
            method = cls.methods.lookup(selector)
            probes += cls.methods.probes - before
            if method is not None:
                return LookupResult(method, cls, searched, probes)
        self.failed_lookups += 1
        raise DoesNotUnderstandTrap(
            f"{receiver_class.name} does not understand {selector!r}",
            selector=selector,
            receiver_class=receiver_class,
        )

    def lookup_by_tag(self, selector: str, class_tag: int) -> LookupResult:
        """Lookup keyed by a 16-bit class tag (the ITLB miss path)."""
        return self.lookup(selector, self.by_tag(class_tag))
