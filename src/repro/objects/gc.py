"""Garbage collection and context recycling.

The paper's storage-management story (section 2.3):

* contexts are fixed-size and recycled through a free list;
* the ~85% of contexts that are LIFO are explicitly freed on procedure
  exit, never reaching the collector;
* the remaining non-LIFO contexts, and ordinary dead objects, are
  reclaimed by a garbage collector running in absolute space.

This module provides a mark-sweep collector over an
:class:`~repro.objects.heap.ObjectHeap` plus a
:class:`ContextRecycler` that tracks the LIFO/non-LIFO split so the
TAB-CTX experiment can report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import SegmentFault, BoundsTrap
from repro.memory.fpa import FPAddress
from repro.memory.tags import Tag, Word
from repro.objects.heap import ObjectHeap


@dataclass
class GCStats:
    """Counters for one or more collection cycles."""

    collections: int = 0
    objects_marked: int = 0
    objects_swept: int = 0
    contexts_swept: int = 0
    words_scanned: int = 0


class MarkSweepCollector:
    """A stop-the-world mark-sweep collector over one heap.

    Roots are packed virtual addresses (the machine registers CP, NCP
    and any client-registered globals).  Marking follows object-pointer
    words; sweeping frees every unmarked live object.
    """

    def __init__(self, heap: ObjectHeap) -> None:
        self.heap = heap
        self.stats = GCStats()
        self._extra_roots: Set[int] = set()

    def add_root(self, address: FPAddress) -> None:
        """Pin an object (and its transitive closure) as always-live."""
        self._extra_roots.add(address.packed)

    def remove_root(self, address: FPAddress) -> None:
        self._extra_roots.discard(address.packed)

    def _object_size(self, address: FPAddress) -> int:
        table = self.heap.mmu.team_table(self.heap.team)
        return table.descriptor_for(address).length

    def mark(self, roots: Iterable[int]) -> Set[int]:
        """Mark phase: returns the set of reachable packed addresses."""
        fmt = self.heap.mmu.fmt
        live = set(self.heap.live_objects())
        marked: Set[int] = set()
        worklist: List[int] = [r for r in roots if r in live]
        worklist.extend(r for r in self._extra_roots if r in live)
        while worklist:
            packed = worklist.pop()
            if packed in marked:
                continue
            marked.add(packed)
            self.stats.objects_marked += 1
            address = fmt.from_packed(packed)
            try:
                size = self._object_size(address)
            except SegmentFault:
                continue
            for index in range(size):
                self.stats.words_scanned += 1
                try:
                    word = self.heap.load(address, index)
                except (SegmentFault, BoundsTrap):
                    break
                if word.tag is Tag.OBJECT_POINTER and word.value in live:
                    if word.value not in marked:
                        worklist.append(word.value)
        return marked

    def collect(self, roots: Iterable[int] = ()) -> int:
        """One full collection; returns the number of objects freed."""
        self.stats.collections += 1
        marked = self.mark(roots)
        victims = [packed for packed in self.heap.live_objects()
                   if packed not in marked]
        fmt = self.heap.mmu.fmt
        freed = 0
        for packed in victims:
            address = fmt.from_packed(packed)
            if self.heap.kind_of(address) == ObjectHeap.CONTEXT_KIND:
                self.stats.contexts_swept += 1
            self.heap.free(address)
            self.stats.objects_swept += 1
            freed += 1
        return freed


@dataclass
class ContextRecycleStats:
    """The LIFO/non-LIFO context split of section 2.3."""

    allocated: int = 0
    freed_lifo: int = 0
    returned_non_lifo: int = 0   # captured contexts left for the GC
    freed_by_gc: int = 0

    @property
    def total_returns(self) -> int:
        return self.freed_lifo + self.returned_non_lifo

    @property
    def total_freed(self) -> int:
        return self.freed_lifo + self.freed_by_gc

    @property
    def lifo_fraction(self) -> float:
        """Fraction of returned contexts recycled on the LIFO fast path.

        The paper cites 85% of contexts being LIFO.
        """
        if self.total_returns == 0:
            return 0.0
        return self.freed_lifo / self.total_returns


class ContextRecycler:
    """Tracks which contexts die LIFO and which must wait for the GC.

    A context is LIFO if, at the moment its method returns, no other
    live reference to it exists (no block closure captured it and it was
    never stored into the heap).  The machine reports returns and
    capture events here; the recycler answers "free now or leave for
    GC?" and keeps the statistics.
    """

    def __init__(self) -> None:
        self.stats = ContextRecycleStats()
        self._captured: Set[int] = set()

    def note_allocation(self, packed_address: int) -> None:
        self.stats.allocated += 1

    def note_capture(self, packed_address: int) -> None:
        """A reference to the context escaped (block, heap store, debugger)."""
        self._captured.add(packed_address)

    def on_return(self, packed_address: int) -> bool:
        """Called at method return; True means the context may be freed now."""
        if packed_address in self._captured:
            self.stats.returned_non_lifo += 1
            return False
        self.stats.freed_lifo += 1
        return True

    def on_gc_free(self, packed_address: int) -> None:
        """The collector reclaimed a captured (non-LIFO) context."""
        self._captured.discard(packed_address)
        self.stats.freed_by_gc += 1

    def is_captured(self, packed_address: int) -> bool:
        return packed_address in self._captured
