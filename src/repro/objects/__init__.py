"""The object model: classes, method dictionaries, heap and GC."""

from repro.objects.gc import ContextRecycler, GCStats, MarkSweepCollector
from repro.objects.heap import AllocationStats, ObjectHeap
from repro.objects.model import (
    ClassRegistry,
    DefinedMethod,
    LookupResult,
    MethodDictionary,
    ObjectClass,
    PrimitiveMethod,
)

__all__ = [
    "AllocationStats", "ClassRegistry", "ContextRecycler",
    "DefinedMethod", "GCStats", "LookupResult", "MarkSweepCollector",
    "MethodDictionary", "ObjectClass", "ObjectHeap", "PrimitiveMethod",
]
