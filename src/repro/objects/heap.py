"""The object heap: instance allocation over the MMU, with statistics.

Sections 2.3 and 5 of the paper lean on measured allocation behaviour
("85% of all object allocations and deallocations involve contexts");
this heap therefore buckets every allocation and deallocation by kind
so the TAB-CTX experiment can reproduce those ratios on our workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.memory.fpa import FPAddress
from repro.memory.mmu import MMU
from repro.memory.tags import Word
from repro.objects.model import ObjectClass


@dataclass
class AllocationStats:
    """Allocation/deallocation counters bucketed by object kind."""

    allocations: Dict[str, int] = field(default_factory=dict)
    deallocations: Dict[str, int] = field(default_factory=dict)
    words_allocated: int = 0

    def note_allocation(self, kind: str, size: int) -> None:
        self.allocations[kind] = self.allocations.get(kind, 0) + 1
        self.words_allocated += size

    def note_deallocation(self, kind: str) -> None:
        self.deallocations[kind] = self.deallocations.get(kind, 0) + 1

    @property
    def total_allocations(self) -> int:
        return sum(self.allocations.values())

    @property
    def total_deallocations(self) -> int:
        return sum(self.deallocations.values())

    def allocation_fraction(self, kind: str) -> float:
        """Fraction of all allocations *and* deallocations of ``kind``.

        Matches the paper's phrasing "85% of all object allocations and
        deallocations involve contexts".
        """
        total = self.total_allocations + self.total_deallocations
        if total == 0:
            return 0.0
        hits = self.allocations.get(kind, 0) + self.deallocations.get(kind, 0)
        return hits / total


class ObjectHeap:
    """Allocates class instances in a team's virtual space.

    The instance's class is recorded in its segment descriptor (the
    MMU's ``class_of`` provides it), so no header word is burned inside
    the object -- matching the COM where the descriptor carries the
    object class field (figure 3).
    """

    #: Allocation-kind label used for contexts throughout the package.
    CONTEXT_KIND = "context"

    def __init__(self, mmu: MMU, team: int = 0) -> None:
        self.mmu = mmu
        self.team = team
        mmu.create_team(team)
        self.stats = AllocationStats()
        self._kinds: Dict[int, str] = {}  # packed address -> kind

    # -- allocation --------------------------------------------------------

    def allocate(
        self, cls: ObjectClass, size: Optional[int] = None, kind: str = "object"
    ) -> FPAddress:
        """Allocate an instance of ``cls`` with ``size`` words of fields."""
        if size is None:
            size = cls.instance_size
        size = max(size, 1)
        address = self.mmu.allocate_object(self.team, size, cls.class_tag)
        self.stats.note_allocation(kind, size)
        self._kinds[address.packed] = kind
        return address

    def allocate_context(self, cls: ObjectClass, size: int) -> FPAddress:
        """Allocate a context object (bucketed as such for TAB-CTX)."""
        return self.allocate(cls, size, kind=self.CONTEXT_KIND)

    def free(self, address: FPAddress) -> None:
        """Free an instance, noting its kind."""
        kind = self._kinds.pop(address.packed, "object")
        self.stats.note_deallocation(kind)
        self.mmu.free_object(self.team, address)

    def kind_of(self, address: FPAddress) -> str:
        return self._kinds.get(address.packed, "object")

    # -- field access -------------------------------------------------------

    def load(self, address: FPAddress, index: int) -> Word:
        """Read field ``index`` of the object at ``address`` (``at:``)."""
        return self.mmu.read(self.team, address.base().step(index))

    def store(self, address: FPAddress, index: int, word: Word) -> None:
        """Write field ``index`` of the object (``at:put:``)."""
        self.mmu.write(self.team, address.base().step(index), word)

    def fill(self, address: FPAddress, words: List[Word]) -> None:
        for index, word in enumerate(words):
            self.store(address, index, word)

    def class_tag_of(self, address: FPAddress) -> int:
        return self.mmu.class_of(self.team, address)

    def pointer_to(self, address: FPAddress) -> Word:
        """A tagged pointer word naming the object (a capability)."""
        return Word.pointer(address.packed, self.class_tag_of(address))

    def live_objects(self) -> Iterator[int]:
        """Packed addresses of objects still considered live."""
        return iter(self._kinds)

    def __len__(self) -> int:
        return len(self._kinds)
