"""Absolute space: the global object store (paper section 3.1).

Absolute space is the single global name space in which every object
lives; object management (allocation, garbage collection) happens here,
independent of both the per-team virtual names above it and the
physical devices below it.

The store is word-addressed and sparse.  Allocation follows the paper's
alignment rule -- every segment is aligned on an absolute address that
is a multiple of its (power-of-two) size, so virtual-to-absolute
translation needs no adder -- via a binary buddy allocator, which
produces exactly such placements and supports recycling freed segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FreeListExhausted, InvalidAddress
from repro.memory.tags import Word


def _ceil_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass
class Allocation:
    """One live allocation in absolute space."""

    base: int
    size: int           # requested size in words
    block_size: int     # power-of-two block actually reserved


class BuddyAllocator:
    """Binary buddy allocator over a word-addressed arena.

    Guarantees every block of size ``2**k`` is aligned on a multiple of
    ``2**k`` -- the paper's segment alignment invariant.
    """

    def __init__(self, arena_words: int) -> None:
        if arena_words <= 0 or arena_words & (arena_words - 1):
            raise InvalidAddress("arena size must be a positive power of two")
        self.arena_words = arena_words
        self._max_order = arena_words.bit_length() - 1
        self._free: List[List[int]] = [[] for _ in range(self._max_order + 1)]
        self._free[self._max_order].append(0)
        self._allocated: Dict[int, int] = {}  # base -> order

    def _order_for(self, size: int) -> int:
        return max(0, _ceil_pow2(max(size, 1)).bit_length() - 1)

    def allocate(self, size: int) -> int:
        """Reserve a block covering ``size`` words; returns its base."""
        order = self._order_for(size)
        if order > self._max_order:
            raise FreeListExhausted(
                f"request for {size} words exceeds arena of {self.arena_words}"
            )
        k = order
        while k <= self._max_order and not self._free[k]:
            k += 1
        if k > self._max_order:
            raise FreeListExhausted(
                f"absolute space exhausted allocating {size} words"
            )
        base = self._free[k].pop()
        while k > order:
            k -= 1
            self._free[k].append(base + (1 << k))
        self._allocated[base] = order
        return base

    def free(self, base: int) -> None:
        """Release a block, coalescing with its buddy where possible."""
        try:
            order = self._allocated.pop(base)
        except KeyError:
            raise InvalidAddress(f"free of unallocated base {base:#x}") from None
        while order < self._max_order:
            buddy = base ^ (1 << order)
            if buddy in self._free[order]:
                self._free[order].remove(buddy)
                base = min(base, buddy)
                order += 1
            else:
                break
        self._free[order].append(base)

    def block_size_at(self, base: int) -> Optional[int]:
        """Size of the live block at ``base``, or None."""
        order = self._allocated.get(base)
        return None if order is None else (1 << order)

    @property
    def free_words(self) -> int:
        return sum(len(blocks) << k for k, blocks in enumerate(self._free))

    @property
    def allocated_words(self) -> int:
        return sum(1 << order for order in self._allocated.values())


class AbsoluteMemory:
    """The word-addressed global object store.

    Reads of never-written words return the uninitialized word, matching
    the context cache's block-clear semantics for heap storage faulted
    in fresh.
    """

    def __init__(self, arena_words: int = 1 << 24) -> None:
        self.allocator = BuddyAllocator(arena_words)
        self._words: Dict[int, Word] = {}
        self._allocations: Dict[int, Allocation] = {}
        self.reads = 0
        self.writes = 0
        self._write_watcher = None
        self._free_watcher = None

    # -- watchers -----------------------------------------------------------

    def watch_writes(self, callback) -> None:
        """Invoke ``callback(address)`` after every word write.

        Used by the machine's predecode layer to shoot down decoded
        instruction plans when code memory is overwritten (the software
        analogue of hardware icache coherence on stores).
        """
        self._write_watcher = callback

    def watch_frees(self, callback) -> None:
        """Invoke ``callback(base, block_size)`` when a block is freed."""
        self._free_watcher = callback

    # -- allocation ---------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Allocate ``size`` words, aligned per the buddy invariant."""
        base = self.allocator.allocate(size)
        allocation = Allocation(base, size, _ceil_pow2(max(size, 1)))
        self._allocations[base] = allocation
        return allocation

    def free(self, base: int) -> None:
        """Release an allocation and scrub its words."""
        allocation = self._allocations.pop(base, None)
        if allocation is None:
            raise InvalidAddress(f"free of unknown allocation {base:#x}")
        for addr in range(base, base + allocation.block_size):
            self._words.pop(addr, None)
        self.allocator.free(base)
        if self._free_watcher is not None:
            self._free_watcher(base, allocation.block_size)

    def grow(self, base: int, new_size: int) -> Allocation:
        """Grow an allocation, copying words when the block must move.

        Returns the (possibly relocated) allocation.  The old block is
        freed when a move occurs.
        """
        allocation = self._allocations.get(base)
        if allocation is None:
            raise InvalidAddress(f"grow of unknown allocation {base:#x}")
        if new_size <= allocation.block_size:
            allocation.size = max(allocation.size, new_size)
            return allocation
        new_allocation = self.allocate(new_size)
        for i in range(allocation.size):
            word = self._words.get(base + i)
            if word is not None:
                self._words[new_allocation.base + i] = word
        self.free(base)
        return new_allocation

    def allocation_at(self, base: int) -> Optional[Allocation]:
        return self._allocations.get(base)

    # -- word access ----------------------------------------------------------

    def read(self, address: int) -> Word:
        """Read one word; unwritten words read as uninitialized."""
        self.reads += 1
        return self._words.get(address, Word.uninitialized())

    def write(self, address: int, word: Word) -> None:
        """Write one word."""
        if not isinstance(word, Word):
            raise InvalidAddress(f"absolute memory stores Words, got {word!r}")
        self.writes += 1
        self._words[address] = word
        if self._write_watcher is not None:
            self._write_watcher(address)

    def read_block(self, base: int, count: int) -> List[Word]:
        """Read ``count`` consecutive words (one stats bump per word)."""
        return [self.read(base + i) for i in range(count)]

    def write_block(self, base: int, words: List[Word]) -> None:
        for i, word in enumerate(words):
            self.write(base + i, word)

    def clear_block(self, base: int, count: int) -> None:
        """Reset a block to uninitialized (context-cache block clear)."""
        for addr in range(base, base + count):
            self._words.pop(addr, None)

    # -- inspection -------------------------------------------------------------

    @property
    def resident_words(self) -> int:
        """Number of words ever written and still live."""
        return len(self._words)

    def allocations(self) -> Iterator[Allocation]:
        return iter(self._allocations.values())
