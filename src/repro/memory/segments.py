"""Segment descriptors and per-team segment tables (paper section 3.1).

Each team space owns a segment descriptor table indexed by the
concatenation of the virtual address's exponent and segment fields.
Each entry holds three fields: *base* (absolute address), *length*
(words) and *object class* (16-bit class tag).  We add a *forward*
field to implement the aliasing trap of section 2.2: when an object is
grown, the stale descriptor keeps its old bounds and names the new
pointer that replaces it.

Segment table entries are kept only for segments actually allocated
(sparse dict), exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import BoundsTrap, InvalidAddress, SegmentFault
from repro.memory.fpa import AddressFormat, FPAddress

#: A segment name: (exponent, segment field).
SegmentName = Tuple[int, int]


@dataclass
class SegmentDescriptor:
    """One entry of a segment descriptor table.

    ``base`` is the absolute address of the segment's first word;
    ``length`` its current size in words (<= the span of the naming
    pointer); ``class_tag`` the class of the object stored there.
    ``forward`` is None for live descriptors, or the replacement
    :class:`FPAddress` once the object has been grown out of this
    name's range.
    """

    base: int
    length: int
    class_tag: int
    forward: Optional[FPAddress] = None
    capability_read: bool = True
    capability_write: bool = True

    def contains(self, offset: int) -> bool:
        """Whether ``offset`` is inside the segment's current bounds."""
        return 0 <= offset < self.length


class SegmentTable:
    """The segment descriptor table of one team space.

    Allocation of absolute addresses is delegated to the caller (the
    MMU / absolute memory); the table only resolves names.
    """

    def __init__(self, fmt: AddressFormat, team: int = 0) -> None:
        self.fmt = fmt
        self.team = team
        self._entries: Dict[SegmentName, SegmentDescriptor] = {}
        #: Bump cursor per exponent for fresh segment-field allocation.
        self._next_field: Dict[int, int] = {}

    # -- naming ------------------------------------------------------------

    def allocate_name(self, exponent: int) -> SegmentName:
        """Reserve a fresh, never-used segment name in size class ``exponent``."""
        limit = self.fmt.segment_names_for_exponent(exponent)
        cursor = self._next_field.get(exponent, 0)
        while cursor < limit and (exponent, cursor) in self._entries:
            cursor += 1
        if cursor >= limit:
            raise InvalidAddress(
                f"segment name space exhausted for exponent {exponent}"
            )
        self._next_field[exponent] = cursor + 1
        return (exponent, cursor)

    def install(self, name: SegmentName, descriptor: SegmentDescriptor) -> None:
        """Bind a name to a descriptor (aliases may share descriptors)."""
        exponent, fieldval = name
        if fieldval >= self.fmt.segment_names_for_exponent(exponent):
            raise InvalidAddress(f"segment name {name} out of range")
        self._entries[name] = descriptor

    def release(self, name: SegmentName) -> SegmentDescriptor:
        """Remove a name binding (GC of a dead object)."""
        try:
            return self._entries.pop(name)
        except KeyError:
            raise SegmentFault(f"release of unmapped segment {name}") from None

    def descriptor(self, name: SegmentName) -> SegmentDescriptor:
        """Resolve a name; raises :class:`SegmentFault` when unmapped."""
        try:
            return self._entries[name]
        except KeyError:
            raise SegmentFault(
                f"team {self.team}: no descriptor for segment {name}"
            ) from None

    def descriptor_for(self, address: FPAddress) -> SegmentDescriptor:
        """Resolve the descriptor named by a virtual address."""
        return self.descriptor(address.segment_name)

    def address_for(self, name: SegmentName, offset: int = 0) -> FPAddress:
        """Build the virtual address for a (name, offset) pair."""
        exponent, fieldval = name
        return self.fmt.make(exponent, fieldval, offset)

    # -- translation (virtual -> absolute) ----------------------------------

    def translate(self, address: FPAddress, *, write: bool = False) -> int:
        """Translate a virtual address to an absolute address.

        Performs the bounds check of figure 3.  On an out-of-bounds
        access the raised :class:`BoundsTrap` carries the descriptor so
        the alias handler can decide whether a forward exists.
        """
        descriptor = self.descriptor_for(address)
        offset = address.offset
        if not descriptor.contains(offset):
            raise BoundsTrap(
                f"offset {offset} outside segment {address.segment_name} "
                f"(length {descriptor.length})",
                segment=descriptor,
                offset=offset,
                length=descriptor.length,
            )
        # Segments are aligned on multiples of their size, so base+offset
        # never carries into the segment-number bits (no adder needed).
        return descriptor.base + offset

    # -- inspection ---------------------------------------------------------

    def names(self) -> Iterator[SegmentName]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: SegmentName) -> bool:
        return name in self._entries

    def live_descriptors(self) -> Iterator[Tuple[SegmentName, SegmentDescriptor]]:
        """All (name, descriptor) pairs with no forward set."""
        for name, desc in self._entries.items():
            if desc.forward is None:
                yield name, desc
