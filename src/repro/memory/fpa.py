"""Floating point virtual addresses (paper section 2.2).

An address is an ``m``-bit mantissa plus an ``e``-bit exponent, with
``e = ceil(log2(m))``.  The exponent encodes the size of the offset
field: the low ``E`` bits of the mantissa are the offset within the
segment and the remaining high ``m - E`` bits are the *segment field*.
The segment field **combined with the exponent** names the segment
descriptor, so segments of different sizes live in disjoint regions of
the descriptor name space.

The paper's worked example uses a 16-bit address: ``0x8345`` splits into
exponent ``0x8`` (4 bits) and mantissa ``0x345`` (12 bits); offset is
the low 8 bits ``0x45`` and the *segment name* is the exponent
concatenated with the 4-bit segment field: ``0x83``.  This module
reproduces exactly that encoding for any format width.

Aliasing: an object that grows beyond ``2**E`` words is given a new
address with a larger exponent; both old and new names map to the same
segment, and accesses through the old name beyond the old bounds raise
an :class:`~repro.errors.AliasTrap` whose handler forwards the pointer
(see :mod:`repro.memory.mmu`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Tuple

from repro.errors import InvalidAddress


def _ceil_log2(n: int) -> int:
    if n <= 0:
        raise InvalidAddress(f"cannot take log2 of {n}")
    return (n - 1).bit_length()


@dataclass(frozen=True)
class AddressFormat:
    """A floating point address format of a given total width.

    ``total_bits`` is split into an exponent field of
    ``e = ceil(log2(m))`` bits and a mantissa of ``m`` bits, the unique
    split with ``e + m == total_bits``.  The exponent occupies the high
    bits (the paper's 0x8345 example).
    """

    total_bits: int

    def __post_init__(self):
        if self.total_bits < 3:
            raise InvalidAddress("address formats need at least 3 bits")
        # Find m with m + ceil(log2(m)) == total_bits.  m is monotone in
        # total_bits so a downward scan from total_bits terminates fast.
        m = None
        for candidate in range(self.total_bits - 1, 0, -1):
            if candidate + _ceil_log2(candidate) == self.total_bits:
                m = candidate
                break
        if m is None:
            # No exact split (happens just below powers of two); take the
            # largest mantissa that fits and widen the exponent field.
            for candidate in range(self.total_bits - 1, 0, -1):
                if candidate + _ceil_log2(candidate) <= self.total_bits:
                    m = candidate
                    break
        if m is None:  # pragma: no cover - total_bits >= 3 always finds one
            raise InvalidAddress(f"no mantissa fits in {self.total_bits} bits")
        object.__setattr__(self, "_mantissa_bits", m)
        object.__setattr__(self, "_exponent_bits", self.total_bits - m)
        object.__setattr__(
            self, "_max_exponent",
            min(m, (1 << (self.total_bits - m)) - 1))

    @property
    def mantissa_bits(self) -> int:
        """Width ``m`` of the mantissa field."""
        return self._mantissa_bits

    @property
    def exponent_bits(self) -> int:
        """Width ``e`` of the exponent field."""
        return self._exponent_bits

    @property
    def max_exponent(self) -> int:
        """Largest legal exponent.

        At most the full mantissa becomes the offset (E = m), clipped
        to what the exponent field can actually express -- the clip
        only bites when m is an exact power of two, which the paper's
        16- and 36-bit formats avoid.  Precomputed: address arithmetic
        checks it on every construction.
        """
        return self._max_exponent

    @property
    def max_segment_words(self) -> int:
        """Size of the largest representable segment, in words."""
        return 1 << self.max_exponent

    def total_segment_names(self) -> int:
        """How many distinct segment names the format can express.

        For each exponent ``E`` there are ``2**(m - E)`` segment fields,
        so the total is ``sum_{E=0}^{max} 2**(m-E)`` -- equal to
        ``2**(m+1) - 1`` when every exponent up to ``m`` is expressible
        (true of the paper's 16- and 36-bit formats).
        """
        m = self.mantissa_bits
        return (1 << (m + 1)) - (1 << (m - self.max_exponent))

    # -- packing ---------------------------------------------------------

    def pack(self, exponent: int, mantissa: int) -> int:
        """Pack (exponent, mantissa) into a single integer address."""
        self._check_exponent(exponent)
        if not 0 <= mantissa < (1 << self.mantissa_bits):
            raise InvalidAddress(
                f"mantissa {mantissa:#x} out of {self.mantissa_bits}-bit range"
            )
        return (exponent << self.mantissa_bits) | mantissa

    def unpack(self, packed: int) -> Tuple[int, int]:
        """Split a packed address back into (exponent, mantissa)."""
        if not 0 <= packed < (1 << self.total_bits):
            raise InvalidAddress(
                f"address {packed:#x} out of {self.total_bits}-bit range"
            )
        exponent = packed >> self.mantissa_bits
        mantissa = packed & ((1 << self.mantissa_bits) - 1)
        self._check_exponent(exponent)
        return exponent, mantissa

    def _check_exponent(self, exponent: int) -> None:
        if not 0 <= exponent <= self._max_exponent:
            raise InvalidAddress(
                f"exponent {exponent} out of range [0, {self._max_exponent}]"
            )

    # -- address construction --------------------------------------------

    def make(self, exponent: int, segment_field: int, offset: int) -> "FPAddress":
        """Build an address from explicit fields, validating each."""
        self._check_exponent(exponent)
        seg_bits = self.mantissa_bits - exponent
        if not 0 <= segment_field < (1 << seg_bits):
            raise InvalidAddress(
                f"segment field {segment_field:#x} out of {seg_bits}-bit range"
            )
        if not 0 <= offset < (1 << exponent):
            raise InvalidAddress(
                f"offset {offset:#x} exceeds 2**{exponent} segment span"
            )
        mantissa = (segment_field << exponent) | offset
        return FPAddress(self, exponent, mantissa)

    def from_packed(self, packed: int) -> "FPAddress":
        """Decode a packed integer into an :class:`FPAddress`."""
        exponent, mantissa = self.unpack(packed)
        return _make_address(self, exponent, mantissa)

    def exponent_for_size(self, size_words: int) -> int:
        """Smallest exponent whose offset range covers ``size_words``."""
        if size_words < 0:
            raise InvalidAddress("segment sizes are non-negative")
        if size_words <= 1:
            return 0
        exponent = _ceil_log2(size_words)
        if exponent > self.max_exponent:
            raise InvalidAddress(
                f"no exponent covers {size_words} words "
                f"(max segment is {self.max_segment_words} words)"
            )
        return exponent

    def segment_names_for_exponent(self, exponent: int) -> int:
        """How many segments of size class ``exponent`` can be named."""
        self._check_exponent(exponent)
        return 1 << (self.mantissa_bits - exponent)

    def iter_exponents(self) -> Iterator[int]:
        """All legal exponents, smallest (1-word segments) first."""
        return iter(range(self.max_exponent + 1))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AddressFormat({self.total_bits} bits: "
            f"e={self.exponent_bits}, m={self.mantissa_bits})"
        )


@lru_cache(maxsize=None)
def address_format(total_bits: int) -> AddressFormat:
    """Interned constructor for address formats (they are tiny and shared)."""
    return AddressFormat(total_bits)


#: The paper's two running examples.
FORMAT_16 = address_format(16)   # e=4, m=12 -- the 0x8345 example
FORMAT_36 = address_format(36)   # e=5, m=31 -- the MULTICS comparison


@dataclass(frozen=True)
class FPAddress:
    """A decoded floating point virtual address.

    Immutable value object; arithmetic (offset stepping) returns new
    addresses.  The *segment name* is the (exponent, segment field)
    pair, matching the paper's "integer part of the real address when
    combined with the exponent names the segment descriptor".
    """

    fmt: AddressFormat
    exponent: int
    mantissa: int

    def __post_init__(self):
        self.fmt._check_exponent(self.exponent)
        if not 0 <= self.mantissa < (1 << self.fmt.mantissa_bits):
            raise InvalidAddress(f"mantissa {self.mantissa:#x} out of range")

    @property
    def offset(self) -> int:
        """Offset within the segment: the low ``exponent`` mantissa bits."""
        return self.mantissa & ((1 << self.exponent) - 1)

    @property
    def segment_field(self) -> int:
        """The integer part of the real address (high mantissa bits)."""
        return self.mantissa >> self.exponent

    @property
    def segment_name(self) -> Tuple[int, int]:
        """The (exponent, segment field) pair indexing the segment table."""
        return (self.exponent, self.segment_field)

    @property
    def packed_segment_name(self) -> int:
        """Segment name as one integer: exponent concatenated with field.

        Reproduces the paper's 0x83 for address 0x8345 in the 16-bit
        format.
        """
        return (self.exponent << (self.fmt.mantissa_bits - self.exponent)) | (
            self.segment_field
        )

    @property
    def span(self) -> int:
        """Number of words addressable through this pointer: ``2**E``."""
        return 1 << self.exponent

    @property
    def packed(self) -> int:
        """The packed integer form of the whole address.

        Fields were validated at construction, so this packs directly
        (``AddressFormat.pack`` re-validates; pointer materialisation
        is too hot for that).
        """
        return (self.exponent << self.fmt._mantissa_bits) | self.mantissa

    def with_offset(self, offset: int) -> "FPAddress":
        """Same segment, different offset; offset must be within span."""
        exponent = self.exponent
        if not 0 <= offset < (1 << exponent):
            raise InvalidAddress(
                f"offset {offset} outside span {self.span} of {self!r}"
            )
        mantissa = (self.mantissa >> exponent << exponent) | offset
        return _make_address(self.fmt, exponent, mantissa)

    def step(self, delta: int) -> "FPAddress":
        """Move the offset by ``delta`` words (may raise on overflow)."""
        return self.with_offset(self.offset + delta)

    def base(self) -> "FPAddress":
        """The address of the segment's first word."""
        return self.with_offset(0)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FPA({self.fmt.total_bits}b E={self.exponent} "
            f"seg={self.segment_field:#x} off={self.offset:#x})"
        )


def _make_address(fmt: AddressFormat, exponent: int,
                  mantissa: int) -> FPAddress:
    """Trusted FPAddress constructor for already-validated fields.

    Address arithmetic (IP stepping, pointer chasing) constructs tens
    of addresses per interpreted instruction; skipping the dataclass
    __init__/__post_init__ re-validation there is a measurable win.
    Only call with fields known to satisfy the format's invariants.
    """
    address = object.__new__(FPAddress)
    object.__setattr__(address, "fmt", fmt)
    object.__setattr__(address, "exponent", exponent)
    object.__setattr__(address, "mantissa", mantissa)
    return address


def multics_style_capacity(total_bits: int) -> Tuple[int, int]:
    """Fixed-field capacity for the MULTICS-style comparison (section 2.2).

    Returns (number of segments, max segment words) for a conventional
    scheme that splits ``total_bits`` into two equal fixed fields, as in
    the 36-bit MULTICS address (256K segments of <= 256K words).
    """
    half = total_bits // 2
    return (1 << half, 1 << (total_bits - half))


def floating_capacity(total_bits: int) -> Tuple[int, int]:
    """(total segment names, max segment words) for the floating format."""
    fmt = address_format(total_bits)
    return (fmt.total_segment_names(), fmt.max_segment_words)
