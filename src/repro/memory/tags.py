"""Tagged memory words.

Every word of COM memory carries a four-bit *primitive tag* identifying
its primitive type (paper section 3.2): uninitialized, small integer,
floating point number, atom, instruction and object pointer.

When a word is cached in the context cache a 16-bit *class tag* is
cached alongside it.  For primitive words the class tag is the four-bit
tag zero-extended; for object pointers it identifies the class of the
pointed-to object and feeds the ITLB key (abstract-instruction
dispatch).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import TagMismatch

#: Width of the primitive tag in bits.
PRIMITIVE_TAG_BITS = 4
#: Width of the class tag cached with each word in the context cache.
CLASS_TAG_BITS = 16
#: Number of distinct class tags (class ids live in [0, NUM_CLASS_TAGS)).
NUM_CLASS_TAGS = 1 << CLASS_TAG_BITS


class Tag(enum.IntEnum):
    """The four-bit primitive tags of COM memory words."""

    UNINITIALIZED = 0
    SMALL_INTEGER = 1
    FLOAT = 2
    ATOM = 3
    INSTRUCTION = 4
    OBJECT_POINTER = 5

    @property
    def is_primitive(self) -> bool:
        """True for tags whose class is fully determined by the tag itself."""
        return self is not Tag.OBJECT_POINTER

    def default_class_tag(self) -> int:
        """The 16-bit class tag for a primitive word: the tag zero-extended."""
        return int(self)


#: Range of the COM small integer (a 32-bit word minus the 4-bit tag
#: leaves 28 bits of payload; we model a signed 28-bit integer).
SMALL_INTEGER_BITS = 28
SMALL_INTEGER_MIN = -(1 << (SMALL_INTEGER_BITS - 1))
SMALL_INTEGER_MAX = (1 << (SMALL_INTEGER_BITS - 1)) - 1


def fits_small_integer(value: int) -> bool:
    """Whether ``value`` is representable as a COM small integer."""
    return SMALL_INTEGER_MIN <= value <= SMALL_INTEGER_MAX


@dataclass(frozen=True)
class Word:
    """One tagged word of COM memory.

    ``value`` is interpreted according to ``tag``:

    * ``SMALL_INTEGER`` -- a Python int in the 28-bit signed range,
    * ``FLOAT`` -- a Python float,
    * ``ATOM`` -- an interned symbol name (str),
    * ``INSTRUCTION`` -- a 32-bit encoded instruction (int),
    * ``OBJECT_POINTER`` -- a virtual address (int or FloatingPointAddress
      packed form) together with ``class_tag`` identifying the referent's
      class,
    * ``UNINITIALIZED`` -- value is ignored (kept as ``None``).
    """

    tag: Tag
    value: Any = None
    class_tag: int = -1

    def __post_init__(self):
        if self.class_tag == -1:
            if self.tag is Tag.OBJECT_POINTER:
                raise TagMismatch("object pointers must carry an explicit class tag")
            object.__setattr__(self, "class_tag", self.tag.default_class_tag())
        if not 0 <= self.class_tag < NUM_CLASS_TAGS:
            raise TagMismatch(f"class tag {self.class_tag} out of 16-bit range")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def uninitialized() -> "Word":
        """The word a freshly cleared context block contains."""
        return _UNINITIALIZED

    @staticmethod
    def small_integer(value: int) -> "Word":
        """A small integer word; the value must fit in 28 signed bits."""
        if not fits_small_integer(value):
            raise TagMismatch(f"{value} does not fit in a small integer")
        return Word(Tag.SMALL_INTEGER, int(value))

    @staticmethod
    def floating(value: float) -> "Word":
        """A floating point number word."""
        return Word(Tag.FLOAT, float(value))

    @staticmethod
    def atom(name: str) -> "Word":
        """An atom (interned symbol) word."""
        return Word(Tag.ATOM, str(name))

    @staticmethod
    def instruction(encoded: int) -> "Word":
        """An instruction word holding a 32-bit encoding."""
        return Word(Tag.INSTRUCTION, int(encoded) & 0xFFFFFFFF)

    @staticmethod
    def pointer(address: int, class_tag: int) -> "Word":
        """An object pointer word: a capability naming ``address``.

        ``class_tag`` is the 16-bit class of the referent, cached with
        the word so the ITLB can form its key without a memory access.
        """
        return Word(Tag.OBJECT_POINTER, int(address), class_tag)

    # -- predicates ------------------------------------------------------

    @property
    def is_uninitialized(self) -> bool:
        return self.tag is Tag.UNINITIALIZED

    @property
    def is_small_integer(self) -> bool:
        return self.tag is Tag.SMALL_INTEGER

    @property
    def is_float(self) -> bool:
        return self.tag is Tag.FLOAT

    @property
    def is_pointer(self) -> bool:
        return self.tag is Tag.OBJECT_POINTER

    @property
    def is_number(self) -> bool:
        return self.tag in (Tag.SMALL_INTEGER, Tag.FLOAT)

    # -- accessors -------------------------------------------------------

    def expect(self, tag: Tag) -> Any:
        """Return the value, raising TagMismatch unless the tag matches."""
        if self.tag is not tag:
            raise TagMismatch(f"expected {tag.name}, found {self.tag.name}")
        return self.value

    def same_object_as(self, other: "Word") -> bool:
        """The COM ``==`` (same object) comparison, defined for all types."""
        return self.tag == other.tag and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.tag is Tag.UNINITIALIZED:
            return "<uninit>"
        if self.tag is Tag.OBJECT_POINTER:
            return f"<ptr {self.value:#x} class={self.class_tag}>"
        return f"<{self.tag.name.lower()} {self.value!r}>"


_UNINITIALIZED = Word(Tag.UNINITIALIZED)
