"""Tagged memory and the three address spaces (paper sections 2.2, 3.1)."""

from repro.memory.absolute import AbsoluteMemory, BuddyAllocator
from repro.memory.atlb import ATLB
from repro.memory.fpa import (
    FORMAT_16,
    FORMAT_36,
    AddressFormat,
    FPAddress,
    address_format,
    floating_capacity,
    multics_style_capacity,
)
from repro.memory.mmu import MMU, TranslationResult
from repro.memory.physical import DeviceSpec, MemoryHierarchy, default_hierarchy
from repro.memory.segments import SegmentDescriptor, SegmentTable
from repro.memory.tags import Tag, Word

__all__ = [
    "ATLB", "AbsoluteMemory", "AddressFormat", "BuddyAllocator",
    "DeviceSpec", "FORMAT_16", "FORMAT_36", "FPAddress", "MMU",
    "MemoryHierarchy", "SegmentDescriptor", "SegmentTable", "Tag",
    "TranslationResult", "Word", "address_format", "default_hierarchy",
    "floating_capacity", "multics_style_capacity",
]
