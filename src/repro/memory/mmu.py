"""The three-level addressing engine (paper section 3.1, figure 3).

Ties together the three address spaces:

* **virtual** space -- per-team floating point capability names,
  resolved through the team's segment table (accelerated by the ATLB);
* **absolute** space -- the global object store, where allocation, the
  alias/grow mechanism and garbage collection operate;
* **physical** space -- a hierarchy of devices, each a cache of
  absolute space (residency/latency model only).

The MMU also implements the section-2.2 alias protocol: growing an
object beyond its pointer's exponent range allocates a new name with a
larger exponent, points both descriptors at the (possibly relocated)
segment and arms a forward on the old descriptor so stale pointers trap
and get rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AliasTrap, BoundsTrap, ProtectionTrap, SegmentFault
from repro.memory.absolute import AbsoluteMemory
from repro.memory.atlb import ATLB
from repro.memory.fpa import AddressFormat, FPAddress, address_format
from repro.memory.physical import MemoryHierarchy
from repro.memory.segments import SegmentDescriptor, SegmentName, SegmentTable
from repro.memory.tags import Word


@dataclass
class TranslationResult:
    """The outcome of a virtual-to-absolute translation."""

    absolute: int
    descriptor: SegmentDescriptor
    atlb_hit: bool


class MMU:
    """Address translation and object allocation for a COM system.

    One MMU serves any number of team spaces.  A client (the machine,
    or a test) creates teams, allocates objects inside them, and reads
    or writes words through virtual addresses; the MMU performs bounds
    checking, alias forwarding, ATLB caching and, optionally, physical
    residency modelling.
    """

    def __init__(
        self,
        fmt: AddressFormat = None,
        *,
        arena_words: int = 1 << 24,
        atlb_size: int = 64,
        atlb_associativity=2,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> None:
        self.fmt = fmt or address_format(36)
        self.absolute = AbsoluteMemory(arena_words)
        self.atlb = ATLB(atlb_size, atlb_associativity)
        self.hierarchy = hierarchy
        self._teams: Dict[int, SegmentTable] = {}
        self.alias_traps_taken = 0
        self.bounds_faults = 0

    # -- team management ------------------------------------------------------

    def create_team(self, team: int) -> SegmentTable:
        """Create (or return) the segment table for a team space."""
        table = self._teams.get(team)
        if table is None:
            table = SegmentTable(self.fmt, team)
            self._teams[team] = table
        return table

    def team_table(self, team: int) -> SegmentTable:
        try:
            return self._teams[team]
        except KeyError:
            raise SegmentFault(f"no such team space: {team}") from None

    # -- allocation -------------------------------------------------------------

    def allocate_object(
        self, team: int, size: int, class_tag: int
    ) -> FPAddress:
        """Allocate a new object and return its virtual address.

        The object's segment is sized up to the next power of two and
        named with the smallest exponent that covers ``size``.
        """
        table = self.create_team(team)
        exponent = self.fmt.exponent_for_size(max(size, 1))
        name = table.allocate_name(exponent)
        allocation = self.absolute.allocate(max(size, 1))
        descriptor = SegmentDescriptor(
            base=allocation.base, length=max(size, 1), class_tag=class_tag
        )
        table.install(name, descriptor)
        return table.address_for(name)

    def free_object(self, team: int, address: FPAddress) -> None:
        """Release an object and all the MMU state naming it."""
        table = self.team_table(team)
        descriptor = table.descriptor_for(address)
        table.release(address.segment_name)
        self.atlb.invalidate_segment(team, address.segment_name)
        if descriptor.forward is None:
            self.absolute.free(descriptor.base)

    def share_object(
        self, from_team: int, address: FPAddress, to_team: int,
        *, read: bool = True, write: bool = True,
    ) -> FPAddress:
        """Alias an object into another team space (capability transfer).

        The new team receives its own name (and possibly different
        capability bits) for the same absolute segment.
        """
        source = self.team_table(from_team).descriptor_for(address)
        dest = self.create_team(to_team)
        name = dest.allocate_name(address.exponent)
        dest.install(
            name,
            SegmentDescriptor(
                base=source.base,
                length=source.length,
                class_tag=source.class_tag,
                capability_read=read,
                capability_write=write,
            ),
        )
        return dest.address_for(name)

    # -- growing / aliasing -------------------------------------------------------

    def grow_object(
        self, team: int, address: FPAddress, new_size: int
    ) -> FPAddress:
        """Grow an object, re-aliasing it when its exponent range overflows.

        Returns the address through which the full object is reachable:
        the same address when the growth fit, otherwise a new address
        with a larger exponent.  The old name stays valid within its old
        bounds and forwards beyond them (paper section 2.2).
        """
        table = self.team_table(team)
        descriptor = table.descriptor_for(address)
        if descriptor.forward is not None:
            # Growing through a stale pointer: chase the forward first.
            return self.grow_object(team, descriptor.forward, new_size)
        if new_size <= address.span:
            allocation = self.absolute.grow(descriptor.base, new_size)
            if allocation.base != descriptor.base:
                descriptor.base = allocation.base
            descriptor.length = new_size
            return address
        # Out of exponent range: allocate a bigger name.
        new_exponent = self.fmt.exponent_for_size(new_size)
        new_name = table.allocate_name(new_exponent)
        allocation = self.absolute.grow(descriptor.base, new_size)
        new_descriptor = SegmentDescriptor(
            base=allocation.base,
            length=new_size,
            class_tag=descriptor.class_tag,
            capability_read=descriptor.capability_read,
            capability_write=descriptor.capability_write,
        )
        table.install(new_name, new_descriptor)
        new_address = table.address_for(new_name)
        # Old descriptor now points at the new segment, clipped to the
        # old exponent's span, and forwards beyond it.
        descriptor.base = allocation.base
        descriptor.length = min(descriptor.length, address.span)
        descriptor.forward = new_address
        self.atlb.invalidate_segment(team, address.segment_name)
        return new_address

    def forward_of(self, team: int, address: FPAddress) -> Optional[FPAddress]:
        """The replacement address for a stale pointer, if any."""
        descriptor = self.team_table(team).descriptor_for(address)
        return descriptor.forward

    # -- translation ---------------------------------------------------------------

    def translate(
        self, team: int, address: FPAddress, *, write: bool = False
    ) -> TranslationResult:
        """Virtual -> absolute translation with ATLB and alias handling.

        Raises :class:`AliasTrap` (with the forward address attached)
        when a stale pointer is used out of bounds -- callers emulating
        the trap handler should retry with ``trap.new_address``.
        """
        name = address.segment_name
        descriptor = self.atlb.lookup(team, name)
        atlb_hit = descriptor is not None
        if descriptor is None:
            table = self.team_table(team)
            descriptor = table.descriptor_for(address)
            self.atlb.fill(team, name, descriptor)
        if write and not descriptor.capability_write:
            raise ProtectionTrap(f"no write capability through {address!r}")
        if not write and not descriptor.capability_read:
            raise ProtectionTrap(f"no read capability through {address!r}")
        offset = address.offset
        if not descriptor.contains(offset):
            if descriptor.forward is not None:
                self.alias_traps_taken += 1
                raise AliasTrap(
                    f"stale pointer {address!r}: forwarded",
                    old_address=address,
                    new_address=descriptor.forward.with_offset(0).step(0),
                )
            self.bounds_faults += 1
            raise BoundsTrap(
                f"offset {offset} out of bounds for {address!r} "
                f"(length {descriptor.length})",
                segment=descriptor, offset=offset, length=descriptor.length,
            )
        return TranslationResult(descriptor.base + offset, descriptor, atlb_hit)

    def _resolve(self, team: int, address: FPAddress, write: bool) -> TranslationResult:
        """Translate, transparently following one level of alias forward.

        This models the trap handler: the faulting access is retried
        through the new segment name after the pointer rewrite.
        """
        try:
            return self.translate(team, address, write=write)
        except AliasTrap as trap:
            forwarded = trap.new_address.with_offset(0)
            retry = forwarded.step(address.offset) if address.offset < forwarded.span \
                else None
            if retry is None:
                raise
            return self.translate(team, retry, write=write)

    # -- word access -------------------------------------------------------------------

    def read(self, team: int, address: FPAddress) -> Word:
        """Read one word through a virtual address."""
        result = self._resolve(team, address, write=False)
        if self.hierarchy is not None:
            self.hierarchy.access(result.absolute, write=False)
        return self.absolute.read(result.absolute)

    def write(self, team: int, address: FPAddress, word: Word) -> None:
        """Write one word through a virtual address."""
        result = self._resolve(team, address, write=True)
        if self.hierarchy is not None:
            self.hierarchy.access(result.absolute, write=True)
        self.absolute.write(result.absolute, word)

    def class_of(self, team: int, address: FPAddress) -> int:
        """The 16-bit class tag of the object named by ``address``."""
        name = address.segment_name
        descriptor = self.atlb.lookup(team, name)
        if descriptor is None:
            descriptor = self.team_table(team).descriptor_for(address)
            self.atlb.fill(team, name, descriptor)
        return descriptor.class_tag
