"""Physical space: the memory hierarchy as caches of absolute space.

Paper section 3.1: "To translate an absolute address to a physical
address the absolute address is offered to each level of the memory
hierarchy in turn.  Each storage device is treated as a cache in which
frequently accessed portions of absolute space may be stored."

The functional contents of every object live in
:class:`~repro.memory.absolute.AbsoluteMemory`; this module models the
*placement* of absolute blocks across a stack of devices plus the
latency of each access.  The mapping inside each device is performed by
hashing as in a conventional set-associative cache, so each device's
directory size is a function only of that device's capacity -- it
places no limit on the size of absolute space (the paper's key
contrast with paging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.caches.setassoc import SetAssociativeCache
from repro.caches.stats import CacheStats


@dataclass
class DeviceSpec:
    """Static description of one storage device in the hierarchy."""

    name: str
    capacity_blocks: int
    block_words: int = 16
    associativity: Union[int, str] = 4
    latency_cycles: int = 1
    policy: str = "lru"

    def __post_init__(self):
        if self.block_words <= 0 or self.block_words & (self.block_words - 1):
            raise ValueError("block_words must be a power of two")


@dataclass
class AccessResult:
    """Outcome of one absolute-space access through the hierarchy."""

    level: int               # index of the device that hit (len == backing store)
    device: Optional[str]    # device name, None for the backing store
    latency: int             # total cycles spent probing + transferring
    writebacks: int = 0      # dirty blocks displaced to lower levels


class _Device:
    """One level: a set-associative cache of absolute block numbers."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.cache: SetAssociativeCache[int, dict] = SetAssociativeCache(
            spec.capacity_blocks, spec.associativity, spec.policy
        )

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def block_of(self, absolute_address: int) -> int:
        return absolute_address // self.spec.block_words


class MemoryHierarchy:
    """A stack of devices over an infinite backing store.

    ``access`` walks the hierarchy top-down; the block is filled into
    every level above the hit (inclusive caching), and a dirty block
    displaced from level *i* is written back into level *i+1* (counted,
    and recursively fillable).
    """

    def __init__(self, specs: List[DeviceSpec], backing_latency: int = 100) -> None:
        if not specs:
            raise ValueError("a hierarchy needs at least one device")
        self.devices = [_Device(spec) for spec in specs]
        self.backing_latency = backing_latency
        self.backing_accesses = 0
        self.total_writebacks = 0

    # -- accounting helpers ---------------------------------------------------

    @property
    def level_names(self) -> List[str]:
        return [dev.spec.name for dev in self.devices]

    def stats_for(self, name: str) -> CacheStats:
        for dev in self.devices:
            if dev.spec.name == name:
                return dev.stats
        raise KeyError(f"no device named {name!r}")

    # -- the translation/probe walk --------------------------------------------

    def access(self, absolute_address: int, *, write: bool = False) -> AccessResult:
        """Offer an absolute address to each level in turn.

        Returns where it hit and the cycles consumed.  ``write`` marks
        the block dirty at the top level (write-back policy).
        """
        latency = 0
        writebacks = 0
        hit_level = len(self.devices)
        device_name: Optional[str] = None
        for level, dev in enumerate(self.devices):
            latency += dev.spec.latency_cycles
            block = dev.block_of(absolute_address)
            state = dev.cache.lookup(block)
            if state is not None:
                hit_level = level
                device_name = dev.spec.name
                if write:
                    state["dirty"] = True
                break
        else:
            self.backing_accesses += 1
            latency += self.backing_latency
        # Fill the block into every level above (and including) the miss
        # path, so the next access hits at the top.
        writebacks += self._fill_above(absolute_address, hit_level, write)
        self.total_writebacks += writebacks
        return AccessResult(hit_level, device_name, latency, writebacks)

    def _fill_above(self, absolute_address: int, hit_level: int, write: bool) -> int:
        writebacks = 0
        for level in range(min(hit_level, len(self.devices)) - 1, -1, -1):
            dev = self.devices[level]
            block = dev.block_of(absolute_address)
            evicted = dev.cache.fill(block, {"dirty": write and level == 0})
            if evicted is not None:
                victim_block, victim_state = evicted
                if victim_state.get("dirty"):
                    writebacks += 1
                    self._install_below(level + 1, victim_block * dev.spec.block_words)
        return writebacks

    def _install_below(self, level: int, absolute_address: int) -> None:
        """Receive a written-back block at ``level`` (or the backing store)."""
        if level >= len(self.devices):
            self.backing_accesses += 1
            return
        dev = self.devices[level]
        block = dev.block_of(absolute_address)
        state = dev.cache.peek(block)
        if state is not None:
            state["dirty"] = True
            return
        evicted = dev.cache.fill(block, {"dirty": True})
        if evicted is not None:
            victim_block, victim_state = evicted
            if victim_state.get("dirty"):
                self.total_writebacks += 1
                self._install_below(level + 1, victim_block * dev.spec.block_words)

    def flush(self) -> None:
        """Drop all residency state (e.g. between measured workloads)."""
        for dev in self.devices:
            dev.cache.flush()

    def amat(self) -> float:
        """Average memory access time over everything accessed so far."""
        total_accesses = self.devices[0].stats.accesses
        if total_accesses == 0:
            return 0.0
        cycles = 0.0
        upstream = 0
        for dev in self.devices:
            cycles += dev.stats.accesses * dev.spec.latency_cycles
            upstream = dev.stats.misses
        cycles += self.backing_accesses * self.backing_latency
        return cycles / total_accesses


def default_hierarchy() -> MemoryHierarchy:
    """A plausible COM-era three-level hierarchy for experiments."""
    return MemoryHierarchy(
        [
            DeviceSpec("data-cache", capacity_blocks=256, block_words=16,
                       associativity=4, latency_cycles=1),
            DeviceSpec("main-memory", capacity_blocks=16384, block_words=16,
                       associativity=8, latency_cycles=10),
        ],
        backing_latency=1000,
    )
