"""The address translation lookaside buffer (paper section 3.1).

The ATLB caches virtual-to-absolute translations: it maps a
(team, segment name) key to the segment descriptor, so a hit resolves a
virtual address with one bounds check and no segment-table walk.

Because it associates on (team, name), a process switch needs no flush
-- only entries of a team whose table changed must be shot down, which
:meth:`ATLB.invalidate_team` and :meth:`ATLB.invalidate_segment`
provide.  Descriptors are cached by reference, so in-place descriptor
updates (length growth within the block) are visible without
invalidation; only rebinding a name requires a shoot-down.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.caches.setassoc import SetAssociativeCache
from repro.memory.segments import SegmentDescriptor, SegmentName

#: ATLB key: (team number, exponent, segment field).
ATLBKey = Tuple[int, int, int]


class ATLB:
    """A set-associative cache of segment descriptors."""

    def __init__(
        self,
        size: int = 64,
        associativity: Union[int, str] = 2,
        policy: str = "lru",
    ) -> None:
        self._cache: SetAssociativeCache[ATLBKey, SegmentDescriptor] = (
            SetAssociativeCache(size, associativity, policy)
        )

    @property
    def stats(self):
        return self._cache.stats

    @staticmethod
    def _key(team: int, name: SegmentName) -> ATLBKey:
        return (team, name[0], name[1])

    def lookup(self, team: int, name: SegmentName) -> Optional[SegmentDescriptor]:
        """Probe for a cached descriptor; None on miss (counted)."""
        return self._cache.lookup(self._key(team, name))

    def fill(self, team: int, name: SegmentName, descriptor: SegmentDescriptor) -> None:
        """Install a translation after a table walk."""
        self._cache.fill(self._key(team, name), descriptor)

    def invalidate_segment(self, team: int, name: SegmentName) -> bool:
        """Shoot down one translation (name rebound or segment freed)."""
        return self._cache.invalidate(self._key(team, name))

    def invalidate_team(self, team: int) -> int:
        """Shoot down every translation belonging to one team space."""
        return self._cache.invalidate_where(lambda key, _value: key[0] == team)

    def flush(self) -> None:
        self._cache.flush()

    def __len__(self) -> int:
        return len(self._cache)
