"""Smalltalk-subset front end for the COM (paper section 4)."""

from repro.smalltalk.compiler import SmalltalkCompiler, compile_program
from repro.smalltalk.parser import parse, parse_expression

__all__ = ["SmalltalkCompiler", "compile_program", "parse",
           "parse_expression"]
