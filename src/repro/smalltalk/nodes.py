"""AST nodes for the Smalltalk subset (paper section 4).

The subset covers what the paper's execution model discusses: classes
with instance variables, unary/binary/keyword message sends, method
temporaries, assignments, explicit returns, literals, and the inlined
control-flow selectors (``ifTrue:``/``ifFalse:``, ``whileTrue:``,
``to:do:``, ``timesRepeat:``) whose block arguments the compiler opens
in line -- the Deutsch-Schiffman technique the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Literal:
    """An integer, float, atom (#foo), true, false or nil literal."""

    value: object
    kind: str   # "int" | "float" | "atom" | "special"


@dataclass
class VarRef:
    """A reference to self, a parameter, a temporary, an instance
    variable or a class name (resolved during compilation)."""

    name: str


@dataclass
class Assign:
    """``name := expression``."""

    name: str
    expression: "Expr"


@dataclass
class BlockNode:
    """A literal block ``[:p | stmts]``.

    Blocks appear only as arguments to the inlined control selectors;
    the compiler opens them in line (no first-class closures; the
    non-LIFO machinery is exercised through xfer instead -- see
    DESIGN.md).
    """

    params: List[str]
    temps: List[str]
    body: List["Stmt"]


@dataclass
class Send:
    """A message send: receiver, selector, argument expressions."""

    receiver: "Expr"
    selector: str
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Return:
    """``^ expression``."""

    expression: "Expr"


@dataclass
class ExprStmt:
    """An expression evaluated for effect."""

    expression: "Expr"


Expr = Union[Literal, VarRef, Send, BlockNode]
Stmt = Union[Assign, Return, ExprStmt]


@dataclass
class MethodDecl:
    """``Class >> selector`` with a pattern, temps and a body."""

    class_name: str
    selector: str
    params: List[str]
    temps: List[str]
    body: List[Stmt]


@dataclass
class ClassDecl:
    """``class Name [extends Super] [fields: a b c]``."""

    name: str
    superclass: Optional[str]
    fields: List[str]


@dataclass
class MainDecl:
    """The program entry: temporaries plus statements."""

    temps: List[str]
    body: List[Stmt]


@dataclass
class Program:
    classes: List[ClassDecl]
    methods: List[MethodDecl]
    main: Optional[MainDecl]
