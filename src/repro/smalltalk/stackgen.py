"""A Smalltalk-80-style stack-bytecode compiler and evaluator.

Section 5 reports the design study that killed the Fith Machine:
"Stack machines while offering small code size require almost twice as
many instructions to implement a given source language program than a
three address machine."  To reproduce that comparison we compile the
*same* Smalltalk-subset AST both ways:

* :mod:`repro.smalltalk.compiler` emits COM three-address code;
* this module emits zero-address stack bytecodes (the Smalltalk-80
  virtual machine flavour: push/store/send/jump) and counts the
  instructions a stack machine executes for the same program.

The control selectors are inlined identically in both compilers so the
comparison isolates the operand-addressing difference, not compiler
smartness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError, FithError
from repro.memory.tags import Tag, Word
from repro.objects.model import ClassRegistry, ObjectClass, PrimitiveMethod
from repro.smalltalk.nodes import (
    Assign,
    BlockNode,
    ClassDecl,
    ExprStmt,
    Literal,
    MainDecl,
    MethodDecl,
    Return,
    Send,
    VarRef,
)
from repro.smalltalk.parser import parse

_TRUE = Word.atom("true")
_FALSE = Word.atom("false")
_NIL = Word.atom("nil")


class SOp(enum.Enum):
    """Stack bytecodes (one executed instruction each)."""

    PUSH_SELF = "push_self"
    PUSH_TEMP = "push_temp"
    PUSH_LIT = "push_lit"
    PUSH_FIELD = "push_field"
    STORE_TEMP = "store_temp"
    STORE_FIELD = "store_field"
    POP = "pop"
    DUP = "dup"
    SEND = "send"
    JUMP = "jump"
    JUMP_FALSE = "jump_false"
    RETURN_TOP = "return_top"
    HALT = "halt"


@dataclass
class SInstr:
    op: SOp
    arg: int = 0
    literal: Optional[Word] = None
    selector: Optional[str] = None
    argc: int = 0

    def __repr__(self) -> str:  # pragma: no cover
        extra = self.selector or (self.literal if self.literal else self.arg)
        return f"{self.op.name}({extra})"


@dataclass
class StackMethod:
    selector: str
    class_name: str
    num_params: int
    num_temps: int
    code: List[SInstr]


class StackCompiler:
    """Compiles the Smalltalk subset to stack bytecodes."""

    def __init__(self) -> None:
        self.registry = ClassRegistry()
        self.object_class = self.registry.define_class("Object")
        for name in ("Uninitialized", "SmallInteger", "Float", "Atom",
                     "Instruction", "ObjectPointer"):
            self.registry.by_name(name).superclass = self.object_class
        self.array_class = self.registry.define_class(
            "Array", self.object_class)
        self.fields: Dict[str, List[str]] = {}
        self.class_names = {"Object", "Array", "SmallInteger", "Float",
                            "Atom"}
        self.main: Optional[StackMethod] = None

    # -- program driver ------------------------------------------------------

    def compile_program(self, source: str) -> StackMethod:
        program = parse(source)
        for decl in program.classes:
            self._declare_class(decl)
        for method in program.methods:
            self._compile_method(method)
        if program.main is None:
            raise CompileError("program has no main")
        self.main = self._compile_main(program.main)
        return self.main

    def _declare_class(self, decl: ClassDecl) -> None:
        inherited: List[str] = []
        if decl.superclass and decl.superclass in self.fields:
            inherited = list(self.fields[decl.superclass])
        self.fields[decl.name] = inherited + decl.fields
        self.class_names.add(decl.name)
        if decl.name not in self.registry:
            superclass = (self.registry.by_name(decl.superclass)
                          if decl.superclass else self.object_class)
            self.registry.define_class(
                decl.name, superclass,
                instance_size=len(self.fields[decl.name]))

    def _compile_method(self, decl: MethodDecl) -> StackMethod:
        cls = self.registry.by_name(decl.class_name)
        generator = _StackBody(self, decl.class_name, decl.params, decl.temps)
        generator.compile_body(decl.body, implicit_return_self=True)
        method = StackMethod(decl.selector, decl.class_name,
                             len(decl.params), generator.num_temps,
                             generator.code)
        cls.define_method(decl.selector, method, len(decl.params))
        return method

    def _compile_main(self, decl: MainDecl) -> StackMethod:
        generator = _StackBody(self, None, [], decl.temps)
        generator.compile_body(decl.body, implicit_return_self=False)
        generator.code.append(SInstr(SOp.HALT))
        return StackMethod("__main__", "Object", 0, generator.num_temps,
                           generator.code)


class _StackBody:
    """Bytecode generation for one method body."""

    def __init__(self, compiler: StackCompiler, class_name: Optional[str],
                 params: List[str], temps: List[str]) -> None:
        self.compiler = compiler
        self.class_name = class_name
        self.slots: Dict[str, int] = {}
        for name in params + temps:
            if name in self.slots:
                raise CompileError(f"duplicate variable {name!r}")
            self.slots[name] = len(self.slots)
        self.num_params = len(params)
        self.code: List[SInstr] = []

    @property
    def num_temps(self) -> int:
        return len(self.slots)

    def _declare(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.slots[name]

    def _field_index(self, name: str) -> Optional[int]:
        if self.class_name is None:
            return None
        fields = self.compiler.fields.get(self.class_name, [])
        return fields.index(name) if name in fields else None

    # -- body ------------------------------------------------------------------

    def compile_body(self, body: List, implicit_return_self: bool) -> None:
        returned = False
        for statement in body:
            returned = self._statement(statement)
        if not returned and implicit_return_self:
            self.code.append(SInstr(SOp.PUSH_SELF))
            self.code.append(SInstr(SOp.RETURN_TOP))

    def _statement(self, statement) -> bool:
        if isinstance(statement, Return):
            self._expression(statement.expression)
            self.code.append(SInstr(SOp.RETURN_TOP))
            return True
        if isinstance(statement, Assign):
            self._assign(statement, leave_value=False)
            return False
        if isinstance(statement, ExprStmt):
            self._expression(statement.expression)
            self.code.append(SInstr(SOp.POP))
            return False
        raise CompileError(f"unknown statement {statement!r}")

    def _assign(self, statement: Assign, leave_value: bool) -> None:
        self._expression(statement.expression)
        if leave_value:
            self.code.append(SInstr(SOp.DUP))
        slot = self.slots.get(statement.name)
        if slot is not None:
            self.code.append(SInstr(SOp.STORE_TEMP, slot))
            return
        index = self._field_index(statement.name)
        if index is None:
            raise CompileError(
                f"assignment to unknown variable {statement.name!r}")
        self.code.append(SInstr(SOp.STORE_FIELD, index))

    # -- expressions --------------------------------------------------------------

    def _expression(self, expression) -> None:
        if isinstance(expression, Literal):
            self.code.append(SInstr(SOp.PUSH_LIT,
                                    literal=_literal_word(expression)))
            return
        if isinstance(expression, VarRef):
            name = expression.name
            if name == "self":
                self.code.append(SInstr(SOp.PUSH_SELF))
                return
            slot = self.slots.get(name)
            if slot is not None:
                self.code.append(SInstr(SOp.PUSH_TEMP, slot))
                return
            index = self._field_index(name)
            if index is not None:
                self.code.append(SInstr(SOp.PUSH_FIELD, index))
                return
            if name in self.compiler.class_names or \
                    name in self.compiler.registry:
                self.code.append(SInstr(SOp.PUSH_LIT,
                                        literal=Word.atom(name)))
                return
            raise CompileError(f"unknown variable {name!r}")
        if isinstance(expression, Send):
            self._send(expression)
            return
        if isinstance(expression, BlockNode):
            raise CompileError("blocks only as inlined control arguments")
        raise CompileError(f"unknown expression {expression!r}")

    def _send(self, send: Send) -> None:
        if self._inline_control(send):
            return
        self._expression(send.receiver)
        for argument in send.args:
            self._expression(argument)
        self.code.append(SInstr(SOp.SEND, selector=send.selector,
                                argc=len(send.args)))

    # -- inlined control (mirrors the three-address compiler) ------------------------

    def _inline_control(self, send: Send) -> bool:
        selector = send.selector
        args = send.args
        blocks = all(isinstance(a, BlockNode) for a in args) and args
        if selector == "ifTrue:" and blocks:
            self._if(send.receiver, args[0], None)
            return True
        if selector == "ifFalse:" and blocks:
            self._if(send.receiver, None, args[0])
            return True
        if selector == "ifTrue:ifFalse:" and blocks:
            self._if(send.receiver, args[0], args[1])
            return True
        if selector == "ifFalse:ifTrue:" and blocks:
            self._if(send.receiver, args[1], args[0])
            return True
        if selector == "whileTrue:" and blocks \
                and isinstance(send.receiver, BlockNode):
            self._while(send.receiver, args[0])
            return True
        if selector == "to:do:" and len(args) == 2 \
                and isinstance(args[1], BlockNode):
            self._to_do(send.receiver, args[0], None, args[1])
            return True
        if selector == "to:by:do:" and len(args) == 3 \
                and isinstance(args[2], BlockNode):
            self._to_do(send.receiver, args[0], args[1], args[2])
            return True
        if selector == "timesRepeat:" and blocks:
            self._times_repeat(send.receiver, args[0])
            return True
        if selector in ("and:", "or:") and blocks:
            self._and_or(selector, send.receiver, args[0])
            return True
        return False

    def _block_value(self, block: Optional[BlockNode]) -> None:
        """Inline a block, leaving its value on the stack."""
        if block is None or not block.body:
            self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))
            return
        for name in block.temps:
            self._declare(name)
        for statement in block.body[:-1]:
            self._statement(statement)
        last = block.body[-1]
        if isinstance(last, ExprStmt):
            self._expression(last.expression)
        elif isinstance(last, Assign):
            self._assign(last, leave_value=True)
        elif isinstance(last, Return):
            self._statement(last)
            self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))
        else:
            self._statement(last)
            self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))

    def _if(self, condition, true_block, false_block) -> None:
        self._expression(condition)
        jump_false = len(self.code)
        self.code.append(SInstr(SOp.JUMP_FALSE))
        self._block_value(true_block)
        jump_end = len(self.code)
        self.code.append(SInstr(SOp.JUMP))
        self.code[jump_false].arg = len(self.code)
        self._block_value(false_block)
        self.code[jump_end].arg = len(self.code)

    def _while(self, cond_block: BlockNode, body_block: BlockNode) -> None:
        loop_top = len(self.code)
        self._block_value(cond_block)
        jump_out = len(self.code)
        self.code.append(SInstr(SOp.JUMP_FALSE))
        self._block_value(body_block)
        self.code.append(SInstr(SOp.POP))
        self.code.append(SInstr(SOp.JUMP, loop_top))
        self.code[jump_out].arg = len(self.code)
        self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))

    def _to_do(self, start, stop, step, block: BlockNode) -> None:
        if len(block.params) != 1:
            raise CompileError("to:do: block takes exactly one parameter")
        index_slot = self._declare(block.params[0])
        limit_slot = self._declare(f"__limit{len(self.code)}")
        self._expression(start)
        self.code.append(SInstr(SOp.STORE_TEMP, index_slot))
        self._expression(stop)
        self.code.append(SInstr(SOp.STORE_TEMP, limit_slot))
        loop_top = len(self.code)
        self.code.append(SInstr(SOp.PUSH_TEMP, index_slot))
        self.code.append(SInstr(SOp.PUSH_TEMP, limit_slot))
        self.code.append(SInstr(SOp.SEND, selector="<=", argc=1))
        jump_out = len(self.code)
        self.code.append(SInstr(SOp.JUMP_FALSE))
        self._block_value(block)
        self.code.append(SInstr(SOp.POP))
        self.code.append(SInstr(SOp.PUSH_TEMP, index_slot))
        if step is None:
            self.code.append(SInstr(SOp.PUSH_LIT,
                                    literal=Word.small_integer(1)))
        else:
            self._expression(step)
        self.code.append(SInstr(SOp.SEND, selector="+", argc=1))
        self.code.append(SInstr(SOp.STORE_TEMP, index_slot))
        self.code.append(SInstr(SOp.JUMP, loop_top))
        self.code[jump_out].arg = len(self.code)
        self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))

    def _times_repeat(self, count, block: BlockNode) -> None:
        counter = self._declare(f"__count{len(self.code)}")
        self._expression(count)
        self.code.append(SInstr(SOp.STORE_TEMP, counter))
        loop_top = len(self.code)
        self.code.append(SInstr(SOp.PUSH_TEMP, counter))
        self.code.append(SInstr(SOp.PUSH_LIT, literal=Word.small_integer(1)))
        self.code.append(SInstr(SOp.SEND, selector=">=", argc=1))
        jump_out = len(self.code)
        self.code.append(SInstr(SOp.JUMP_FALSE))
        self._block_value(block)
        self.code.append(SInstr(SOp.POP))
        self.code.append(SInstr(SOp.PUSH_TEMP, counter))
        self.code.append(SInstr(SOp.PUSH_LIT, literal=Word.small_integer(1)))
        self.code.append(SInstr(SOp.SEND, selector="-", argc=1))
        self.code.append(SInstr(SOp.STORE_TEMP, counter))
        self.code.append(SInstr(SOp.JUMP, loop_top))
        self.code[jump_out].arg = len(self.code)
        self.code.append(SInstr(SOp.PUSH_LIT, literal=_NIL))

    def _and_or(self, selector: str, left, block: BlockNode) -> None:
        self._expression(left)
        self.code.append(SInstr(SOp.DUP))
        if selector == "or:":
            # left true -> skip; need the inverse jump: jump_false to
            # the block means "false -> evaluate block".
            jump = len(self.code)
            self.code.append(SInstr(SOp.JUMP_FALSE))
            end_jump = len(self.code)
            self.code.append(SInstr(SOp.JUMP))
            self.code[jump].arg = len(self.code)
            self.code.append(SInstr(SOp.POP))
            self._block_value(block)
            self.code[end_jump].arg = len(self.code)
        else:
            jump = len(self.code)
            self.code.append(SInstr(SOp.JUMP_FALSE))
            self.code.append(SInstr(SOp.POP))
            self._block_value(block)
            self.code[jump].arg = len(self.code)


def _literal_word(literal: Literal) -> Word:
    if literal.kind == "int":
        return Word.small_integer(literal.value)
    if literal.kind == "float":
        return Word.floating(literal.value)
    if literal.kind == "atom":
        return Word.atom(literal.value)
    return {"true": _TRUE, "false": _FALSE, "nil": _NIL}[literal.value]


# ----------------------------------------------------------------------
# the stack VM
# ----------------------------------------------------------------------


@dataclass
class _StackObject:
    class_tag: int
    fields: List[Word]


@dataclass
class _VMFrame:
    method: StackMethod
    receiver: Word
    temps: List[Word]
    stack: List[Word] = field(default_factory=list)
    pc: int = 0
    caller_wants_value: bool = True


class StackVM:
    """Executes stack bytecodes, counting instructions.

    Dispatch is by receiver class through the same class registry the
    compiler filled, so late binding behaves exactly like the COM's.
    """

    def __init__(self, compiler: StackCompiler) -> None:
        self.compiler = compiler
        self.registry = compiler.registry
        self.instructions = 0
        self.sends = 0
        self._objects: Dict[int, _StackObject] = {}
        self._next_oid = 1

    # -- heap ------------------------------------------------------------------

    def _allocate(self, cls: ObjectClass, size: Optional[int] = None) -> Word:
        oid = self._next_oid
        self._next_oid += 1
        count = cls.instance_size if size is None else size
        self._objects[oid] = _StackObject(cls.class_tag,
                                          [_NIL] * max(count, 0))
        return Word.pointer(oid, cls.class_tag)

    def _object(self, pointer: Word) -> _StackObject:
        if not pointer.is_pointer or pointer.value not in self._objects:
            raise FithError(f"bad pointer {pointer!r}")
        return self._objects[pointer.value]

    # -- primitives --------------------------------------------------------------

    def _primitive(self, selector: str, receiver: Word,
                   args: List[Word]) -> Optional[Word]:
        """Try to satisfy a send with a primitive; None means lookup."""
        if selector in ("+", "-", "*", "/", "<", "<=", ">", ">=", "=") \
                and len(args) == 1 and receiver.is_number \
                and args[0].is_number:
            a, b = receiver.value, args[0].value
            if selector == "+":
                result = a + b
            elif selector == "-":
                result = a - b
            elif selector == "*":
                result = a * b
            elif selector == "/":
                if b == 0:
                    raise FithError("division by zero")
                result = (a / b if not (receiver.is_small_integer
                                        and args[0].is_small_integer)
                          else int(abs(a) // abs(b))
                          * (-1 if (a < 0) != (b < 0) else 1))
            elif selector == "<":
                return _TRUE if a < b else _FALSE
            elif selector == "<=":
                return _TRUE if a <= b else _FALSE
            elif selector == ">":
                return _TRUE if a > b else _FALSE
            elif selector == ">=":
                return _TRUE if a >= b else _FALSE
            else:
                return _TRUE if a == b else _FALSE
            if receiver.is_small_integer and args[0].is_small_integer \
                    and isinstance(result, int):
                return Word.small_integer(result)
            return Word.floating(float(result))
        if selector == "\\\\" and len(args) == 1:
            return Word.small_integer(receiver.value % args[0].value)
        if selector == "=" and len(args) == 1:
            return _TRUE if receiver.same_object_as(args[0]) else _FALSE
        if selector == "==" and len(args) == 1:
            return _TRUE if receiver.same_object_as(args[0]) else _FALSE
        if selector == "~=" and len(args) == 1:
            return _FALSE if receiver.same_object_as(args[0]) else _TRUE
        if selector == "negated" and not args and receiver.is_number:
            if receiver.is_small_integer:
                return Word.small_integer(-receiver.value)
            return Word.floating(-receiver.value)
        if selector == "new" and not args and receiver.tag is Tag.ATOM:
            return self._allocate(self.registry.by_name(receiver.value))
        if selector == "new:" and len(args) == 1 \
                and receiver.tag is Tag.ATOM:
            return self._allocate(self.registry.by_name(receiver.value),
                                  args[0].value)
        if selector == "at:" and len(args) == 1 and receiver.is_pointer:
            return self._object(receiver).fields[args[0].value]
        if selector == "at:put:" and len(args) == 2 and receiver.is_pointer:
            self._object(receiver).fields[args[0].value] = args[1]
            return args[1]
        return None

    # -- execution ----------------------------------------------------------------

    def run_main(self, max_instructions: int = 5_000_000) -> Optional[Word]:
        main = self.compiler.main
        if main is None:
            raise FithError("no compiled main")
        frames = [_VMFrame(main, _NIL, [_NIL] * main.num_temps)]
        result: Optional[Word] = None
        while frames:
            frame = frames[-1]
            if frame.pc >= len(frame.method.code):
                frames.pop()
                continue
            if self.instructions >= max_instructions:
                raise FithError("instruction budget exceeded")
            instr = frame.method.code[frame.pc]
            frame.pc += 1
            self.instructions += 1
            op = instr.op
            if op is SOp.PUSH_SELF:
                frame.stack.append(frame.receiver)
            elif op is SOp.PUSH_TEMP:
                frame.stack.append(frame.temps[instr.arg])
            elif op is SOp.PUSH_LIT:
                frame.stack.append(instr.literal)
            elif op is SOp.PUSH_FIELD:
                frame.stack.append(
                    self._object(frame.receiver).fields[instr.arg])
            elif op is SOp.STORE_TEMP:
                frame.temps[instr.arg] = frame.stack.pop()
            elif op is SOp.STORE_FIELD:
                self._object(frame.receiver).fields[instr.arg] = \
                    frame.stack.pop()
            elif op is SOp.POP:
                frame.stack.pop()
            elif op is SOp.DUP:
                frame.stack.append(frame.stack[-1])
            elif op is SOp.JUMP:
                frame.pc = instr.arg
            elif op is SOp.JUMP_FALSE:
                if not frame.stack.pop().same_object_as(_TRUE):
                    frame.pc = instr.arg
            elif op is SOp.RETURN_TOP:
                value = frame.stack.pop()
                frames.pop()
                if frames:
                    frames[-1].stack.append(value)
                else:
                    result = value
            elif op is SOp.HALT:
                result = frame.stack[-1] if frame.stack else None
                frames.clear()
            elif op is SOp.SEND:
                self.sends += 1
                argc = instr.argc
                args = frame.stack[len(frame.stack) - argc:]
                del frame.stack[len(frame.stack) - argc:]
                receiver = frame.stack.pop()
                primitive = self._primitive(instr.selector, receiver, args)
                if primitive is not None:
                    frame.stack.append(primitive)
                    continue
                lookup = self.registry.lookup_by_tag(
                    instr.selector, receiver.class_tag)
                method = lookup.method
                if isinstance(method, PrimitiveMethod):
                    raise FithError(
                        f"unimplemented primitive {instr.selector!r}")
                target: StackMethod = method.code
                temps = [_NIL] * max(target.num_temps, argc)
                for index, argument in enumerate(args):
                    temps[index] = argument
                frames.append(_VMFrame(target, receiver, temps))
            else:  # pragma: no cover
                raise FithError(f"unhandled stack op {op}")
        return result


def run_stack_program(source: str,
                      max_instructions: int = 5_000_000
                      ) -> Tuple[Optional[Word], StackVM]:
    """Compile and run a program on the stack VM; returns (result, vm)."""
    compiler = StackCompiler()
    compiler.compile_program(source)
    vm = StackVM(compiler)
    result = vm.run_main(max_instructions)
    return result, vm
