"""Tokenizer for the Smalltalk subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

#: Binary selector characters, as in Smalltalk-80 (\\ is modulo).
_BINARY_CHARS = r"+\-*/~<>=&|@%,?!\\"

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>"[^"]*")
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<atom>\#[A-Za-z_][A-Za-z0-9_]*)
  | (?P<keyword>[A-Za-z_][A-Za-z0-9_]*:)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<assign>:=)
  | (?P<arrow>>>)
  | (?P<caret>\^)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<period>\.)
  | (?P<semicolon>;)
  | (?P<blockarg>:[A-Za-z_][A-Za-z0-9_]*)
  | (?P<bar>\|)
  | (?P<binary>[""" + _BINARY_CHARS + r"""]+)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Produce the token list, dropping comments and whitespace."""
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "bad":
            raise CompileError(f"line {line}: unexpected character {text!r}")
        # A '-' immediately glued to a number was captured by the number
        # patterns; standalone minus arrives as a binary selector.
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
