"""Compiler from the Smalltalk subset to COM three-address code.

Follows the execution model of paper section 4:

* the context layout of figure 8 (c0 = result pointer, c1 = receiver,
  c2.. = arguments, then temporaries);
* expression temporaries live in context slots because the COM "forgoes
  the use of an expression stack";
* compilation is "a simple matter of assembling opcodes": arithmetic
  and comparisons compile to single abstract instructions regardless of
  operand types -- the ITLB resolves them at run time;
* sends with at most one argument use the three-operand send form (the
  processor copies arg0/arg1/arg2 automatically); wider sends set up
  the next context explicitly (movea the result slot into n0, receiver
  into n1, arguments onward) exactly like figure 9's call to ``bar``;
* the control selectors ``ifTrue:``/``ifFalse:``/``whileTrue:``/
  ``to:do:``/``timesRepeat:``/``and:``/``or:`` are opened in line when
  given literal blocks, the standard Smalltalk-80 technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.core.constants import ConstantTable, FALSE, NIL, TRUE
from repro.core.context import CONTEXT_WORDS, HEADER_WORDS
from repro.core.encoding import Instruction
from repro.core.isa import Op, OpcodeTable
from repro.core.operands import MAX_CONTEXT_OFFSET, Mode, Operand
from repro.memory.tags import Word
from repro.smalltalk.nodes import (
    Assign,
    BlockNode,
    ClassDecl,
    ExprStmt,
    Literal,
    MainDecl,
    MethodDecl,
    Program,
    Return,
    Send,
    VarRef,
)
from repro.smalltalk.parser import parse

#: Binary selectors that compile straight to architectural opcodes.
_DIRECT_BINARY: Dict[str, Op] = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "\\\\": Op.MOD,
    "<": Op.LT, "<=": Op.LE, "=": Op.EQ, "==": Op.SAME,
    "bitAnd:": Op.AND, "bitOr:": Op.OR, "bitXor:": Op.XOR,
    "bitShift:": Op.SHIFT,
}
#: Selectors compiled by swapping the operands.
_SWAPPED_BINARY: Dict[str, Op] = {">": Op.LT, ">=": Op.LE}
#: Unary selectors with architectural opcodes.
_DIRECT_UNARY: Dict[str, Op] = {
    "negated": Op.NEG, "bitInvert": Op.NOT, "tag": Op.TAG,
}

_DONT_CARE = Operand.current(0)


@dataclass
class _Label:
    """A forward-patchable jump target."""

    name: str
    position: Optional[int] = None


@dataclass
class _PendingJump:
    index: int          # instruction index of the placeholder
    condition: Operand
    label: _Label


class _Emitter:
    """Accumulates instructions, resolving labels in a second pass."""

    def __init__(self, constants: ConstantTable) -> None:
        self.constants = constants
        self.instructions: List[Optional[Instruction]] = []
        self._pending: List[_PendingJump] = []
        self._label_count = 0

    def emit(self, instruction: Instruction) -> int:
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def new_label(self, hint: str = "L") -> _Label:
        self._label_count += 1
        return _Label(f"{hint}{self._label_count}")

    def mark(self, label: _Label) -> None:
        if label.position is not None:
            raise CompileError(f"label {label.name} marked twice")
        label.position = len(self.instructions)

    def jump_if(self, condition: Operand, label: _Label) -> None:
        self.instructions.append(None)
        self._pending.append(
            _PendingJump(len(self.instructions) - 1, condition, label))

    def jump(self, label: _Label) -> None:
        always = Operand.constant(self.constants.intern(TRUE))
        self.jump_if(always, label)

    def finish(self) -> List[Instruction]:
        for pending in self._pending:
            if pending.label.position is None:
                raise CompileError(f"unresolved label {pending.label.name}")
            displacement = pending.label.position - (pending.index + 1)
            if displacement >= 0:
                opcode, magnitude = Op.FJMP, displacement
            else:
                opcode, magnitude = Op.RJMP, -displacement
            disp = Operand.constant(
                self.constants.intern(Word.small_integer(magnitude)))
            self.instructions[pending.index] = Instruction.three(
                int(opcode), pending.condition, _DONT_CARE, disp)
        if any(inst is None for inst in self.instructions):
            raise CompileError("unpatched jump placeholder")
        return list(self.instructions)


@dataclass
class ClassInfo:
    """Compile-time knowledge of a class: its field layout."""

    name: str
    superclass: Optional[str]
    fields: List[str] = field(default_factory=list)

    def field_index(self, name: str) -> Optional[int]:
        try:
            return self.fields.index(name)
        except ValueError:
            return None


class MethodScope:
    """Slot allocation for one method (figure 8 layout)."""

    def __init__(self, params: List[str], temps: List[str]) -> None:
        self._names: Dict[str, int] = {"self": 1}
        next_slot = 2
        for name in params + temps:
            if name in self._names:
                raise CompileError(f"duplicate variable {name!r}")
            self._names[name] = next_slot
            next_slot += 1
        self._next_scratch = next_slot
        self._scratch_stack: List[int] = []
        self.high_water = next_slot

    def slot_of(self, name: str) -> Optional[int]:
        return self._names.get(name)

    def declare(self, name: str) -> int:
        """Bind a block parameter/temp in the enclosing method frame."""
        if name in self._names:
            return self._names[name]
        slot = self.alloc_scratch()
        # Block variables stay allocated for the method's lifetime.
        self._scratch_stack.pop()
        self._names[name] = slot
        self._next_scratch = max(self._next_scratch, slot + 1)
        return slot

    def alloc_scratch(self) -> int:
        # Never hand out a slot that has since been bound to a name
        # (the cursor can rewind below late-declared block variables).
        named = set(self._names.values())
        slot = self._next_scratch
        while slot in named:
            slot += 1
        self._next_scratch = slot + 1
        if slot > MAX_CONTEXT_OFFSET:
            raise CompileError(
                "method needs more than 30 context slots; "
                "spill to a heap object (not supported by this compiler)")
        self._scratch_stack.append(slot)
        self.high_water = max(self.high_water, slot + 1)
        return slot

    def free_scratch(self, slot: int) -> None:
        if self._scratch_stack and self._scratch_stack[-1] == slot:
            self._scratch_stack.pop()
            self._next_scratch = slot

    @property
    def frame_words(self) -> int:
        return self.high_water + HEADER_WORDS


class SmalltalkCompiler:
    """Compiles parsed programs onto a COMMachine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.opcodes: OpcodeTable = machine.opcodes
        self.constants: ConstantTable = machine.constants
        self.classes: Dict[str, ClassInfo] = {}

    # -- program driver ------------------------------------------------------

    def compile_program(self, source: str):
        """Compile and install a program; returns the main method."""
        program = parse(source)
        for decl in program.classes:
            self._declare_class(decl)
        for method in program.methods:
            self._compile_method(method)
        if program.main is None:
            raise CompileError("program has no main")
        return self._compile_main(program.main)

    def _declare_class(self, decl: ClassDecl) -> None:
        if decl.name in self.classes:
            raise CompileError(f"class {decl.name!r} declared twice")
        fields: List[str] = []
        if decl.superclass:
            parent = self.classes.get(decl.superclass)
            if parent is not None:
                fields.extend(parent.fields)
        fields.extend(decl.fields)
        info = ClassInfo(decl.name, decl.superclass, fields)
        self.classes[decl.name] = info
        if decl.name not in self.machine.registry:
            superclass = (
                self.machine.registry.by_name(decl.superclass)
                if decl.superclass else self.machine.object_class)
            self.machine.registry.define_class(
                decl.name, superclass, instance_size=len(fields))
        else:
            self.machine.registry.by_name(decl.name).instance_size = \
                len(fields)

    # -- method compilation -----------------------------------------------------

    def _compile_method(self, decl: MethodDecl) -> None:
        try:
            cls = self.machine.registry.by_name(decl.class_name)
        except Exception as exc:
            raise CompileError(
                f"method on unknown class {decl.class_name!r}") from exc
        info = self.classes.get(decl.class_name)
        scope = MethodScope(decl.params, decl.temps)
        emitter = _Emitter(self.constants)
        body_compiler = _BodyCompiler(self, scope, emitter, info)
        body_compiler.compile_body(decl.body, implicit_return_self=True)
        self.machine.install_method(
            cls, decl.selector, emitter.finish(),
            argument_count=len(decl.params),
            frame_words=min(scope.frame_words, CONTEXT_WORDS),
        )

    def _compile_main(self, decl: MainDecl):
        scope = MethodScope([], decl.temps)
        emitter = _Emitter(self.constants)
        body_compiler = _BodyCompiler(self, scope, emitter, None)
        body_compiler.compile_body(decl.body, implicit_return_self=False)
        emitter.emit(Instruction.zero(int(Op.HALT)))
        return self.machine.install_method(
            self.machine.object_class, "__main__", emitter.finish(),
            frame_words=min(scope.frame_words, CONTEXT_WORDS),
        )

    # -- shared helpers ----------------------------------------------------------

    def constant_operand(self, word: Word) -> Operand:
        return Operand.constant(self.constants.intern(word))

    def literal_operand(self, literal: Literal) -> Operand:
        if literal.kind == "int":
            return self.constant_operand(Word.small_integer(literal.value))
        if literal.kind == "float":
            return self.constant_operand(Word.floating(literal.value))
        if literal.kind == "atom":
            return self.constant_operand(Word.atom(literal.value))
        word = {"true": TRUE, "false": FALSE, "nil": NIL}[literal.value]
        return self.constant_operand(word)

    def is_class_name(self, name: str) -> bool:
        return name in self.classes or name in self.machine.registry


class _BodyCompiler:
    """Statement/expression code generation for one method body."""

    def __init__(self, compiler: SmalltalkCompiler, scope: MethodScope,
                 emitter: _Emitter, class_info: Optional[ClassInfo]) -> None:
        self.compiler = compiler
        self.scope = scope
        self.emitter = emitter
        self.class_info = class_info

    # -- entry point ----------------------------------------------------------

    def compile_body(self, body: List, implicit_return_self: bool) -> None:
        returned = False
        for statement in body:
            returned = self._compile_statement(statement)
        if not returned:
            if implicit_return_self:
                self.emitter.emit(Instruction.three(
                    int(Op.MOVE), Operand.current(0), Operand.current(1),
                    _DONT_CARE, returns=True))

    def _compile_statement(self, statement) -> bool:
        """Compile one statement; True when it was a return."""
        if isinstance(statement, Return):
            source = self._expression_operand(statement.expression)
            self.emitter.emit(Instruction.three(
                int(Op.MOVE), Operand.current(0), source, _DONT_CARE,
                returns=True))
            self._release(source)
            return True
        if isinstance(statement, Assign):
            self._compile_assignment(statement)
            return False
        if isinstance(statement, ExprStmt):
            operand = self._expression_operand(statement.expression)
            self._release(operand)
            return False
        raise CompileError(f"unknown statement {statement!r}")

    # -- operand management ------------------------------------------------------

    def _scratch(self) -> Operand:
        return Operand.current(self.scope.alloc_scratch())

    def _release(self, operand: Operand) -> None:
        if operand.mode is Mode.CONTEXT and operand.offset >= 2:
            self.scope.free_scratch(operand.offset)

    def _expression_operand(self, expression) -> Operand:
        """An operand holding the expression's value.

        Literals and plain variables are returned in place (no move);
        anything else is compiled into a scratch slot the caller must
        release.
        """
        if isinstance(expression, Literal):
            return self.compiler.literal_operand(expression)
        if isinstance(expression, VarRef):
            slot = self.scope.slot_of(expression.name)
            if slot is not None:
                return Operand.current(slot)
            if self._field_index(expression.name) is not None:
                dest = self._scratch()
                self._load_field(dest, expression.name)
                return dest
            if self.compiler.is_class_name(expression.name):
                return self.compiler.constant_operand(
                    Word.atom(expression.name))
            raise CompileError(f"unknown variable {expression.name!r}")
        dest = self._scratch()
        self._compile_expression(expression, dest)
        return dest

    def _field_index(self, name: str) -> Optional[int]:
        if self.class_info is None:
            return None
        return self.class_info.field_index(name)

    def _load_field(self, dest: Operand, name: str) -> None:
        index = self._field_index(name)
        idx_operand = self.compiler.constant_operand(
            Word.small_integer(index))
        self.emitter.emit(Instruction.three(
            int(Op.AT), dest, Operand.current(1), idx_operand))

    # -- assignment ------------------------------------------------------------------

    def _compile_assignment(self, statement: Assign) -> None:
        slot = self.scope.slot_of(statement.name)
        if slot is not None:
            self._compile_expression_into(
                statement.expression, Operand.current(slot))
            return
        index = self._field_index(statement.name)
        if index is None:
            raise CompileError(
                f"assignment to unknown variable {statement.name!r}")
        value = self._expression_operand(statement.expression)
        idx_operand = self.compiler.constant_operand(Word.small_integer(index))
        self.emitter.emit(Instruction.three(
            int(Op.ATPUT), value, Operand.current(1), idx_operand))
        self._release(value)

    def _compile_expression_into(self, expression, dest: Operand) -> None:
        """Compile an expression, ensuring its value lands in ``dest``."""
        if isinstance(expression, (Literal, VarRef)):
            source = self._expression_operand(expression)
            if source != dest:
                self.emitter.emit(Instruction.three(
                    int(Op.MOVE), dest, source, _DONT_CARE))
            self._release(source)
            return
        self._compile_expression(expression, dest)

    # -- expressions --------------------------------------------------------------------

    def _compile_expression(self, expression, dest: Operand) -> None:
        if isinstance(expression, (Literal, VarRef)):
            self._compile_expression_into(expression, dest)
            return
        if isinstance(expression, BlockNode):
            raise CompileError(
                "blocks are only supported as arguments of the inlined "
                "control selectors (ifTrue:, whileTrue:, to:do:, ...)")
        if isinstance(expression, Send):
            self._compile_send(expression, dest)
            return
        raise CompileError(f"unknown expression {expression!r}")

    def _compile_send(self, send: Send, dest: Operand) -> None:
        if self._try_inline_control(send, dest):
            return
        selector = send.selector
        if selector in _DIRECT_BINARY and len(send.args) == 1:
            self._binary(int(_DIRECT_BINARY[selector]),
                         send.receiver, send.args[0], dest)
            return
        if selector in _SWAPPED_BINARY and len(send.args) == 1:
            self._binary(int(_SWAPPED_BINARY[selector]),
                         send.args[0], send.receiver, dest)
            return
        if selector == "~=" and len(send.args) == 1:
            self._binary(int(Op.EQ), send.receiver, send.args[0], dest)
            false_const = self.compiler.constant_operand(FALSE)
            self.emitter.emit(Instruction.three(
                int(Op.EQ), dest, dest, false_const))
            return
        if selector in _DIRECT_UNARY and not send.args:
            source = self._expression_operand(send.receiver)
            self.emitter.emit(Instruction.three(
                int(_DIRECT_UNARY[selector]), dest, source, _DONT_CARE))
            self._release(source)
            return
        if selector == "at:" and len(send.args) == 1:
            self._binary(int(Op.AT), send.receiver, send.args[0], dest)
            return
        if selector == "at:put:" and len(send.args) == 2:
            receiver = self._expression_operand(send.receiver)
            index = self._expression_operand(send.args[0])
            value = self._expression_operand(send.args[1])
            self.emitter.emit(Instruction.three(
                int(Op.ATPUT), value, receiver, index))
            # at:put: answers the stored value.
            if dest != value:
                self.emitter.emit(Instruction.three(
                    int(Op.MOVE), dest, value, _DONT_CARE))
            for operand in (value, index, receiver):
                self._release(operand)
            return
        self._compile_general_send(send, dest)

    def _binary(self, opcode: int, left, right, dest: Operand) -> None:
        left_operand = self._expression_operand(left)
        right_operand = self._expression_operand(right)
        self.emitter.emit(Instruction.three(
            opcode, dest, left_operand, right_operand))
        self._release(right_operand)
        self._release(left_operand)

    def _compile_general_send(self, send: Send, dest: Operand) -> None:
        opcode = self.compiler.opcodes.intern(send.selector)
        if len(send.args) <= 1:
            receiver = self._expression_operand(send.receiver)
            argument = (self._expression_operand(send.args[0])
                        if send.args else receiver)
            self.emitter.emit(Instruction.three(
                opcode, dest, receiver, argument))
            if send.args:
                self._release(argument)
            self._release(receiver)
            return
        # Wide send: set up the next context explicitly (figure 9).
        if dest.mode is not Mode.CONTEXT:
            raise CompileError("send destination must be a context slot")
        receiver = self._expression_operand(send.receiver)
        arguments = [self._expression_operand(arg) for arg in send.args]
        self.emitter.emit(Instruction.three(
            int(Op.MOVEA), Operand.next(0), dest, _DONT_CARE))
        self.emitter.emit(Instruction.three(
            int(Op.MOVE), Operand.next(1), receiver, _DONT_CARE))
        for position, argument in enumerate(arguments):
            self.emitter.emit(Instruction.three(
                int(Op.MOVE), Operand.next(2 + position), argument,
                _DONT_CARE))
        self.emitter.emit(Instruction.zero(opcode, nargs=2))
        for argument in reversed(arguments):
            self._release(argument)
        self._release(receiver)

    # -- inlined control flow -------------------------------------------------------------

    def _try_inline_control(self, send: Send, dest: Operand) -> bool:
        selector = send.selector
        args = send.args
        if selector == "ifTrue:" and self._is_block(args):
            self._inline_if(send.receiver, args[0], None, dest)
            return True
        if selector == "ifFalse:" and self._is_block(args):
            self._inline_if(send.receiver, None, args[0], dest)
            return True
        if selector == "ifTrue:ifFalse:" and self._is_block(args):
            self._inline_if(send.receiver, args[0], args[1], dest)
            return True
        if selector == "ifFalse:ifTrue:" and self._is_block(args):
            self._inline_if(send.receiver, args[1], args[0], dest)
            return True
        if selector == "whileTrue:" and isinstance(send.receiver, BlockNode) \
                and self._is_block(args):
            self._inline_while(send.receiver, args[0], dest)
            return True
        if selector == "to:do:" and len(args) == 2 and \
                isinstance(args[1], BlockNode):
            self._inline_to_do(send.receiver, args[0], None, args[1], dest)
            return True
        if selector == "to:by:do:" and len(args) == 3 and \
                isinstance(args[2], BlockNode):
            self._inline_to_do(send.receiver, args[0], args[1], args[2], dest)
            return True
        if selector == "timesRepeat:" and self._is_block(args):
            self._inline_times_repeat(send.receiver, args[0], dest)
            return True
        if selector in ("and:", "or:") and self._is_block(args):
            self._inline_and_or(selector, send.receiver, args[0], dest)
            return True
        return False

    @staticmethod
    def _is_block(args: List) -> bool:
        return bool(args) and all(isinstance(a, BlockNode) for a in args)

    def _compile_block_value(self, block: Optional[BlockNode],
                             dest: Operand) -> None:
        """Open a block in line; its value (last statement) lands in dest."""
        if block is None or not block.body:
            nil_const = self.compiler.constant_operand(NIL)
            self.emitter.emit(Instruction.three(
                int(Op.MOVE), dest, nil_const, _DONT_CARE))
            return
        for name in block.temps:
            self.scope.declare(name)
        for statement in block.body[:-1]:
            self._compile_statement(statement)
        last = block.body[-1]
        if isinstance(last, ExprStmt):
            self._compile_expression_into(last.expression, dest)
        elif isinstance(last, Assign):
            self._compile_assignment(last)
            slot = self.scope.slot_of(last.name)
            if slot is not None:
                self.emitter.emit(Instruction.three(
                    int(Op.MOVE), dest, Operand.current(slot), _DONT_CARE))
        else:
            self._compile_statement(last)

    def _inline_if(self, condition, true_block: Optional[BlockNode],
                   false_block: Optional[BlockNode], dest: Operand) -> None:
        cond = self._expression_operand(condition)
        true_label = self.emitter.new_label("true")
        end_label = self.emitter.new_label("endif")
        self.emitter.jump_if(cond, true_label)
        self._release(cond)
        self._compile_block_value(false_block, dest)
        self.emitter.jump(end_label)
        self.emitter.mark(true_label)
        self._compile_block_value(true_block, dest)
        self.emitter.mark(end_label)

    def _invert(self, operand: Operand, dest: Operand) -> None:
        false_const = self.compiler.constant_operand(FALSE)
        self.emitter.emit(Instruction.three(
            int(Op.EQ), dest, operand, false_const))

    def _inline_while(self, cond_block: BlockNode, body_block: BlockNode,
                      dest: Operand) -> None:
        loop_label = self.emitter.new_label("while")
        end_label = self.emitter.new_label("endwhile")
        cond_slot = self._scratch()
        self.emitter.mark(loop_label)
        self._compile_block_value(cond_block, cond_slot)
        self._invert(cond_slot, cond_slot)
        self.emitter.jump_if(cond_slot, end_label)
        body_dest = self._scratch()
        self._compile_block_value(body_block, body_dest)
        self._release(body_dest)
        self.emitter.jump(loop_label)
        self.emitter.mark(end_label)
        self._release(cond_slot)
        nil_const = self.compiler.constant_operand(NIL)
        self.emitter.emit(Instruction.three(
            int(Op.MOVE), dest, nil_const, _DONT_CARE))

    def _inline_to_do(self, start, stop, step, block: BlockNode,
                      dest: Operand) -> None:
        if len(block.params) != 1:
            raise CompileError("to:do: block takes exactly one parameter")
        index_slot = Operand.current(self.scope.declare(block.params[0]))
        self._compile_expression_into(start, index_slot)
        stop_operand = self._expression_operand(stop)
        step_operand = (self._expression_operand(step)
                        if step is not None else
                        self.compiler.constant_operand(Word.small_integer(1)))
        loop_label = self.emitter.new_label("todo")
        end_label = self.emitter.new_label("endtodo")
        test_slot = self._scratch()
        self.emitter.mark(loop_label)
        # Exit when stop < index (ascending loops).
        self.emitter.emit(Instruction.three(
            int(Op.LT), test_slot, stop_operand, index_slot))
        self.emitter.jump_if(test_slot, end_label)
        body_dest = self._scratch()
        self._compile_block_value(block, body_dest)
        self._release(body_dest)
        self.emitter.emit(Instruction.three(
            int(Op.ADD), index_slot, index_slot, step_operand))
        self.emitter.jump(loop_label)
        self.emitter.mark(end_label)
        self._release(test_slot)
        if step is not None:
            self._release(step_operand)
        self._release(stop_operand)
        nil_const = self.compiler.constant_operand(NIL)
        self.emitter.emit(Instruction.three(
            int(Op.MOVE), dest, nil_const, _DONT_CARE))

    def _inline_times_repeat(self, count, block: BlockNode,
                             dest: Operand) -> None:
        counter = self._scratch()
        zero = self.compiler.constant_operand(Word.small_integer(0))
        one = self.compiler.constant_operand(Word.small_integer(1))
        self._compile_expression_into(count, counter)
        loop_label = self.emitter.new_label("times")
        end_label = self.emitter.new_label("endtimes")
        test_slot = self._scratch()
        self.emitter.mark(loop_label)
        self.emitter.emit(Instruction.three(
            int(Op.LT), test_slot, counter, one))
        self.emitter.jump_if(test_slot, end_label)
        body_dest = self._scratch()
        self._compile_block_value(block, body_dest)
        self._release(body_dest)
        self.emitter.emit(Instruction.three(
            int(Op.SUB), counter, counter, one))
        self.emitter.jump(loop_label)
        self.emitter.mark(end_label)
        self._release(test_slot)
        self._release(counter)
        nil_const = self.compiler.constant_operand(NIL)
        self.emitter.emit(Instruction.three(
            int(Op.MOVE), dest, nil_const, _DONT_CARE))

    def _inline_and_or(self, selector: str, left, block: BlockNode,
                       dest: Operand) -> None:
        self._compile_expression_into(left, dest)
        end_label = self.emitter.new_label("shortcut")
        if selector == "and:":
            # dest false -> skip the block (answer false).
            inverted = self._scratch()
            self._invert(dest, inverted)
            self.emitter.jump_if(inverted, end_label)
            self._release(inverted)
        else:
            self.emitter.jump_if(dest, end_label)
        self._compile_block_value(block, dest)
        self.emitter.mark(end_label)


def compile_program(machine, source: str):
    """Compile Smalltalk source and install it; returns the main method."""
    return SmalltalkCompiler(machine).compile_program(source)
