"""Recursive-descent parser for the Smalltalk subset.

Standard Smalltalk precedence: unary sends bind tightest, then binary
sends (left-associative, no arithmetic precedence), then keyword sends.
Program structure uses three declaration forms::

    class Point extends Object fields: x y

    Point >> setX: ax y: ay
        x := ax. y := ay. ^self

    main | p |
        p := Point new.
        ^p norm2
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.smalltalk.lexer import Token, tokenize
from repro.smalltalk.nodes import (
    Assign,
    BlockNode,
    ClassDecl,
    ExprStmt,
    Literal,
    MainDecl,
    MethodDecl,
    Program,
    Return,
    Send,
    VarRef,
)

_SPECIALS = {"true": True, "false": False, "nil": None}


class Parser:
    """One-token-lookahead parser over the token list."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tok
        self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._tok
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            token = self._tok
            raise CompileError(
                f"line {token.line}: expected {text or kind}, "
                f"found {token.text!r}"
            )
        return self._advance()

    # -- program structure ------------------------------------------------------

    def parse_program(self) -> Program:
        classes: List[ClassDecl] = []
        methods: List[MethodDecl] = []
        main: Optional[MainDecl] = None
        while not self._check("eof"):
            if self._check("ident", "class"):
                classes.append(self._parse_class())
            elif self._check("ident", "main"):
                if main is not None:
                    raise CompileError("duplicate main")
                main = self._parse_main()
            elif self._check("ident"):
                methods.append(self._parse_method())
            else:
                token = self._tok
                raise CompileError(
                    f"line {token.line}: expected a declaration, "
                    f"found {token.text!r}"
                )
        return Program(classes, methods, main)

    def _parse_class(self) -> ClassDecl:
        self._expect("ident", "class")
        name = self._expect("ident").text
        superclass = None
        if self._accept("ident", "extends"):
            superclass = self._expect("ident").text
        fields: List[str] = []
        if self._accept("keyword", "fields:"):
            while self._check("ident") and not self._at_declaration_boundary():
                fields.append(self._advance().text)
        return ClassDecl(name, superclass, fields)

    def _parse_method(self) -> MethodDecl:
        class_name = self._expect("ident").text
        self._expect("arrow")
        selector, params = self._parse_pattern()
        temps = self._parse_temps()
        body = self._parse_statements(terminators=("eof", "_decl"))
        return MethodDecl(class_name, selector, params, temps, body)

    def _parse_pattern(self):
        if self._check("keyword"):
            selector = ""
            params: List[str] = []
            while self._check("keyword"):
                selector += self._advance().text
                params.append(self._expect("ident").text)
            return selector, params
        if self._check("binary"):
            selector = self._advance().text
            params = [self._expect("ident").text]
            return selector, params
        token = self._expect("ident")
        return token.text, []

    def _parse_main(self) -> MainDecl:
        self._expect("ident", "main")
        temps = self._parse_temps()
        body = self._parse_statements(terminators=("eof", "_decl"))
        return MainDecl(temps, body)

    def _parse_temps(self) -> List[str]:
        temps: List[str] = []
        if self._accept("bar"):
            while self._check("ident"):
                temps.append(self._advance().text)
            self._expect("bar")
        return temps

    # -- statements ------------------------------------------------------------

    def _at_declaration_boundary(self) -> bool:
        """True when the next tokens start a new top-level declaration."""
        token = self._tok
        if token.kind != "ident":
            return False
        if token.text in ("class", "main"):
            return True
        nxt = self._tokens[self._pos + 1]
        return nxt.kind == "arrow"

    def _parse_statements(self, terminators) -> List:
        statements: List = []
        while True:
            if self._check("eof") or self._check("rbracket"):
                break
            if "_decl" in terminators and self._at_declaration_boundary():
                break
            statements.append(self._parse_statement())
            if not self._accept("period"):
                break
        return statements

    def _parse_statement(self):
        if self._accept("caret"):
            return Return(self._parse_expression())
        if self._check("ident") and \
                self._tokens[self._pos + 1].kind == "assign":
            name = self._advance().text
            self._advance()   # :=
            return Assign(name, self._parse_expression())
        return ExprStmt(self._parse_expression())

    # -- expressions --------------------------------------------------------------

    def _parse_expression(self):
        return self._parse_keyword_send()

    def _parse_keyword_send(self):
        receiver = self._parse_binary_send()
        if not self._check("keyword"):
            return receiver
        selector = ""
        args = []
        while self._check("keyword"):
            selector += self._advance().text
            args.append(self._parse_binary_send())
        return Send(receiver, selector, args)

    def _parse_binary_send(self):
        left = self._parse_unary_send()
        while self._check("binary"):
            selector = self._advance().text
            right = self._parse_unary_send()
            left = Send(left, selector, [right])
        return left

    def _parse_unary_send(self):
        receiver = self._parse_primary()
        while self._check("ident") and \
                self._tok.text not in ("class", "main") and \
                self._tokens[self._pos + 1].kind not in ("assign", "arrow"):
            receiver = Send(receiver, self._advance().text, [])
        return receiver

    def _parse_primary(self):
        token = self._tok
        if token.kind == "int":
            self._advance()
            return Literal(int(token.text), "int")
        if token.kind == "float":
            self._advance()
            return Literal(float(token.text), "float")
        if token.kind == "atom":
            self._advance()
            return Literal(token.text[1:], "atom")
        if token.kind == "ident":
            self._advance()
            if token.text in _SPECIALS:
                return Literal(token.text, "special")
            return VarRef(token.text)
        if token.kind == "lparen":
            self._advance()
            expression = self._parse_expression()
            self._expect("rparen")
            return expression
        if token.kind == "lbracket":
            return self._parse_block()
        raise CompileError(
            f"line {token.line}: unexpected token {token.text!r} "
            f"in expression"
        )

    def _parse_block(self) -> BlockNode:
        self._expect("lbracket")
        params: List[str] = []
        while self._check("blockarg"):
            params.append(self._advance().text[1:])
        if params:
            self._expect("bar")
        temps = self._parse_temps()
        body = self._parse_statements(terminators=())
        self._expect("rbracket")
        return BlockNode(params, temps, body)


def parse(source: str) -> Program:
    """Parse a whole program."""
    return Parser(source).parse_program()


def parse_expression(source: str):
    """Parse a single expression (testing convenience)."""
    parser = Parser(source)
    expression = parser._parse_expression()
    parser._expect("eof")
    return expression
