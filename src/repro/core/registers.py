"""Processor state: the six COM registers (paper section 3.2).

"The processor state of the COM consists of only six registers: the
context pointer (CP), the next context pointer (NCP), the free context
pointer (FP), the instruction pointer (IP), the team space number (SN),
and process status (PS).  Only the CP needs to be saved on a method
call.  The CP, SN, and PS registers must be saved on a process switch."

CP, NCP and IP are additionally *pretranslated* -- their absolute
translations are cached in special hardware registers (section 3.1) --
which we model by carrying the absolute base alongside each virtual
pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.fpa import FPAddress


@dataclass
class ProcessStatus:
    """The PS register: mode bits relevant to the simulator.

    ``privileged`` gates the ``as`` instruction (capability forging);
    ``halted`` stops instruction issue; ``condition`` is scratch state
    some trap handlers use.
    """

    privileged: bool = False
    halted: bool = False
    trap_pending: bool = False

    def pack(self) -> int:
        return (
            int(self.privileged)
            | (int(self.halted) << 1)
            | (int(self.trap_pending) << 2)
        )

    @staticmethod
    def unpack(bits: int) -> "ProcessStatus":
        return ProcessStatus(
            privileged=bool(bits & 1),
            halted=bool(bits & 2),
            trap_pending=bool(bits & 4),
        )


@dataclass
class PretranslatedPointer:
    """A virtual pointer plus its cached absolute translation."""

    virtual: Optional[FPAddress] = None
    absolute: Optional[int] = None

    def set(self, virtual: FPAddress, absolute: int) -> None:
        self.virtual = virtual
        self.absolute = absolute

    def clear(self) -> None:
        self.virtual = None
        self.absolute = None

    @property
    def is_set(self) -> bool:
        return self.virtual is not None


@dataclass
class RegisterFile:
    """The architected registers plus their pretranslation shadows."""

    cp: PretranslatedPointer = field(default_factory=PretranslatedPointer)
    ncp: PretranslatedPointer = field(default_factory=PretranslatedPointer)
    ip: Optional[FPAddress] = None
    sn: int = 0
    ps: ProcessStatus = field(default_factory=ProcessStatus)

    def process_switch_state(self) -> dict:
        """The registers that must be saved on a process switch."""
        return {"cp": self.cp.virtual, "sn": self.sn, "ps": self.ps.pack()}
