"""Binary encoding of COM instructions.

All instructions are 32 bits (section 3.3).  The paper's figure 4
prints the three-operand format with a 12-bit opcode and three 8-bit
descriptors (36 bits); we follow the *text* -- 32 bits -- with this
layout (documented deviation, see DESIGN.md):

    three-operand:  R<1> F=0<1> OP<9> A<7> B<7> C<7>
    zero-operand:   R<1> F=1<1> OP<9> N<2> IMM<19>

``R`` is the return bit (section 3.5: a method returns by executing an
instruction with the return bit set).  ``F`` selects the format.  For
zero-operand instructions ``N`` says how many locals of the next
context are considered as operands for dispatch (zero, one or two --
section 3.5), and ``IMM`` is a signed immediate available to jumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import EncodingError
from repro.core.isa import OPCODE_BITS, NUM_OPCODES, Op, OpcodeTable
from repro.core.operands import OPERAND_BITS, Operand

_RET_SHIFT = 31
_FMT_SHIFT = 30
_OP_SHIFT = _FMT_SHIFT - OPCODE_BITS          # 21
_A_SHIFT = _OP_SHIFT - OPERAND_BITS           # 14
_B_SHIFT = _A_SHIFT - OPERAND_BITS            # 7
_C_SHIFT = 0
_NARGS_SHIFT = _OP_SHIFT - 2                  # 19
_IMM_BITS = _NARGS_SHIFT                      # 19
_IMM_MASK = (1 << _IMM_BITS) - 1
_OPERAND_MASK = (1 << OPERAND_BITS) - 1
_OP_MASK = NUM_OPCODES - 1

#: Shared memo for :meth:`Instruction.decode_cached`.
_DECODE_CACHE = {}
_DECODE_CACHE_LIMIT = 1 << 16


@dataclass(frozen=True)
class Instruction:
    """A decoded COM instruction.

    ``operands`` is a 3-tuple for the three-operand format and ``None``
    for the zero-operand format (which instead carries ``nargs`` and
    ``immediate``).
    """

    opcode: int
    operands: Optional[Tuple[Operand, Operand, Operand]] = None
    returns: bool = False
    nargs: int = 0
    immediate: int = 0

    def __post_init__(self):
        if not 0 <= self.opcode < NUM_OPCODES:
            raise EncodingError(f"opcode {self.opcode} out of range")
        if self.operands is not None and len(self.operands) != 3:
            raise EncodingError("three-operand format needs exactly 3 operands")
        if self.operands is None:
            if not 0 <= self.nargs <= 2:
                raise EncodingError(f"nargs {self.nargs} out of 0..2")
            half = 1 << (_IMM_BITS - 1)
            if not -half <= self.immediate < half:
                raise EncodingError(f"immediate {self.immediate} out of range")

    @property
    def is_zero_operand(self) -> bool:
        return self.operands is None

    # -- constructors ----------------------------------------------------

    @staticmethod
    def three(opcode: int, a: Operand, b: Operand, c: Operand,
              returns: bool = False) -> "Instruction":
        """A three-operand instruction ``a <- b OP c`` (or op-specific)."""
        return Instruction(opcode, (a, b, c), returns)

    @staticmethod
    def zero(opcode: int, nargs: int = 0, immediate: int = 0,
             returns: bool = False) -> "Instruction":
        """A zero-operand instruction (operands taken from next context)."""
        return Instruction(opcode, None, returns, nargs, immediate)

    # -- encoding ---------------------------------------------------------

    def encode(self) -> int:
        word = (int(self.returns) << _RET_SHIFT) | (
            (self.opcode & _OP_MASK) << _OP_SHIFT
        )
        if self.operands is not None:
            a, b, c = self.operands
            word |= a.encode() << _A_SHIFT
            word |= b.encode() << _B_SHIFT
            word |= c.encode() << _C_SHIFT
        else:
            word |= 1 << _FMT_SHIFT
            word |= (self.nargs & 0x3) << _NARGS_SHIFT
            word |= self.immediate & _IMM_MASK
        return word

    @staticmethod
    def decode(word: int) -> "Instruction":
        if not 0 <= word < (1 << 32):
            raise EncodingError(f"instruction word {word:#x} not 32 bits")
        returns = bool((word >> _RET_SHIFT) & 1)
        zero_format = bool((word >> _FMT_SHIFT) & 1)
        opcode = (word >> _OP_SHIFT) & _OP_MASK
        if zero_format:
            nargs = (word >> _NARGS_SHIFT) & 0x3
            if nargs == 3:
                raise EncodingError("nargs=3 is not encodable")
            immediate = word & _IMM_MASK
            half = 1 << (_IMM_BITS - 1)
            if immediate >= half:
                immediate -= 1 << _IMM_BITS
            return Instruction.zero(opcode, nargs, immediate, returns)
        a = Operand.decode((word >> _A_SHIFT) & _OPERAND_MASK)
        b = Operand.decode((word >> _B_SHIFT) & _OPERAND_MASK)
        c = Operand.decode((word >> _C_SHIFT) & _OPERAND_MASK)
        return Instruction.three(opcode, a, b, c, returns)

    @staticmethod
    def decode_cached(word: int) -> "Instruction":
        """Memoized :meth:`decode` for hot fetch paths.

        Instructions are frozen value objects, so sharing decode
        results is safe; a program's working set of distinct encodings
        is small.  The cache is bounded to keep pathological inputs
        (e.g. decoding random words) from growing it without limit.
        """
        inst = _DECODE_CACHE.get(word)
        if inst is None:
            inst = Instruction.decode(word)
            if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[word] = inst
        return inst

    # -- display ------------------------------------------------------------

    def mnemonic(self, table: Optional[OpcodeTable] = None) -> str:
        if table is not None:
            name = table.selector_of(self.opcode)
        else:
            op = Op(self.opcode) if self.opcode in Op._value2member_map_ else None
            name = op.name.lower() if op else f"op{self.opcode}"
        suffix = " ^" if self.returns else ""
        if self.operands is None:
            return f"{name}/{self.nargs} imm={self.immediate}{suffix}"
        a, b, c = self.operands
        return f"{name} {a},{b},{c}{suffix}"

    def __str__(self) -> str:
        return self.mnemonic()


def disassemble(words, table: Optional[OpcodeTable] = None):
    """Decode a sequence of 32-bit words into printable lines."""
    lines = []
    for index, word in enumerate(words):
        inst = Instruction.decode(word)
        lines.append(f"{index:4d}: {word:08x}  {inst.mnemonic(table)}")
    return lines
