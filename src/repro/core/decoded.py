"""Predecoded instruction streams for the COM interpreter.

The functional simulator's hottest path is :meth:`COMMachine.step`:
the seed re-decoded the same 32-bit word into frozen ``Instruction``/
``Operand`` dataclasses on every fetch, re-derived the architectural
:class:`~repro.core.isa.Op` three or four times per instruction, and
re-translated the IP through the MMU.  None of that work depends on
machine state -- a method's code is immutable between installation and
redefinition -- so it can be done once, when
:meth:`COMMachine.install_method` stores the method.

This module holds the result of that one-time work:

* :class:`DecodedInstruction` -- one instruction's *plan*: the decoded
  ``Instruction``, its memoized architectural op, the dispatch shape
  (which operand words form the ITLB key), precomputed operand slots,
  the destination-write shape, the RAW-hazard source set, and the
  pretranslated fall-through IP;
* :class:`DecodedMethod` -- a method's plan array plus the absolute
  base of its code segment (the IP-translation cache for straight-line
  fetch: ``absolute = base_absolute + offset`` with a descriptor
  validity check, no MMU walk);
* :class:`DecodedProgramCache` -- the per-machine registry, keyed by
  the code segment name and indexed by absolute code address for
  invalidation.

Invalidation rules (documented in DESIGN.md):

* **re-installation** -- ``install_method`` shoots down the redefined
  method's plans exactly like the existing ITLB selector shootdown;
* **heap writes** -- the machine registers :meth:`note_write` as an
  absolute-memory write watcher, so any store into predecoded code
  (e.g. ``at:put:`` into a method object) drops that method's plans;
* **frees** -- a freed block (method garbage-collected) drops any
  plans it covered via :meth:`note_free`;
* **segment moves** -- the fetch fast path revalidates the captured
  segment descriptor (base unchanged, no alias forward, readable)
  before trusting a plan, so grown/aliased code falls back to the
  slow path.

Every plan consumer preserves the seed's cycle accounting, trace
events and :class:`~repro.caches.stats.AccessProfile` tallies exactly;
``tests/test_predecode.py`` pins that equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.context import operand_slot
from repro.core.encoding import Instruction
from repro.core.isa import Op, architectural_op
from repro.core.operands import Mode, Operand, Space

#: Dispatch shapes: which operand words form the ITLB key (receiver
#: first), mirroring ``COMMachine._dispatch_sources``.
K_HALT = 0      # no dispatch; stops the machine
K_ZERO = 1      # zero-operand format: nargs next-context locals
K_SOURCES = 2   # three-operand format: read the plan's source list

#: Destination-write shapes, mirroring ``COMMachine._write_result`` /
#: ``_write_operand`` for a three-operand primitive result.
D_NONE = 0      # at:put: has no destination
D_ZERO = 1      # zero-operand: through the next context's result pointer
D_CUR0 = 2      # current-context slot 0: indirect through arg0 if pointer
D_CUR = 3       # current-context slot write
D_NEXT = 4      # next-context slot write
D_SLOW = 5      # constant-mode destination: defer to the slow writer (raises)

#: Ops whose sources are operands B and C, destination A (re-exported
#: by machine.py for its slow path).
BINARY_OPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
    Op.CARRY, Op.MULT1, Op.MULT2,
    Op.SHIFT, Op.ASHIFT, Op.ROTATE, Op.MASK,
    Op.AND, Op.OR, Op.XOR,
    Op.LT, Op.LE, Op.EQ, Op.SAME,
})
#: Ops whose single source is operand B, destination A.
UNARY_OPS = frozenset({Op.NEG, Op.NOT, Op.TAG, Op.MOVE})

#: Ops that never record a previous-destination for hazard tracking.
_NO_DEST_OPS = frozenset({Op.FJMP, Op.RJMP, Op.XFER, Op.HALT, Op.ATPUT})


def _source_operands(inst: Instruction, arch) -> Tuple[Operand, ...]:
    """The operands whose words form the ITLB key, receiver first."""
    a, b, c = inst.operands
    if arch in BINARY_OPS or arch is None:
        return (b, c)                 # user sends dispatch like binaries
    if arch in UNARY_OPS or arch is Op.MOVEA:
        return (b,)
    if arch is Op.AT or arch is Op.AS:
        return (b, c)
    if arch is Op.ATPUT:
        return (b, c, a)
    if arch in (Op.FJMP, Op.RJMP, Op.XFER):
        return (a,)
    return ()                          # HALT (three-operand spelling)


def _reader_of(operand: Operand) -> Tuple[bool, bool, int]:
    """(is_constant, is_current, table_index_or_context_slot)."""
    if operand.mode is Mode.CONSTANT:
        return (True, False, operand.offset)
    return (False, operand.space is Space.CURRENT,
            operand_slot(operand.offset))


class DecodedInstruction:
    """One instruction's execution plan (see module docstring)."""

    __slots__ = (
        "inst", "word", "opcode", "selector", "arch", "kind", "returns",
        "nargs", "sources", "dest_kind", "dest_slot", "hazards",
        "dest_prev", "next_ip",
    )

    def __init__(self, inst: Instruction, word: int, selector: str,
                 next_ip) -> None:
        self.inst = inst
        self.word = word
        self.opcode = inst.opcode
        self.selector = selector
        self.arch = arch = architectural_op(inst.opcode)
        self.returns = inst.returns
        self.nargs = inst.nargs
        self.next_ip = next_ip
        if arch is Op.HALT:
            self.kind = K_HALT
        elif inst.is_zero_operand:
            self.kind = K_ZERO
        else:
            self.kind = K_SOURCES
        if inst.is_zero_operand:
            self.sources: Tuple[Tuple[bool, bool, int], ...] = ()
            self.hazards: frozenset = frozenset()
            self.dest_kind = D_ZERO
            self.dest_slot = 0
            self.dest_prev = None
            return
        self.sources = tuple(
            _reader_of(op) for op in _source_operands(inst, arch))
        # RAW hazard: operands B/C reading the previous instruction's
        # context destination (COMMachine._check_raw_hazard).
        self.hazards = frozenset(
            (op.space.value, op.offset)
            for op in inst.operands[1:] if op.mode is Mode.CONTEXT
        )
        a = inst.operands[0]
        if arch is Op.ATPUT:
            self.dest_kind, self.dest_slot = D_NONE, 0
        elif a.mode is Mode.CONSTANT:
            self.dest_kind, self.dest_slot = D_SLOW, 0
        elif a.space is Space.CURRENT:
            if a.offset == 0:
                self.dest_kind = D_CUR0
            else:
                self.dest_kind = D_CUR
            self.dest_slot = operand_slot(a.offset)
        else:
            self.dest_kind, self.dest_slot = D_NEXT, operand_slot(a.offset)
        # Previous-destination bookkeeping (COMMachine._record_dest).
        if arch in _NO_DEST_OPS or a.mode is not Mode.CONTEXT:
            self.dest_prev = None
        else:
            self.dest_prev = (a.space.value, a.offset)


class DecodedMethod:
    """A method's predecoded plan array plus its pretranslated base."""

    __slots__ = ("segment_key", "base_absolute", "descriptor", "plans")

    def __init__(self, segment_key: Tuple[int, int], base_absolute: int,
                 descriptor, plans: List[Optional[DecodedInstruction]]) -> None:
        self.segment_key = segment_key
        self.base_absolute = base_absolute
        self.descriptor = descriptor
        self.plans = plans

    def is_valid(self) -> bool:
        """Whether the captured translation still holds (no move/alias)."""
        d = self.descriptor
        return (d.base == self.base_absolute and d.forward is None
                and d.capability_read)


class DecodedProgramCache:
    """Per-machine registry of predecoded methods.

    ``by_segment`` is consulted by the fetch fast path (one dict probe
    per instruction); ``_owner_of`` maps every covered absolute code
    address back to its method for write invalidation.
    """

    def __init__(self) -> None:
        self.by_segment: Dict[Tuple[int, int], DecodedMethod] = {}
        self._owner_of: Dict[int, Tuple[int, int]] = {}
        self.installs = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self.by_segment)

    def predecode(self, code_base, instructions, words, base_absolute,
                  descriptor, selector_of) -> DecodedMethod:
        """Build and register a method's plans.

        ``code_base`` is the method's virtual base address,
        ``instructions`` its decoded instructions, ``words`` the encoded
        32-bit values, ``selector_of`` the opcode-number -> selector map.
        """
        span = code_base.span
        plans: List[Optional[DecodedInstruction]] = []
        for index, (inst, word) in enumerate(zip(instructions, words)):
            # The fall-through IP is pretranslated here; the last slot
            # of a full segment has none (stepping past it must raise
            # exactly as the slow path would).
            next_ip = (code_base.step(index + 1)
                       if index + 1 < span else None)
            plans.append(DecodedInstruction(
                inst, word, selector_of(inst.opcode), next_ip))
        method = DecodedMethod(
            code_base.segment_name, base_absolute, descriptor, plans)
        self.install(method)
        return method

    def install(self, method: DecodedMethod) -> None:
        old = self.by_segment.get(method.segment_key)
        if old is not None:
            self._drop(old)
        self.by_segment[method.segment_key] = method
        for index in range(len(method.plans)):
            self._owner_of[method.base_absolute + index] = method.segment_key
        self.installs += 1

    # -- invalidation ------------------------------------------------------

    def _drop(self, method: DecodedMethod) -> None:
        self.by_segment.pop(method.segment_key, None)
        for index in range(len(method.plans)):
            self._owner_of.pop(method.base_absolute + index, None)
        self.invalidations += 1

    def invalidate_segment(self, segment_key: Tuple[int, int]) -> bool:
        """Shoot down one method's plans (method redefinition)."""
        method = self.by_segment.get(segment_key)
        if method is None:
            return False
        self._drop(method)
        return True

    def note_write(self, absolute: int) -> None:
        """Absolute-memory write watcher: drop plans covering ``absolute``."""
        owner = self._owner_of.get(absolute)
        if owner is not None:
            self.invalidate_segment(owner)

    def note_free(self, base: int, block_size: int) -> None:
        """Absolute-memory free watcher: drop plans inside the freed block."""
        if not self.by_segment:
            return
        end = base + block_size
        victims = [
            method for method in self.by_segment.values()
            if method.base_absolute < end
            and base < method.base_absolute + len(method.plans)
        ]
        for method in victims:
            self._drop(method)

    def flush(self) -> None:
        self.invalidations += len(self.by_segment)
        self.by_segment.clear()
        self._owner_of.clear()
