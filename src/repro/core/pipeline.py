"""Pipeline timing model (paper section 3.6, figure 6).

Instruction interpretation proceeds in five steps -- Fetch, Read, ITLB,
Op, Write -- pipelined so that a new instruction starts every two clock
cycles (the context cache can do two reads or one write per cycle, but
not both).  On top of that steady state the paper specifies:

* a taken branch is *delayed one clock cycle* (MIPS-style);
* the pipeline stalls on a miss in any cache and on ``at:``/
  ``at:put:`` memory cycles;
* a non-primitive method is detected in step three, flushes the next
  (already fetched) instruction and runs the call sequence: "a method
  call with no operands only delays execution four clock cycles: two to
  execute the instruction which caused the call, one for flushing the
  instruction in the pipeline, and one for performing the operations
  listed below.  An additional cycle is required for each operand
  copied to the next context";
* return "can be detected early in the pipeline [...] thus method
  returns cost only two clock cycles" -- the base cost, no extra;
* the compiler must keep an instruction from reading the previous
  instruction's result; we charge a one-cycle bubble when generated
  code violates that, standing in for the interlock the paper omits.

:class:`CycleAccountant` accumulates these costs as the functional
machine reports events; :func:`pipeline_diagram` renders the figure-6
style overlap picture for a short instruction sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: The five interpretation steps, in order.
STAGES = ("Fetch", "Read", "ITLB", "Op", "Write")


@dataclass
class CycleParams:
    """Tunable cost model; defaults follow the paper's stated numbers."""

    issue_cycles: int = 2              # steady-state cycles per instruction
    branch_penalty: int = 1            # taken-jump delay slot
    call_flush: int = 1                # flush of the prefetched instruction
    call_sequence: int = 1             # the bundled call operations
    operand_copy: int = 1              # per operand copied to the new context
    return_extra: int = 0              # returns cost only the base two cycles
    at_memory_stall: int = 1           # at:/at:put: wait for a memory cycle
    icache_miss: int = 4               # refill an instruction from memory
    itlb_miss_base: int = 6            # trap into the lookup routine
    itlb_miss_per_probe: int = 2       # per hash probe of a message dictionary
    context_fault: int = 16            # fault a 32-word context into the cache
    raw_hazard_bubble: int = 1         # interlock bubble (see module docstring)

    def call_overhead(self, operands_copied: int) -> int:
        """Extra cycles a call adds beyond its own issue slots.

        With the two issue cycles of the calling instruction included,
        a no-operand call totals 4 cycles, matching section 3.6.
        """
        return (
            self.call_flush
            + self.call_sequence
            + operands_copied * self.operand_copy
        )


@dataclass
class CycleAccountant:
    """Accumulates cycles and a breakdown of where they went."""

    params: CycleParams = field(default_factory=CycleParams)
    instructions: int = 0
    cycles: int = 0
    calls: int = 0
    returns: int = 0
    operands_copied: int = 0
    stalls: Dict[str, int] = field(default_factory=dict)

    def _stall(self, reason: str, cycles: int) -> None:
        if cycles <= 0:
            return
        self.cycles += cycles
        self.stalls[reason] = self.stalls.get(reason, 0) + cycles

    # -- events reported by the machine -------------------------------------

    def issue(self) -> None:
        """One instruction entered the pipeline (two-cycle issue slot)."""
        self.instructions += 1
        self.cycles += self.params.issue_cycles

    def taken_branch(self) -> None:
        self._stall("branch", self.params.branch_penalty)

    def memory_instruction(self) -> None:
        """An at: or at:put: instruction waited for a memory cycle."""
        self._stall("at_memory", self.params.at_memory_stall)

    def icache_miss(self) -> None:
        self._stall("icache_miss", self.params.icache_miss)

    def itlb_miss(self, dictionary_probes: int) -> None:
        """A full method lookup ran; cost scales with hash probes."""
        self._stall(
            "itlb_miss",
            self.params.itlb_miss_base
            + dictionary_probes * self.params.itlb_miss_per_probe,
        )

    def method_call(self, operands_copied: int) -> None:
        self.calls += 1
        self.operands_copied += operands_copied
        self._stall("call", self.params.call_overhead(operands_copied))

    def method_return(self) -> None:
        self.returns += 1
        self._stall("return", self.params.return_extra)

    def context_fault(self) -> None:
        self._stall("context_fault", self.params.context_fault)

    def raw_hazard(self) -> None:
        self._stall("raw_hazard", self.params.raw_hazard_bubble)

    # -- reporting -----------------------------------------------------------

    @property
    def cycles_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def snapshot(self) -> dict:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "cpi": self.cycles_per_instruction,
            "calls": self.calls,
            "returns": self.returns,
            "operands_copied": self.operands_copied,
            "stalls": dict(self.stalls),
        }

    def reset(self) -> None:
        self.instructions = 0
        self.cycles = 0
        self.calls = 0
        self.returns = 0
        self.operands_copied = 0
        self.stalls.clear()


def pipeline_schedule(
    count: int, issue_cycles: int = 2, stages=STAGES
) -> List[List[Optional[str]]]:
    """Stage occupancy for ``count`` back-to-back instructions.

    Returns a matrix indexed [cycle][stage-index] holding the label of
    the instruction occupying that stage ("i0", "i1", ...), mirroring
    figure 6 where instruction *i+1* reads its operands while *i* is in
    its ITLB step.
    """
    total_cycles = (count - 1) * issue_cycles + len(stages) if count else 0
    grid: List[List[Optional[str]]] = [
        [None] * len(stages) for _ in range(total_cycles)
    ]
    for i in range(count):
        start = i * issue_cycles
        for s, _stage in enumerate(stages):
            grid[start + s][s] = f"i{i}"
    return grid


def pipeline_diagram(count: int = 3, issue_cycles: int = 2) -> str:
    """An ASCII rendition of figure 6 for ``count`` instructions."""
    grid = pipeline_schedule(count, issue_cycles)
    width = 7
    header = "cycle | " + " ".join(stage.center(width) for stage in STAGES)
    lines = [header, "-" * len(header)]
    for cycle, row in enumerate(grid):
        cells = " ".join(
            (cell or "").center(width) for cell in row
        )
        lines.append(f"{cycle:5d} | {cells}")
    return "\n".join(lines)
