"""Contexts: fixed 32-word activation records (sections 2.3 and 4).

Layout (figure 8)::

    word 0   RCP   link to the sending context (an object pointer)
    word 1   RIP   return instruction pointer (method + offset)
    word 2   arg0  where to store the result (an effective address)
    word 3   arg1  receiver of the message
    word 4.. arg2..argN, then temporaries

Operand descriptors address slots starting at arg0, so operand offset
``k`` is physical word ``k + HEADER_WORDS``.

Contexts are all the same size so a single free list manages the pool;
with the free-list head in the FP register an allocation or free is one
memory reference.  Methods needing more than 32 words take the overflow
from the ordinary heap (tracked here for the TAB-CTX size-distribution
claim: for C, 90% of frames fit 32 words; Smalltalk methods are
smaller).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FreeListExhausted
from repro.memory.fpa import FPAddress
from repro.objects.heap import ObjectHeap
from repro.objects.model import ObjectClass

#: Total context size in words (section 2.3: "we chose a size of 32 words").
CONTEXT_WORDS = 32
#: Words reserved for the linkage header (RCP, RIP).
HEADER_WORDS = 2

#: Physical word indices of the named slots.
RCP_SLOT = 0
RIP_SLOT = 1
ARG0_SLOT = 2   # result pointer == operand offset 0
ARG1_SLOT = 3   # receiver       == operand offset 1


def operand_slot(offset: int) -> int:
    """Physical context word for an operand-descriptor offset."""
    return offset + HEADER_WORDS


@dataclass
class ContextPoolStats:
    """Free-list traffic counters."""

    allocated: int = 0
    freed: int = 0
    refills: int = 0
    high_water: int = 0
    overflow_allocations: int = 0   # frames that spilled to the heap


class ContextPool:
    """The free list of contexts, headed by the FP register.

    A pool pre-populates itself with heap-allocated context objects in
    batches; ``allocate`` pops the head (one memory reference in the
    COM) and ``free`` pushes.  Context objects are allocated through the
    heap with the context kind so allocation statistics see them.
    """

    def __init__(
        self,
        heap: ObjectHeap,
        context_class: ObjectClass,
        batch: int = 32,
        limit: Optional[int] = None,
    ) -> None:
        self.heap = heap
        self.context_class = context_class
        self.batch = batch
        self.limit = limit
        self.stats = ContextPoolStats()
        self._free: List[FPAddress] = []
        self._live = 0

    def _refill(self) -> None:
        if self.limit is not None:
            remaining = self.limit - (self._live + len(self._free))
            count = min(self.batch, remaining)
            if count <= 0:
                raise FreeListExhausted("context pool limit reached")
        else:
            count = self.batch
        self.stats.refills += 1
        for _ in range(count):
            address = self.heap.allocate_context(self.context_class, CONTEXT_WORDS)
            self._free.append(address)

    def allocate(self) -> FPAddress:
        """Pop a context off the free list (refilling when empty)."""
        if not self._free:
            self._refill()
        address = self._free.pop()
        self._live += 1
        self.stats.allocated += 1
        self.stats.high_water = max(self.stats.high_water, self._live)
        return address

    def free(self, address: FPAddress) -> None:
        """Push a context back on the free list."""
        self._free.append(address)
        self._live -= 1
        self.stats.freed += 1

    def note_overflow(self) -> None:
        """A method needed more than CONTEXT_WORDS words of frame."""
        self.stats.overflow_allocations += 1

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def live_count(self) -> int:
        return self._live


@dataclass
class FrameSizeHistogram:
    """Distribution of method frame sizes, for the 32-word design check.

    The paper justifies 32-word contexts with frame-size measurements
    (90% of C frames < 32 words; Smalltalk methods smaller still).  The
    compiler reports every method's frame need here.
    """

    counts: Dict[int, int] = field(default_factory=dict)

    def record(self, words: int) -> None:
        self.counts[words] = self.counts.get(words, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction_fitting(self, budget: int = CONTEXT_WORDS) -> float:
        """Fraction of recorded frames that fit in ``budget`` words."""
        if self.total == 0:
            return 0.0
        fitting = sum(n for size, n in self.counts.items() if size <= budget)
        return fitting / self.total

    def percentile(self, p: float) -> int:
        """Smallest frame size covering fraction ``p`` of methods."""
        if not 0 < p <= 1 or self.total == 0:
            return 0
        running = 0
        for size in sorted(self.counts):
            running += self.counts[size]
            if running / self.total >= p:
                return size
        return max(self.counts)
