"""The COM instruction set (paper section 3.3).

Every COM opcode is *abstract*: it is a message name, and what it does
depends on the classes of its operands.  The architecture ships a set
of opcodes with primitive methods for the common classes (arithmetic on
small integers and floats, moves, comparisons, ...); any opcode applied
to other classes, and any user-defined selector, resolves through the
ITLB to a defined method instead.

``OpcodeTable`` owns the opcode number space: architectural opcodes get
fixed low numbers and user selectors are assigned the remaining numbers
on demand (the compiler's "assembling opcodes" step from section 2.1).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional

from repro.errors import EncodingError

#: Bits in the opcode field of our 32-bit encoding (see encoding.py for
#: the full layout and the DESIGN.md note on the paper's 36-bit figure).
OPCODE_BITS = 9
NUM_OPCODES = 1 << OPCODE_BITS


class Op(enum.IntEnum):
    """Architectural opcodes with primitive methods (section 3.3)."""

    # Arithmetic -- small integer and (except modulo) floating point,
    # plus the primitive mixed-mode combinations.
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    MOD = 5
    NEG = 6
    # Multiple precision arithmetic support (small integer only).
    CARRY = 7
    MULT1 = 8
    MULT2 = 9
    # Logical and bit field instructions (small integers as bit fields).
    SHIFT = 10
    ASHIFT = 11
    ROTATE = 12
    MASK = 13
    AND = 14
    OR = 15
    NOT = 16
    XOR = 17
    # Comparisons -- small integer and floating point; SAME (same
    # object) is defined for all types.
    LT = 18
    LE = 19
    EQ = 20
    SAME = 21
    # Moves.  MOVE is defined for all types; MOVEA takes an effective
    # address; AT/ATPUT are the only memory-access instructions.
    MOVE = 22
    MOVEA = 23
    AT = 24
    ATPUT = 25
    # Tag access.  AS is conditionally privileged (capability forging).
    AS = 26
    TAG = 27
    # Control: jumps within a method, and the general context transfer.
    FJMP = 28
    RJMP = 29
    XFER = 30
    # Simulator control (not in the paper; ends a top-level program).
    HALT = 31


#: Canonical Smalltalk-ish selector spelling for each architectural opcode.
OP_SELECTORS: Dict[Op, str] = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.DIV: "/",
    Op.MOD: "\\\\", Op.NEG: "negated",
    Op.CARRY: "carry:", Op.MULT1: "mult1:", Op.MULT2: "mult2:",
    Op.SHIFT: "shift:", Op.ASHIFT: "ashift:", Op.ROTATE: "rotate:",
    Op.MASK: "mask:", Op.AND: "bitAnd:", Op.OR: "bitOr:",
    Op.NOT: "bitNot", Op.XOR: "bitXor:",
    Op.LT: "<", Op.LE: "<=", Op.EQ: "=", Op.SAME: "==",
    Op.MOVE: "move", Op.MOVEA: "movea",
    Op.AT: "at:", Op.ATPUT: "at:put:",
    Op.AS: "as:", Op.TAG: "tag",
    Op.FJMP: "fjmp", Op.RJMP: "rjmp", Op.XFER: "xfer",
    Op.HALT: "halt",
}

#: Opcodes whose execution never consults operand classes at all
#: (pure control / simulator plumbing).  Everything else dispatches.
CONTROL_OPS = frozenset({Op.XFER, Op.HALT})

#: Opcodes that read memory outside the contexts (pipeline stall source).
MEMORY_OPS = frozenset({Op.AT, Op.ATPUT})

#: Branch opcodes (one delay cycle in the pipeline, section 3.6).
BRANCH_OPS = frozenset({Op.FJMP, Op.RJMP})

#: First opcode number available for user-defined selectors.
FIRST_USER_OPCODE = 64

#: Memoized opcode-number -> Op member (or None) for the whole opcode
#: space.  The interpretation loop consults the architectural op of
#: every instruction several times per step; a flat table turns that
#: into a single index instead of an enum construction.
ARCHITECTURAL_OPS: tuple = tuple(
    Op(number) if (0 < number < FIRST_USER_OPCODE
                   and number in Op._value2member_map_) else None
    for number in range(NUM_OPCODES)
)


def architectural_op(number: int) -> Optional[Op]:
    """The :class:`Op` member for an architectural number, else None."""
    if 0 <= number < NUM_OPCODES:
        return ARCHITECTURAL_OPS[number]
    return None


class OpcodeTable:
    """Bidirectional map between opcode numbers and selector names.

    Architectural opcodes occupy numbers 1..63; user selectors are
    assigned 64 onward in first-come order, which makes compiled code
    deterministic for a given compilation order.
    """

    def __init__(self) -> None:
        self._by_number: Dict[int, str] = {}
        self._by_selector: Dict[str, int] = {}
        self._next_user = FIRST_USER_OPCODE
        for op in Op:
            self._bind(int(op), OP_SELECTORS[op])

    def _bind(self, number: int, selector: str) -> None:
        self._by_number[number] = selector
        self._by_selector[selector] = number

    def intern(self, selector: str) -> int:
        """Opcode number for a selector, assigning a fresh one if new."""
        number = self._by_selector.get(selector)
        if number is not None:
            return number
        if self._next_user >= NUM_OPCODES:
            raise EncodingError("user opcode space exhausted")
        number = self._next_user
        self._next_user += 1
        self._bind(number, selector)
        return number

    def selector_of(self, number: int) -> str:
        try:
            return self._by_number[number]
        except KeyError:
            raise EncodingError(f"unassigned opcode number {number}") from None

    def number_of(self, selector: str) -> Optional[int]:
        """Existing number for a selector, or None (no assignment)."""
        return self._by_selector.get(selector)

    def is_architectural(self, number: int) -> bool:
        return number < FIRST_USER_OPCODE and number in self._by_number

    def architectural_op(self, number: int) -> Optional[Op]:
        """The :class:`Op` member for an architectural number, else None."""
        return architectural_op(number)

    def selectors(self) -> Iterator[str]:
        return iter(self._by_selector)

    def __len__(self) -> int:
        return len(self._by_number)
