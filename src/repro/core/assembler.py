"""A textual assembler for COM programs.

The syntax follows the flavour of the paper's figure 9 compiled-code
listing.  One statement per line; ``;`` starts a comment; a trailing
``^`` sets the return bit.  Operands are ``cN`` (current context slot),
``nN`` (next context slot) or literals (integers, floats, ``true``,
``false``, ``nil``, ``#atom``), which are interned into the constant
table and addressed in constant mode.

Statement forms::

    c2 = c1 + c3          ; binary op (architectural or user selector)
    c2 = c1               ; move
    c2 = neg c1           ; unary op (neg, bitnot, tag)
    c2 = & c3             ; movea (effective address)
    c2 = c1 [ c3 ]        ; at:      (c2 <- field c3 of object c1)
    c1 [ c3 ] = c2        ; at:put:  (field c3 of object c1 <- c2)
    c2 = c1 as 1          ; as: (privileged retag)
    loop:                 ; label
    jt c2 loop            ; jump to label if c2 is true
    jf c2 done            ; jump to label if c2 is false (via eq/false)
    jmp loop              ; unconditional jump
    send foo: 2           ; zero-operand send, nargs=2
    xfer c2               ; transfer to context c2
    halt                  ; stop the simulator
    ret c2                ; return c2 (c0 = c2 with the return bit)
    ret                   ; bare return

Programs (see :func:`load_program`) add directives::

    class Point < Object
    method Point >> norm2 args=1 frame=8
        ...
    main
        ...
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AssemblerError
from repro.core.constants import ConstantTable, FALSE, NIL, TRUE
from repro.core.encoding import Instruction
from repro.core.isa import Op, OpcodeTable
from repro.core.operands import Operand
from repro.memory.tags import Word

#: Spellings accepted for binary architectural opcodes.
BINARY_OPS: Dict[str, Op] = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
    "mod": Op.MOD,
    "carry": Op.CARRY, "mult1": Op.MULT1, "mult2": Op.MULT2,
    "shift": Op.SHIFT, "ashift": Op.ASHIFT, "rotate": Op.ROTATE,
    "mask": Op.MASK,
    "band": Op.AND, "bor": Op.OR, "bxor": Op.XOR,
    "<": Op.LT, "<=": Op.LE, "=": Op.EQ, "eq": Op.EQ,
    "==": Op.SAME, "same": Op.SAME,
}

UNARY_OPS: Dict[str, Op] = {
    "neg": Op.NEG,
    "bitnot": Op.NOT,
    "tag": Op.TAG,
}

_LABEL_RE = re.compile(r"^(\w+):$")
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d+$")
_CTX_RE = re.compile(r"^[cn]\d+$")


@dataclass
class AssembledMethod:
    """One assembled method: its class, selector and instructions."""

    class_name: str
    selector: str
    instructions: List[Instruction]
    argument_count: int = 0
    frame_words: int = 32


@dataclass
class AssembledProgram:
    """A whole assembled program: class declarations, methods, main."""

    classes: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    methods: List[AssembledMethod] = field(default_factory=list)
    main: Optional[List[Instruction]] = None


class Assembler:
    """Two-pass assembler sharing a machine's opcode and constant tables."""

    def __init__(self, opcodes: OpcodeTable, constants: ConstantTable) -> None:
        self.opcodes = opcodes
        self.constants = constants

    # -- operand handling --------------------------------------------------

    def _literal_word(self, token: str) -> Optional[Word]:
        if token == "true":
            return TRUE
        if token == "false":
            return FALSE
        if token == "nil":
            return NIL
        if token.startswith("#"):
            return Word.atom(token[1:])
        if _INT_RE.match(token):
            return Word.small_integer(int(token))
        if _FLOAT_RE.match(token):
            return Word.floating(float(token))
        return None

    def operand(self, token: str) -> Operand:
        """Resolve an operand token to a descriptor."""
        if _CTX_RE.match(token):
            return Operand.parse(token)
        word = self._literal_word(token)
        if word is None:
            raise AssemblerError(f"unrecognised operand {token!r}")
        return Operand.constant(self.constants.intern(word))

    def _dest(self, token: str) -> Operand:
        op = self.operand(token)
        if op.mode.value == "constant":
            raise AssemblerError(f"destination {token!r} must be a context slot")
        return op

    # -- statement assembly --------------------------------------------------

    def _tokenize(self, line: str) -> List[str]:
        line = line.split(";", 1)[0]
        line = line.replace("[", " [ ").replace("]", " ] ").replace(",", " ")
        return line.split()

    def assemble_lines(self, lines: Sequence[str]) -> List[Instruction]:
        """Assemble a method body (labels resolved in a second pass)."""
        # Pass 1: collect statements and label positions.
        statements: List[List[str]] = []
        labels: Dict[str, int] = {}
        for raw in lines:
            tokens = self._tokenize(raw)
            if not tokens:
                continue
            match = _LABEL_RE.match(tokens[0]) if len(tokens) == 1 else None
            if match:
                name = match.group(1)
                if name in labels:
                    raise AssemblerError(f"duplicate label {name!r}")
                labels[name] = len(statements)
                continue
            statements.append(tokens)
        # Pass 2: emit instructions.
        return [
            self._assemble_statement(tokens, index, labels)
            for index, tokens in enumerate(statements)
        ]

    def _jump(self, cond: Operand, index: int, target: int) -> Instruction:
        displacement = target - (index + 1)
        if displacement >= 0:
            op, magnitude = Op.FJMP, displacement
        else:
            op, magnitude = Op.RJMP, -displacement
        disp_operand = Operand.constant(
            self.constants.intern(Word.small_integer(magnitude)))
        return Instruction.three(int(op), cond, Operand.current(0),
                                 disp_operand)

    def _assemble_statement(
        self, tokens: List[str], index: int, labels: Dict[str, int]
    ) -> Instruction:
        returns = False
        if tokens and tokens[-1] == "^":
            returns = True
            tokens = tokens[:-1]
        if not tokens:
            raise AssemblerError("empty statement with return marker")
        head = tokens[0]

        def label_target(name: str) -> int:
            if name not in labels:
                raise AssemblerError(f"undefined label {name!r}")
            return labels[name]

        if head == "halt":
            return Instruction.zero(int(Op.HALT), returns=False)
        if head == "ret":
            if returns:
                raise AssemblerError("ret already implies the return bit")
            if len(tokens) == 1:
                slot = Operand.current(1)
                return Instruction.three(int(Op.MOVE), slot, slot,
                                         Operand.current(0), returns=True)
            value = self.operand(tokens[1])
            return Instruction.three(int(Op.MOVE), Operand.current(0),
                                     value, Operand.current(0), returns=True)
        if head == "jmp":
            if len(tokens) != 2:
                raise AssemblerError("jmp takes one label")
            cond = Operand.constant(self.constants.intern(TRUE))
            inst = self._jump(cond, index, label_target(tokens[1]))
            return self._with_return(inst, returns)
        if head in ("jt", "jf"):
            if len(tokens) != 3:
                raise AssemblerError(f"{head} takes a condition and a label")
            cond = self.operand(tokens[1])
            if head == "jf":
                raise AssemblerError(
                    "jf requires an inverted condition; compute it with "
                    "'= false' and use jt")
            inst = self._jump(cond, index, label_target(tokens[2]))
            return self._with_return(inst, returns)
        if head == "send":
            if len(tokens) != 3 or not tokens[2].isdigit():
                raise AssemblerError("send takes a selector and an arg count")
            nargs = int(tokens[2])
            if nargs > 2:
                raise AssemblerError("send supports at most 2 dispatch args")
            opcode = self.opcodes.intern(tokens[1])
            return Instruction.zero(opcode, nargs=nargs, returns=returns)
        if head == "xfer":
            if len(tokens) != 2:
                raise AssemblerError("xfer takes one operand")
            target = self.operand(tokens[1])
            return Instruction.three(int(Op.XFER), target, target,
                                     Operand.current(0), returns=returns)

        # Bracket store:  obj [ idx ] = value
        if "[" in tokens and "=" in tokens and \
                tokens.index("[") < tokens.index("="):
            try:
                obj, lb, idx, rb, eq, value = tokens
                if (lb, rb, eq) != ("[", "]", "="):
                    raise ValueError
            except ValueError:
                raise AssemblerError(
                    f"bad at:put: statement: {' '.join(tokens)!r}") from None
            return Instruction.three(
                int(Op.ATPUT), self.operand(value), self.operand(obj),
                self.operand(idx), returns=returns)

        # Everything else is  dest = <rhs>
        if len(tokens) < 3 or tokens[1] != "=":
            raise AssemblerError(f"cannot parse statement {' '.join(tokens)!r}")
        dest = self._dest(tokens[0])
        rhs = tokens[2:]
        return self._assemble_assignment(dest, rhs, returns)

    def _with_return(self, inst: Instruction, returns: bool) -> Instruction:
        if not returns:
            return inst
        raise AssemblerError("jumps cannot carry the return bit")

    def _assemble_assignment(
        self, dest: Operand, rhs: List[str], returns: bool
    ) -> Instruction:
        if len(rhs) == 1:
            return Instruction.three(int(Op.MOVE), dest,
                                     self.operand(rhs[0]),
                                     Operand.current(0), returns=returns)
        if rhs[0] == "&" and len(rhs) == 2:
            return Instruction.three(int(Op.MOVEA), dest,
                                     self._dest(rhs[1]),
                                     Operand.current(0), returns=returns)
        if rhs[0] in UNARY_OPS and len(rhs) == 2:
            return Instruction.three(int(UNARY_OPS[rhs[0]]), dest,
                                     self.operand(rhs[1]),
                                     Operand.current(0), returns=returns)
        # Bracket load:  dest = obj [ idx ]
        if len(rhs) == 4 and rhs[1] == "[" and rhs[3] == "]":
            return Instruction.three(int(Op.AT), dest, self.operand(rhs[0]),
                                     self.operand(rhs[2]), returns=returns)
        if len(rhs) == 3 and rhs[1] == "as":
            return Instruction.three(int(Op.AS), dest, self.operand(rhs[0]),
                                     self.operand(rhs[2]), returns=returns)
        if len(rhs) == 3:
            left, op_token, right = rhs
            if op_token in BINARY_OPS:
                opcode = int(BINARY_OPS[op_token])
            else:
                opcode = self.opcodes.intern(op_token)
            return Instruction.three(opcode, dest, self.operand(left),
                                     self.operand(right), returns=returns)
        raise AssemblerError(f"cannot parse right-hand side {' '.join(rhs)!r}")


# ----------------------------------------------------------------------
# whole-program loading
# ----------------------------------------------------------------------

_METHOD_RE = re.compile(
    r"^method\s+(\w+)\s*>>\s*(\S+)"
    r"(?:\s+args=(\d+))?(?:\s+frame=(\d+))?\s*$"
)
_CLASS_RE = re.compile(r"^class\s+(\w+)(?:\s*<\s*(\w+))?\s*$")


def parse_program(source: str) -> "ProgramSource":
    """Split program text into class decls, method bodies and main."""
    classes: List[Tuple[str, Optional[str]]] = []
    methods: List[dict] = []
    main_lines: Optional[List[str]] = None
    current: Optional[List[str]] = None
    for raw in source.splitlines():
        line = raw.split(";", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        class_match = _CLASS_RE.match(stripped)
        method_match = _METHOD_RE.match(stripped)
        if class_match:
            classes.append((class_match.group(1), class_match.group(2)))
            current = None
        elif method_match:
            body: List[str] = []
            methods.append({
                "class_name": method_match.group(1),
                "selector": method_match.group(2),
                "argument_count": int(method_match.group(3) or 0),
                "frame_words": int(method_match.group(4) or 32),
                "lines": body,
            })
            current = body
        elif stripped == "main":
            main_lines = []
            current = main_lines
        else:
            if current is None:
                raise AssemblerError(
                    f"statement outside any method or main: {stripped!r}")
            current.append(stripped)
    return ProgramSource(classes, methods, main_lines)


@dataclass
class ProgramSource:
    """Parsed but not yet assembled program text."""

    classes: List[Tuple[str, Optional[str]]]
    methods: List[dict]
    main_lines: Optional[List[str]]


def load_program(machine, source: str):
    """Assemble and install a program on a machine; returns main.

    ``machine`` is a :class:`~repro.core.machine.COMMachine`.  Classes
    are defined (defaulting to Object as superclass), methods assembled
    and installed, and the ``main`` body installed as a method on
    Object named ``__main__``.
    """
    parsed = parse_program(source)
    assembler = Assembler(machine.opcodes, machine.constants)
    for name, super_name in parsed.classes:
        if name in machine.registry:
            continue
        superclass = (machine.registry.by_name(super_name)
                      if super_name else machine.object_class)
        machine.registry.define_class(name, superclass)
    for spec in parsed.methods:
        cls = machine.registry.by_name(spec["class_name"])
        instructions = assembler.assemble_lines(spec["lines"])
        machine.install_method(
            cls, spec["selector"], instructions,
            argument_count=spec["argument_count"],
            frame_words=spec["frame_words"],
        )
    if parsed.main_lines is None:
        raise AssemblerError("program has no main")
    main_instructions = assembler.assemble_lines(parsed.main_lines)
    return machine.install_method(
        machine.object_class, "__main__", main_instructions)
