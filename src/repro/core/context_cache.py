"""The context cache (paper sections 2.3 and 3.6, figure 7).

A set of fixed-size blocks, each holding one 32-word context, fronted
by an associative *directory* of absolute addresses and four *access
vectors*:

* ``current`` -- singleton set: the block of the current context;
* ``next`` -- singleton set: the block of the next context;
* ``free`` -- the set of unused blocks;
* ``match`` -- singleton set produced by a directory match.

Accesses to the current and next contexts bypass the directory
entirely (register-speed path used by the pipeline's operand fetch);
other contexts are found associatively by absolute address.  Because
the directory associates on *absolute* addresses the cache survives
process switches without invalidation, and because blocks need not be
contiguous it caches non-LIFO contexts that fragment the free list.

Block-clear circuitry zeroes a whole block in one operation, so a newly
allocated context is initialised for free.  A copy-back engine keeps a
couple of blocks free by retiring LRU contexts to memory concurrently
with execution (we account its traffic separately as background words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.caches.stats import CacheStats
from repro.errors import FreeListExhausted, ReproError
from repro.memory.tags import Word
from repro.core.context import CONTEXT_WORDS

#: Default geometry from the paper: 32 blocks of 32 words.
DEFAULT_BLOCKS = 32

#: Writer/loader signatures: move a whole context between cache and memory.
Writer = Callable[[int, List[Word]], None]
Loader = Callable[[int], List[Word]]


@dataclass
class ContextCacheStats:
    """Traffic counters specific to the context cache."""

    directory_hits: int = 0
    directory_misses: int = 0
    fast_reads: int = 0       # current/next vector accesses (no directory)
    fast_writes: int = 0
    block_clears: int = 0
    copybacks: int = 0        # blocks retired to memory
    copyback_words: int = 0   # background word traffic
    faults: int = 0           # contexts re-loaded from memory

    @property
    def directory_hit_ratio(self) -> float:
        total = self.directory_hits + self.directory_misses
        return self.directory_hits / total if total else 0.0


class ContextCache:
    """The dual-ported context cache.

    The cache is the authoritative holder of a resident context's words
    (write-back); ``writer``/``loader`` move 32-word images to and from
    the backing store on copy-back and fault-in.
    """

    def __init__(
        self,
        writer: Writer,
        loader: Loader,
        num_blocks: int = DEFAULT_BLOCKS,
        block_words: int = CONTEXT_WORDS,
        reserve: int = 2,
    ) -> None:
        if num_blocks < 3:
            raise ReproError("context cache needs at least 3 blocks")
        self.writer = writer
        self.loader = loader
        self.num_blocks = num_blocks
        self.block_words = block_words
        self.reserve = reserve
        self.stats = ContextCacheStats()
        self._data: List[List[Word]] = [
            [Word.uninitialized()] * block_words for _ in range(num_blocks)
        ]
        self._clear_template: List[Word] = [Word.uninitialized()] * block_words
        self._directory: Dict[int, int] = {}       # absolute base -> block
        self._base_of: List[Optional[int]] = [None] * num_blocks
        self._dirty: List[bool] = [False] * num_blocks
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._lru: List[int] = []                   # block use order, oldest first
        self.current: Optional[int] = None          # current vector (block index)
        self.next: Optional[int] = None             # next vector

    # -- vector bookkeeping -------------------------------------------------

    def _touch(self, block: int) -> None:
        if block in self._lru:
            self._lru.remove(block)
        self._lru.append(block)

    def _clear_block(self, block: int) -> None:
        # Slice-assign a prebuilt template: block clears happen on
        # every context allocation (the words are shared immutable
        # uninitialized singletons, as Word.uninitialized returns).
        self._data[block][:] = self._clear_template
        self.stats.block_clears += 1

    @property
    def free_vector(self) -> List[int]:
        """The set of currently free blocks."""
        return list(self._free)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def resident_bases(self) -> List[int]:
        """Absolute bases of all cached contexts."""
        return list(self._directory)

    def is_resident(self, base: int) -> bool:
        return base in self._directory

    # -- allocation (section 3.6) ----------------------------------------------

    def _take_free_block(self) -> int:
        if not self._free:
            self._evict_lru()
        if not self._free:
            raise FreeListExhausted("context cache has no evictable block")
        return self._free.pop()

    def allocate_next(self, absolute_base: int) -> int:
        """Allocate and clear a block for a new next context.

        "To allocate a new context as the next context, the first free
        bit of the free vector is set to zero and the corresponding bit
        of the next vector is set to one.  The new context is then
        cleared, and the absolute address is written into the
        directory."
        """
        if self.next is not None:
            raise ReproError("next vector already set; call/return first")
        block = self._take_free_block()
        self._clear_block(block)
        self._directory[absolute_base] = block
        self._base_of[block] = absolute_base
        self._dirty[block] = True   # freshly cleared image differs from memory
        self.next = block
        self._touch(block)
        self.ensure_reserve()
        return block

    def adopt_current(self, absolute_base: int) -> int:
        """Install a context as current directly (machine reset / process switch)."""
        block = self._directory.get(absolute_base)
        if block is None:
            block = self._fault_in(absolute_base)
        self.current = block
        self._touch(block)
        return block

    # -- call / return transitions ------------------------------------------------

    def on_call(self) -> None:
        """Method call: the next vector is moved to the current vector."""
        if self.next is None:
            raise ReproError("method call with no next context allocated")
        self.current = self.next
        self.next = None
        self._touch(self.current)

    def on_return(self, caller_base: int, *, reuse_current_as_next: bool) -> bool:
        """Method return: current moves back to next; directory sets current.

        ``reuse_current_as_next`` is False for non-LIFO (captured)
        contexts, whose block stays resident under its own address but
        leaves the next vector empty for a fresh allocation.  Returns
        True when the caller's context hit the directory, False when it
        had to be faulted in from memory.
        """
        returning = self.current
        if reuse_current_as_next:
            self.next = returning
        else:
            self.next = None
        block = self._directory.get(caller_base)
        hit = block is not None
        if hit:
            self.stats.directory_hits += 1
        else:
            self.stats.directory_misses += 1
            block = self._fault_in(caller_base)
        self.current = block
        self._touch(block)
        return hit

    def release(self, absolute_base: int) -> None:
        """A context died: free its block with no copy-back."""
        block = self._directory.pop(absolute_base, None)
        if block is None:
            return
        self._base_of[block] = None
        self._dirty[block] = False
        if block == self.current:
            self.current = None
        if block == self.next:
            self.next = None
        if block in self._lru:
            self._lru.remove(block)
        self._free.append(block)

    def rebind_next(self, old_base: int, new_base: int) -> None:
        """The reused next context got a new identity (fresh allocation)."""
        block = self._directory.pop(old_base, None)
        if block is None or block != self.next:
            raise ReproError("rebind_next must target the resident next context")
        self._directory[new_base] = block
        self._base_of[block] = new_base
        self._dirty[block] = True

    # -- word access ----------------------------------------------------------------

    def read_current(self, index: int) -> Word:
        """Fast-path read of the current context (current vector)."""
        if self.current is None:
            raise ReproError("no current context resident")
        self.stats.fast_reads += 1
        return self._data[self.current][index]

    def write_current(self, index: int, word: Word) -> None:
        if self.current is None:
            raise ReproError("no current context resident")
        self.stats.fast_writes += 1
        self._data[self.current][index] = word
        self._dirty[self.current] = True

    def read_next(self, index: int) -> Word:
        """Fast-path read of the next context (next vector)."""
        if self.next is None:
            raise ReproError("no next context resident")
        self.stats.fast_reads += 1
        return self._data[self.next][index]

    def write_next(self, index: int, word: Word) -> None:
        if self.next is None:
            raise ReproError("no next context resident")
        self.stats.fast_writes += 1
        self._data[self.next][index] = word
        self._dirty[self.next] = True

    def read_absolute(self, base: int, index: int) -> Optional[Word]:
        """Directory-matched read; None when the context is not resident."""
        block = self._directory.get(base)
        if block is None:
            self.stats.directory_misses += 1
            return None
        self.stats.directory_hits += 1
        self._touch(block)
        return self._data[block][index]

    def write_absolute(self, base: int, index: int, word: Word) -> bool:
        """Directory-matched write; False when not resident."""
        block = self._directory.get(base)
        if block is None:
            self.stats.directory_misses += 1
            return False
        self.stats.directory_hits += 1
        self._touch(block)
        self._data[block][index] = word
        self._dirty[block] = True
        return True

    # -- copy-back engine -------------------------------------------------------------

    def _evict_lru(self) -> None:
        """Retire the least recently used block that is not current/next."""
        for block in self._lru:
            if block in (self.current, self.next):
                continue
            self._copy_back(block)
            return
        raise FreeListExhausted("every context cache block is pinned")

    def _copy_back(self, block: int) -> None:
        base = self._base_of[block]
        if base is None:
            raise ReproError("copy-back of an unmapped block")
        if self._dirty[block]:
            self.writer(base, list(self._data[block]))
            self.stats.copybacks += 1
            self.stats.copyback_words += self.block_words
        del self._directory[base]
        self._base_of[block] = None
        self._dirty[block] = False
        self._lru.remove(block)
        self._free.append(block)

    def ensure_reserve(self) -> int:
        """Keep at least ``reserve`` blocks free (the concurrent engine).

        "When only two blocks are free in the context cache the cache
        begins copying the LRU context back to free additional blocks."
        Returns the number of blocks retired.
        """
        retired = 0
        while len(self._free) < self.reserve:
            before = len(self._free)
            self._evict_lru()
            retired += len(self._free) - before
        return retired

    def _fault_in(self, base: int) -> int:
        """Load a context image from memory into a fresh block."""
        block = self._take_free_block()
        words = self.loader(base)
        if len(words) != self.block_words:
            raise ReproError("loader returned wrong-size context image")
        self._data[block] = list(words)
        self._directory[base] = block
        self._base_of[block] = base
        self._dirty[block] = False
        self.stats.faults += 1
        self._touch(block)
        self.ensure_reserve()
        return block

    def flush_all(self) -> None:
        """Copy back every dirty block (e.g. before inspecting memory)."""
        for base in list(self._directory):
            block = self._directory[base]
            if self._dirty[block]:
                self.writer(base, list(self._data[block]))
                self.stats.copyback_words += self.block_words
                self._dirty[block] = False

    def image_of(self, base: int) -> Optional[List[Word]]:
        """A copy of a resident context's words (diagnostics)."""
        block = self._directory.get(base)
        return None if block is None else list(self._data[block])
