"""The Caltech Object Machine: a functional, cycle-accounted simulator.

This module wires every architectural piece together (paper section 3):

* tagged memory and three-level addressing (:mod:`repro.memory`);
* the ITLB resolving abstract instructions to methods (section 2.1);
* the context cache, free-list context pool and the call/return
  sequences of section 3.6;
* the five-step pipeline's cycle accounting (figure 6);
* an instruction cache on the fetch path;
* trace recording compatible with the section-5 experiments (one event
  per instruction: address, opcode, receiver class).

The machine executes real encoded 32-bit instructions out of method
objects stored in tagged memory.  Method dispatch is *always* abstract:
every instruction forms an ITLB key from its opcode and the classes of
its fetched operands, and either fires a function unit (primitive
methods) or performs the method-call sequence (defined methods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caches.icache import InstructionCache
from repro.caches.itlb import ITLB, ITLBEntry
from repro.caches.stats import AccessProfile
from repro.errors import (
    AliasTrap,
    DoesNotUnderstandTrap,
    EncodingError,
    MachineHalted,
    ProtectionTrap,
    ReproError,
    SimulationLimitExceeded,
    TagMismatch,
)
from repro.memory.fpa import FPAddress, address_format
from repro.memory.mmu import MMU
from repro.memory.physical import MemoryHierarchy
from repro.memory.tags import Tag, Word
from repro.objects.gc import ContextRecycler, MarkSweepCollector
from repro.objects.heap import ObjectHeap
from repro.objects.model import (
    ClassRegistry,
    DefinedMethod,
    LookupResult,
    ObjectClass,
    PrimitiveMethod,
)
from repro.core.constants import ConstantTable, is_true
from repro.core.context import (
    ARG0_SLOT,
    ARG1_SLOT,
    CONTEXT_WORDS,
    ContextPool,
    FrameSizeHistogram,
    RCP_SLOT,
    RIP_SLOT,
    operand_slot,
)
from repro.core.context_cache import ContextCache
from repro.core.decoded import (
    BINARY_OPS as _BINARY_OPS,
    D_CUR,
    D_CUR0,
    D_NEXT,
    D_SLOW,
    D_ZERO,
    DecodedProgramCache,
    K_HALT,
    K_ZERO,
    UNARY_OPS as _UNARY_OPS,
)
from repro.core.encoding import Instruction
from repro.core.isa import Op, OpcodeTable
from repro.core.operands import Mode, Operand, Space
from repro.core.pipeline import CycleAccountant, CycleParams
from repro.core.primitives import execute_unit
from repro.core.registers import RegisterFile
from repro.trace.columnar import TraceBuilder
from repro.trace.events import TraceEvent  # noqa: F401 (re-exported)


@dataclass
class CompiledMethod:
    """A method's code object plus its metadata."""

    selector: str
    code_address: FPAddress
    instruction_count: int
    argument_count: int = 0
    frame_words: int = CONTEXT_WORDS

    @property
    def entry(self) -> FPAddress:
        return self.code_address.base()


class COMMachine:
    """A complete COM system: processor, caches, memory and runtime."""

    def __init__(
        self,
        *,
        address_bits: int = 36,
        itlb_size: int = 512,
        itlb_associativity=2,
        icache_size: int = 4096,
        icache_associativity=2,
        context_blocks: int = 32,
        cycle_params: Optional[CycleParams] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        context_pool_limit: Optional[int] = None,
        predecode: bool = True,
    ) -> None:
        self.mmu = MMU(address_format(address_bits), hierarchy=hierarchy)
        self.registry = ClassRegistry()
        self.opcodes = OpcodeTable()
        self.constants = ConstantTable()
        self.heap = ObjectHeap(self.mmu, team=0)
        self.regs = RegisterFile()
        self.cycles = CycleAccountant(cycle_params or CycleParams())
        self.profile = AccessProfile()
        self.recycler = ContextRecycler()
        self.itlb = ITLB(itlb_size, itlb_associativity)
        self.icache = InstructionCache(icache_size, icache_associativity)
        self.frame_sizes = FrameSizeHistogram()
        self._bootstrap_classes()
        self.pool = ContextPool(self.heap, self.context_class,
                                limit=context_pool_limit)
        self.context_cache = ContextCache(
            self._context_writeback, self._context_load,
            num_blocks=context_blocks,
        )
        self.collector = MarkSweepCollector(self.heap)
        self.ip: Optional[FPAddress] = None
        self.halted = False
        self.trace: Optional[TraceBuilder] = None
        self._result_cell: Optional[FPAddress] = None
        self._methods: Dict[Tuple[int, str], CompiledMethod] = {}
        self._prev_dest: Optional[Tuple[str, int]] = None
        self.activation_count = 0
        #: Call depth of the running program (top-level frame = 1).
        self.depth = 0
        self.max_depth = 0
        #: Predecode layer: per-method instruction plans consulted by
        #: the fetch fast path.  Disable (predecode=False) to force the
        #: decode-every-step interpreter -- the equivalence tests run
        #: both and require identical cycles, profile and trace.
        self.predecode = predecode
        self.decoded = DecodedProgramCache()
        if predecode:
            self.mmu.absolute.watch_writes(self.decoded.note_write)
            self.mmu.absolute.watch_frees(self.decoded.note_free)
        #: Machine-level function units by name: replaces the former
        #: string-compare chain in _run_machine_unit with one dict
        #: lookup of a bound handler.
        self._machine_units = {
            "machine.movea": self._unit_movea,
            "machine.at": self._unit_at,
            "machine.atput": self._unit_atput,
            "machine.as": self._unit_as,
            "machine.fjmp": self._unit_fjmp,
            "machine.rjmp": self._unit_rjmp,
            "machine.xfer": self._unit_xfer,
            "machine.new": self._unit_new,
            "machine.newsize": self._unit_newsize,
        }

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def _bootstrap_classes(self) -> None:
        """Create the base class hierarchy and install primitive methods."""
        registry = self.registry
        self.object_class = registry.define_class("Object")
        # Primitive tag classes inherit the universal behaviour.
        for name in ("Uninitialized", "SmallInteger", "Float", "Atom",
                     "Instruction", "ObjectPointer"):
            registry.by_name(name).superclass = self.object_class
        self.context_class = registry.define_class(
            "Context", self.object_class, CONTEXT_WORDS)
        self.method_class = registry.define_class(
            "CompiledMethodObject", self.object_class)
        self.array_class = registry.define_class("Array", self.object_class)

        sel = lambda op: self.opcodes.selector_of(int(op))
        obj = self.object_class
        obj.define_primitive(sel(Op.MOVE), "move")
        obj.define_primitive(sel(Op.SAME), "cmp.same")
        obj.define_primitive(sel(Op.TAG), "tag")
        obj.define_primitive(sel(Op.AS), "machine.as")
        obj.define_primitive(sel(Op.MOVEA), "machine.movea")
        obj.define_primitive(sel(Op.AT), "machine.at")
        obj.define_primitive(sel(Op.ATPUT), "machine.atput")
        obj.define_primitive(sel(Op.XFER), "machine.xfer")

        integer = registry.by_name("SmallInteger")
        for op, unit in (
            (Op.ADD, "arith.add"), (Op.SUB, "arith.sub"),
            (Op.MUL, "arith.mul"), (Op.DIV, "arith.div"),
            (Op.MOD, "arith.mod"), (Op.NEG, "arith.neg"),
            (Op.CARRY, "mp.carry"), (Op.MULT1, "mp.mult1"),
            (Op.MULT2, "mp.mult2"),
            (Op.SHIFT, "bits.shift"), (Op.ASHIFT, "bits.ashift"),
            (Op.ROTATE, "bits.rotate"), (Op.MASK, "bits.mask"),
            (Op.AND, "bits.and"), (Op.OR, "bits.or"),
            (Op.NOT, "bits.not"), (Op.XOR, "bits.xor"),
            (Op.LT, "cmp.lt"), (Op.LE, "cmp.le"), (Op.EQ, "cmp.eq"),
            (Op.FJMP, "machine.fjmp"), (Op.RJMP, "machine.rjmp"),
        ):
            integer.define_primitive(sel(op), unit)

        floating = registry.by_name("Float")
        for op, unit in (
            (Op.ADD, "arith.add"), (Op.SUB, "arith.sub"),
            (Op.MUL, "arith.mul"), (Op.DIV, "arith.div"),
            (Op.NEG, "arith.neg"),
            (Op.LT, "cmp.lt"), (Op.LE, "cmp.le"), (Op.EQ, "cmp.eq"),
        ):
            floating.define_primitive(sel(op), unit)

        atom = registry.by_name("Atom")
        atom.define_primitive(sel(Op.EQ), "cmp.eq")
        # Classes are denoted by atoms at runtime; allocation is an
        # operating-system primitive the architecture leaves to
        # software (section 3: "the COM achieves flexibility by
        # providing only primitives").
        atom.define_primitive("new", "machine.new")
        atom.define_primitive("new:", "machine.newsize")
        # Jumps test boolean atoms as well as integers (section 3.3
        # defines them for integers; our compiler branches on the atoms
        # true/false that the comparison units produce).
        atom.define_primitive(sel(Op.FJMP), "machine.fjmp")
        atom.define_primitive(sel(Op.RJMP), "machine.rjmp")

    # ------------------------------------------------------------------
    # context plumbing
    # ------------------------------------------------------------------

    def _context_writeback(self, base: int, words: List[Word]) -> None:
        self.mmu.absolute.write_block(base, words)

    def _context_load(self, base: int) -> List[Word]:
        return self.mmu.absolute.read_block(base, CONTEXT_WORDS)

    def _translate(self, address: FPAddress, write: bool = False) -> int:
        """Virtual->absolute with one alias-forward retry (trap handler)."""
        try:
            return self.mmu.translate(self.heap.team, address, write=write).absolute
        except AliasTrap as trap:
            forwarded = trap.new_address.with_offset(0).step(address.offset)
            return self.mmu.translate(self.heap.team, forwarded,
                                      write=write).absolute

    def _allocate_next_context(self) -> None:
        address = self.pool.allocate()
        base = self._translate(address, write=True)
        self.context_cache.allocate_next(base)
        self.regs.ncp.set(address, base)
        if self.regs.cp.is_set:
            self.context_cache.write_next(
                RCP_SLOT,
                Word.pointer(self.regs.cp.virtual.packed,
                             self.context_class.class_tag),
            )

    def _release_context(self, address: FPAddress, base: int) -> None:
        self.context_cache.release(base)
        self.pool.free(address)

    # ------------------------------------------------------------------
    # program installation
    # ------------------------------------------------------------------

    def intern_selector(self, selector: str) -> int:
        """Opcode number for a selector (assigning one when new)."""
        return self.opcodes.intern(selector)

    def install_method(
        self,
        cls: ObjectClass,
        selector: str,
        instructions: Sequence[Instruction],
        argument_count: int = 0,
        frame_words: int = CONTEXT_WORDS,
    ) -> CompiledMethod:
        """Store a method's code in tagged memory and bind it to a class.

        Re-installation (redefinition) shoots down the stale ITLB
        entries for the selector -- the smooth-extensibility story of
        section 2.1: no caller's object code changes -- and, exactly
        like that shootdown, drops the replaced method's predecoded
        instruction plans (see :mod:`repro.core.decoded`).
        """
        opcode = self.opcodes.intern(selector)
        if not instructions:
            raise EncodingError(f"method {selector!r} has no instructions")
        code = self.heap.allocate(self.method_class, len(instructions),
                                  kind="method")
        words = []
        for index, inst in enumerate(instructions):
            word = inst.encode()
            words.append(word)
            self.heap.store(code, index, Word.instruction(word))
        compiled = CompiledMethod(
            selector, code, len(instructions), argument_count, frame_words)
        previous = self._methods.get((cls.class_tag, selector))
        cls.define_method(selector, compiled, argument_count)
        self.itlb.invalidate_selector(opcode)
        if previous is not None:
            self.decoded.invalidate_segment(
                previous.code_address.segment_name)
        if self.predecode:
            result = self.mmu.translate(self.heap.team, code)
            self.decoded.predecode(
                code, instructions, words, result.absolute,
                result.descriptor, self.opcodes.selector_of)
        self._methods[(cls.class_tag, selector)] = compiled
        self.frame_sizes.record(frame_words)
        if frame_words > CONTEXT_WORDS:
            self.pool.note_overflow()
        return compiled

    def method_for(self, cls: ObjectClass, selector: str) -> CompiledMethod:
        return self._methods[(cls.class_tag, selector)]

    # ------------------------------------------------------------------
    # trace support
    # ------------------------------------------------------------------

    def enable_trace(self) -> TraceBuilder:
        """Start recording (address, opcode, receiver class) events.

        The recorder is columnar (struct-of-arrays) but still quacks
        like a ``Sequence[TraceEvent]`` for inspection.
        """
        self.trace = TraceBuilder()
        return self.trace

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------

    def _read_operand(self, operand: Operand) -> Word:
        if operand.mode is Mode.CONSTANT:
            return self.constants.get(operand.offset)
        slot = operand_slot(operand.offset)
        if operand.space is Space.CURRENT:
            self.profile.context_reads += 1
            return self.context_cache.read_current(slot)
        self.profile.context_reads += 1
        return self.context_cache.read_next(slot)

    def _write_operand(self, operand: Operand, word: Word) -> None:
        if operand.mode is Mode.CONSTANT:
            raise EncodingError("constant operands are not writable")
        slot = operand_slot(operand.offset)
        if operand.space is Space.CURRENT:
            if operand.offset == 0:
                # Writes to arg0 indirect through the result pointer:
                # "the method indirects through the result pointer"
                # (section 4).  A non-pointer arg0 stores in place
                # (top-level frames hold their result locally).
                target = self.context_cache.read_current(ARG0_SLOT)
                if target.is_pointer:
                    self._store_through_pointer(target, word)
                    return
            self.profile.context_writes += 1
            self.context_cache.write_current(slot, word)
        else:
            self.profile.context_writes += 1
            self.context_cache.write_next(slot, word)

    def _effective_address(self, operand: Operand) -> FPAddress:
        """The virtual address of a context-mode operand's slot (movea)."""
        if operand.mode is Mode.CONSTANT:
            raise EncodingError("constants have no effective address")
        pointer = (self.regs.cp if operand.space is Space.CURRENT
                   else self.regs.ncp)
        if not pointer.is_set:
            raise ReproError("effective address taken with no context")
        return pointer.virtual.base().step(operand_slot(operand.offset))

    # -- memory routing (context cache first, then the hierarchy) ----------

    def _context_base_of(self, absolute: int) -> int:
        return absolute - (absolute % CONTEXT_WORDS)

    def _note_capture_if_context(self, word: Word) -> None:
        """Storing a context pointer into memory makes it non-LIFO."""
        if word.is_pointer and word.class_tag == self.context_class.class_tag:
            base = self.mmu.fmt.from_packed(word.value).base().packed
            self.recycler.note_capture(base)

    def _store_through_pointer(self, pointer: Word, word: Word) -> None:
        address = self.mmu.fmt.from_packed(pointer.value)
        absolute = self._translate(address, write=True)
        base = self._context_base_of(absolute)
        if self.context_cache.write_absolute(base, absolute - base, word):
            self.profile.context_writes += 1
            return
        self.profile.heap_writes += 1
        if self.mmu.hierarchy is not None:
            self.mmu.hierarchy.access(absolute, write=True)
        self.mmu.absolute.write(absolute, word)

    def _load_memory_word(self, address: FPAddress) -> Word:
        absolute = self._translate(address, write=False)
        base = self._context_base_of(absolute)
        cached = self.context_cache.read_absolute(base, absolute - base)
        if cached is not None:
            self.profile.context_reads += 1
            return cached
        self.profile.heap_reads += 1
        if self.mmu.hierarchy is not None:
            self.mmu.hierarchy.access(absolute, write=False)
        return self.mmu.absolute.read(absolute)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch_sources(
        self, inst: Instruction
    ) -> Tuple[List[Word], List[Operand]]:
        """Fetch the operand words that form the ITLB key, receiver first."""
        arch = self.opcodes.architectural_op(inst.opcode)
        if inst.is_zero_operand:
            words = []
            if inst.nargs >= 1:
                self.profile.context_reads += 1
                words.append(self.context_cache.read_next(ARG1_SLOT))
            if inst.nargs >= 2:
                self.profile.context_reads += 1
                words.append(self.context_cache.read_next(ARG1_SLOT + 1))
            return words, []
        a, b, c = inst.operands
        if arch in _BINARY_OPS or arch is None:
            # User three-operand sends dispatch like binary messages.
            return [self._read_operand(b), self._read_operand(c)], [b, c]
        if arch in _UNARY_OPS:
            return [self._read_operand(b)], [b]
        if arch is Op.MOVEA:
            return [self._read_operand(b)], [b]
        if arch is Op.AT:
            return [self._read_operand(b), self._read_operand(c)], [b, c]
        if arch is Op.ATPUT:
            return [
                self._read_operand(b), self._read_operand(c),
                self._read_operand(a),
            ], [b, c, a]
        if arch is Op.AS:
            return [self._read_operand(b), self._read_operand(c)], [b, c]
        if arch in (Op.FJMP, Op.RJMP):
            return [self._read_operand(a)], [a]
        if arch is Op.XFER:
            return [self._read_operand(a)], [a]
        return [], []   # HALT

    def _itlb_translate(self, inst: Instruction, sources: List[Word]):
        class_tags = tuple(word.class_tag for word in sources)
        selector = self.opcodes.selector_of(inst.opcode)

        def miss() -> LookupResult:
            receiver_tag = class_tags[0] if class_tags else \
                self.object_class.class_tag
            return self.registry.lookup_by_tag(selector, receiver_tag)

        outcome = self.itlb.translate(inst.opcode, class_tags, miss)
        if not outcome.hit:
            self.cycles.itlb_miss(outcome.lookup.probes)
        if self.trace is not None:
            receiver = class_tags[0] if class_tags else -1
            address = getattr(self, "_fetch_absolute", self.ip.packed)
            self.trace.record(address, inst.opcode, receiver)
        return outcome

    # ------------------------------------------------------------------
    # call / return / xfer
    # ------------------------------------------------------------------

    def _method_call(
        self,
        inst: Instruction,
        method: DefinedMethod,
        source_words: List[Word],
    ) -> None:
        compiled: CompiledMethod = method.code
        copies = 0
        if not inst.is_zero_operand:
            # The processor expands the operands into words and copies
            # them to the new context: arg0 = effective address of the
            # destination, arg1.. = source values (section 3.5).
            a = inst.operands[0]
            result_pointer = Word.pointer(
                self._effective_address(a).packed,
                self.context_class.class_tag,
            )
            self.profile.context_writes += 1
            self.context_cache.write_next(ARG0_SLOT, result_pointer)
            copies += 1
            for index, word in enumerate(source_words):
                self.profile.context_writes += 1
                self.context_cache.write_next(ARG1_SLOT + index, word)
                copies += 1
        self.cycles.method_call(copies)
        # Save the continuation in the calling context's RIP.
        return_ip = self.ip.step(1)
        self.profile.context_writes += 1
        self.context_cache.write_current(
            RIP_SLOT,
            Word.pointer(return_ip.packed, self.method_class.class_tag),
        )
        # CP <- NCP (the next context's RCP was written at allocation).
        self.context_cache.on_call()
        self.regs.cp.set(self.regs.ncp.virtual, self.regs.ncp.absolute)
        self.regs.ncp.clear()
        self._allocate_next_context()
        self.activation_count += 1
        self.recycler.note_allocation(self.regs.cp.virtual.packed)
        self.depth += 1
        self.max_depth = max(self.max_depth, self.depth)
        self.ip = compiled.entry
        self._prev_dest = None

    def _method_return(self) -> None:
        self.cycles.method_return()
        self.profile.context_reads += 1
        rcp = self.context_cache.read_current(RCP_SLOT)
        if not rcp.is_pointer:
            # Top-level return: nothing to return into.
            self.halted = True
            self.ip = None
            return
        returning_virtual = self.regs.cp.virtual
        returning_base = self.regs.cp.absolute
        caller_virtual = self.mmu.fmt.from_packed(rcp.value)
        caller_base = self._translate(caller_virtual)
        # The never-used next context of the returning method goes back
        # on the free list (one memory reference in the COM).
        old_next_virtual = self.regs.ncp.virtual
        old_next_base = self.regs.ncp.absolute
        self.regs.ncp.clear()
        self._release_context(old_next_virtual, old_next_base)
        lifo = self.recycler.on_return(returning_virtual.packed)
        hit = self.context_cache.on_return(
            caller_base, reuse_current_as_next=lifo)
        if not hit:
            self.cycles.context_fault()
        self.regs.cp.set(caller_virtual, caller_base)
        if lifo:
            # The returning context is immediately recycled as the next
            # context; its RCP already names the caller, so no write is
            # needed (section 3.6's return sequence).
            self.regs.ncp.set(returning_virtual, returning_base)
        else:
            self._allocate_next_context()
        self.depth -= 1
        self.profile.context_reads += 1
        rip = self.context_cache.read_current(RIP_SLOT)
        if not rip.is_pointer:
            raise ReproError("return into a context with no RIP")
        self.ip = self.mmu.fmt.from_packed(rip.value)
        self._prev_dest = None

    def _xfer(self, target: Word) -> None:
        """General control transfer to another context (Lampson XFER)."""
        if not target.is_pointer or \
                target.class_tag != self.context_class.class_tag:
            raise DoesNotUnderstandTrap(
                "xfer target is not a context",
                selector="xfer", receiver_class=None)
        target_virtual = self.mmu.fmt.from_packed(target.value).base()
        target_base = self._translate(target_virtual)
        self.recycler.note_capture(target_virtual.packed)
        self.recycler.note_capture(self.regs.cp.virtual.packed)
        # Save our continuation so control can transfer back.
        self.profile.context_writes += 1
        self.context_cache.write_current(
            RIP_SLOT,
            Word.pointer(self.ip.step(1).packed, self.method_class.class_tag),
        )
        self.context_cache.adopt_current(target_base)
        self.regs.cp.set(target_virtual, target_base)
        self.profile.context_reads += 1
        rip = self.context_cache.read_current(RIP_SLOT)
        if not rip.is_pointer:
            raise ReproError("xfer into a context with no RIP")
        self.ip = self.mmu.fmt.from_packed(rip.value)
        self._prev_dest = None

    # ------------------------------------------------------------------
    # machine-level primitive units
    # ------------------------------------------------------------------

    def _run_machine_unit(
        self, unit: str, inst: Instruction, sources: List[Word]
    ) -> bool:
        """Execute a primitive that needs machine state.

        Returns True when the unit changed control flow (IP already
        set); False when the default IP increment should happen.  The
        units live in ``self._machine_units``, a dict of bound
        handlers keyed by unit name.
        """
        handler = self._machine_units.get(unit)
        if handler is None:
            raise TagMismatch(f"unknown machine unit {unit!r}")
        return handler(inst, sources)

    def _unit_movea(self, inst: Instruction, sources: List[Word]) -> bool:
        address = self._effective_address(inst.operands[1])
        self._write_operand(
            inst.operands[0],
            Word.pointer(address.packed, self.context_class.class_tag))
        return False

    def _unit_at(self, inst: Instruction, sources: List[Word]) -> bool:
        obj, index = sources[0], sources[1]
        if not obj.is_pointer or not index.is_small_integer:
            raise TagMismatch("at: needs (pointer, small integer)")
        self.cycles.memory_instruction()
        word = self._load_memory_word(
            self.mmu.fmt.from_packed(obj.value).step(index.value))
        self._write_operand(inst.operands[0], word)
        return False

    def _unit_atput(self, inst: Instruction, sources: List[Word]) -> bool:
        obj, index, value = sources[0], sources[1], sources[2]
        if not obj.is_pointer or not index.is_small_integer:
            raise TagMismatch("at:put: needs (pointer, small integer)")
        self.cycles.memory_instruction()
        self._note_capture_if_context(value)
        self._store_through_pointer(
            Word.pointer(
                self.mmu.fmt.from_packed(obj.value)
                    .step(index.value).packed,
                obj.class_tag),
            value)
        return False

    def _unit_as(self, inst: Instruction, sources: List[Word]) -> bool:
        if not self.regs.ps.privileged:
            raise ProtectionTrap(
                "the as instruction is privileged (capability forging)")
        value, tag_word = sources[0], sources[1]
        if not tag_word.is_small_integer:
            raise TagMismatch("as: needs a small integer tag")
        tag = Tag(tag_word.value)
        if tag is Tag.OBJECT_POINTER:
            retagged = Word.pointer(int(value.value),
                                    self.object_class.class_tag)
        else:
            retagged = Word(tag, value.value)
        self._write_operand(inst.operands[0], retagged)
        return False

    def _unit_fjmp(self, inst: Instruction, sources: List[Word]) -> bool:
        displacement = self._read_operand(inst.operands[2])
        if not displacement.is_small_integer:
            raise TagMismatch("jump displacement must be an integer")
        if is_true(sources[0]):
            self.ip = self.ip.step(1 + displacement.value)
            self.cycles.taken_branch()
            self._prev_dest = None
            return True
        return False

    def _unit_rjmp(self, inst: Instruction, sources: List[Word]) -> bool:
        displacement = self._read_operand(inst.operands[2])
        if not displacement.is_small_integer:
            raise TagMismatch("jump displacement must be an integer")
        if is_true(sources[0]):
            self.ip = self.ip.step(1 - displacement.value)
            self.cycles.taken_branch()
            self._prev_dest = None
            return True
        return False

    def _unit_xfer(self, inst: Instruction, sources: List[Word]) -> bool:
        self._xfer(sources[0])
        return True

    def _unit_new(self, inst: Instruction, sources: List[Word]) -> bool:
        cls = self._class_from_atom(sources[0])
        instance = self.heap.allocate(cls, max(cls.instance_size, 1))
        self._write_result_or_operand(inst, self.heap.pointer_to(instance))
        return False

    def _unit_newsize(self, inst: Instruction, sources: List[Word]) -> bool:
        cls = self._class_from_atom(sources[0])
        size = sources[1]
        if not size.is_small_integer or size.value < 0:
            raise TagMismatch("new: needs a non-negative size")
        instance = self.heap.allocate(cls, max(size.value, 1))
        self._write_result_or_operand(inst, self.heap.pointer_to(instance))
        return False

    def _class_from_atom(self, word: Word) -> ObjectClass:
        if word.tag is not Tag.ATOM or word.value not in self.registry:
            raise TagMismatch(f"not a class atom: {word!r}")
        return self.registry.by_name(word.value)

    def _write_result_or_operand(self, inst: Instruction, word: Word) -> None:
        """Destination write that also works for zero-operand formats."""
        if inst.is_zero_operand:
            self._write_result(inst, word)
        else:
            self._write_operand(inst.operands[0], word)

    # ------------------------------------------------------------------
    # the interpretation loop
    # ------------------------------------------------------------------

    def _fetch(self) -> Instruction:
        # The instruction cache holds absolute addresses: methods are
        # packed densely in absolute space, which is what a hardware
        # icache would index (virtual code addresses put segment bits
        # in the high bits and would alias every method's entry point
        # onto the same sets).  The IP is pretranslated (section 3.1),
        # so this lookup costs nothing extra.
        absolute = self._translate(self.ip)
        self._fetch_absolute = absolute
        if not self.icache.reference(absolute):
            self.cycles.icache_miss()
        self.profile.instruction_fetches += 1
        word = self.mmu.absolute.read(absolute)
        if word.tag is not Tag.INSTRUCTION:
            raise ProtectionTrap(
                f"attempt to execute non-instruction word at {self.ip!r}")
        return Instruction.decode_cached(word.value)

    def _check_raw_hazard(self, inst: Instruction) -> None:
        if self._prev_dest is None or inst.is_zero_operand:
            return
        for operand in inst.operands[1:]:
            if operand.mode is Mode.CONTEXT and \
                    (operand.space.value, operand.offset) == self._prev_dest:
                self.cycles.raw_hazard()
                break

    def step(self) -> None:
        """Interpret one instruction.

        The fast path consults the predecode layer: when the IP falls
        inside a predecoded method whose code segment still translates
        to the captured absolute base, :meth:`_step_decoded` executes
        the instruction's plan with no MMU walk and no word decode.
        Everything else (predecode disabled, plan shot down, code
        outside installed methods) takes the seed's decode-every-step
        path below; both paths produce identical cycles, profile
        tallies and trace events.
        """
        if self.halted or self.ip is None:
            raise MachineHalted("machine is halted")
        if self.predecode:
            ip = self.ip
            exponent = ip.exponent
            mantissa = ip.mantissa
            method = self.decoded.by_segment.get(
                (exponent, mantissa >> exponent))
            if method is not None:
                base = method.base_absolute
                descriptor = method.descriptor
                offset = mantissa & ((1 << exponent) - 1)
                plans = method.plans
                # Inline DecodedMethod.is_valid: the captured
                # translation must still hold (no move, alias or
                # capability change since predecode).
                if (descriptor.base == base
                        and descriptor.forward is None
                        and descriptor.capability_read
                        and offset < len(plans)):
                    plan = plans[offset]
                    if plan is not None:
                        self._step_decoded(plan, base + offset)
                        return
        inst = self._fetch()
        self.cycles.issue()
        self._check_raw_hazard(inst)
        arch = self.opcodes.architectural_op(inst.opcode)
        if arch is Op.HALT:
            self.halted = True
            self.ip = None
            return
        sources, source_operands = self._dispatch_sources(inst)
        outcome = self._itlb_translate(inst, sources)
        control_transfer = False
        if outcome.entry.primitive:
            unit = outcome.entry.unit
            try:
                if unit.startswith("machine."):
                    control_transfer = self._run_machine_unit(
                        unit, inst, sources)
                else:
                    result = execute_unit(unit, sources)
                    self._write_result(inst, result)
            except TagMismatch:
                # The operand classes had no primitive meaning after
                # all: take the defined-method path via full lookup.
                self._dispatch_defined(inst, sources)
                control_transfer = True
        else:
            self._method_call(inst, outcome.entry.method, sources)
            control_transfer = True
        if not control_transfer:
            if inst.returns:
                self._method_return()
            else:
                self.ip = self.ip.step(1)
                self._record_dest(inst)
        # A control transfer with the return bit set (jump/xfer/call)
        # is a program error the assembler rejects; the transfer wins.

    def _step_decoded(self, plan, absolute: int) -> None:
        """Execute one predecoded instruction plan.

        Mirrors the interpretation loop above step for step -- every
        cycle charge, AccessProfile tally and trace event happens in
        the same order with the same values (pinned by
        tests/test_predecode.py).
        """
        self._fetch_absolute = absolute
        cycles = self.cycles
        if not self.icache.reference(absolute):
            cycles.icache_miss()
        profile = self.profile
        profile.instruction_fetches += 1
        cycles.issue()
        prev = self._prev_dest
        if prev is not None and prev in plan.hazards:
            cycles.raw_hazard()
        kind = plan.kind
        if kind == K_HALT:
            self.halted = True
            self.ip = None
            return
        cache = self.context_cache
        sources: List[Word] = []
        if kind == K_ZERO:
            if plan.nargs >= 1:
                profile.context_reads += 1
                sources.append(cache.read_next(ARG1_SLOT))
                if plan.nargs >= 2:
                    profile.context_reads += 1
                    sources.append(cache.read_next(ARG1_SLOT + 1))
        else:
            constants = self.constants
            for is_constant, is_current, index in plan.sources:
                if is_constant:
                    sources.append(constants.get(index))
                else:
                    profile.context_reads += 1
                    sources.append(cache.read_current(index) if is_current
                                   else cache.read_next(index))
        count = len(sources)
        if count == 2:
            class_tags = (sources[0].class_tag, sources[1].class_tag)
        elif count == 1:
            class_tags = (sources[0].class_tag,)
        elif count == 0:
            class_tags = ()
        else:
            class_tags = tuple(word.class_tag for word in sources)
        entry = self.itlb.probe_entry(plan.opcode, class_tags)
        if entry is None:
            receiver_tag = class_tags[0] if class_tags else \
                self.object_class.class_tag
            lookup = self.registry.lookup_by_tag(plan.selector, receiver_tag)
            entry = ITLBEntry.from_method(lookup.method)
            self.itlb.fill_entry(plan.opcode, class_tags, entry)
            cycles.itlb_miss(lookup.probes)
        if self.trace is not None:
            receiver = class_tags[0] if class_tags else -1
            self.trace.record(absolute, plan.opcode, receiver)
        inst = plan.inst
        if entry.primitive:
            unit = entry.unit
            handler = self._machine_units.get(unit)
            try:
                if handler is not None:
                    if handler(inst, sources):
                        return       # control transfer: IP already set
                else:
                    result = execute_unit(unit, sources)
                    dest = plan.dest_kind
                    if dest == D_CUR:
                        profile.context_writes += 1
                        cache.write_current(plan.dest_slot, result)
                    elif dest == D_ZERO:
                        profile.context_reads += 1
                        target = cache.read_next(ARG0_SLOT)
                        if target.is_pointer:
                            self._store_through_pointer(target, result)
                        else:
                            profile.context_writes += 1
                            cache.write_next(ARG0_SLOT, result)
                    elif dest == D_CUR0:
                        target = cache.read_current(ARG0_SLOT)
                        if target.is_pointer:
                            self._store_through_pointer(target, result)
                        else:
                            profile.context_writes += 1
                            cache.write_current(plan.dest_slot, result)
                    elif dest == D_NEXT:
                        profile.context_writes += 1
                        cache.write_next(plan.dest_slot, result)
                    elif dest == D_SLOW:
                        self._write_operand(inst.operands[0], result)
                    # D_NONE (at:put:): no destination.
            except TagMismatch:
                # The operand classes had no primitive meaning after
                # all: take the defined-method path via full lookup.
                self._dispatch_defined(inst, sources)
                return
        else:
            self._method_call(inst, entry.method, sources)
            return
        if plan.returns:
            self._method_return()
        elif plan.next_ip is not None:
            self.ip = plan.next_ip
            self._prev_dest = plan.dest_prev
        else:
            # Fall-through past the segment's last word: raise exactly
            # as the slow path's ip.step(1) would.
            self.ip = self.ip.step(1)

    def _record_dest(self, inst: Instruction) -> None:
        if inst.is_zero_operand:
            self._prev_dest = None
            return
        arch = self.opcodes.architectural_op(inst.opcode)
        if arch in (Op.FJMP, Op.RJMP, Op.XFER, Op.HALT, Op.ATPUT):
            self._prev_dest = None
            return
        a = inst.operands[0]
        if a.mode is Mode.CONTEXT:
            self._prev_dest = (a.space.value, a.offset)
        else:
            self._prev_dest = None

    def _write_result(self, inst: Instruction, result: Word) -> None:
        if inst.is_zero_operand:
            # Result goes through the next context's result pointer.
            self.profile.context_reads += 1
            target = self.context_cache.read_next(ARG0_SLOT)
            if target.is_pointer:
                self._store_through_pointer(target, result)
            else:
                self.profile.context_writes += 1
                self.context_cache.write_next(ARG0_SLOT, result)
            return
        arch = self.opcodes.architectural_op(inst.opcode)
        if arch is Op.ATPUT:
            return  # at:put: has no destination
        self._write_operand(inst.operands[0], result)

    def _dispatch_defined(self, inst: Instruction, sources: List[Word]) -> None:
        """Primitive unit refused the operands: full lookup, defined call."""
        selector = self.opcodes.selector_of(inst.opcode)
        receiver_tag = sources[0].class_tag if sources else \
            self.object_class.class_tag
        lookup = self.registry.lookup_by_tag(selector, receiver_tag)
        self.cycles.itlb_miss(lookup.probes)
        if isinstance(lookup.method, PrimitiveMethod):
            raise DoesNotUnderstandTrap(
                f"operands of {selector!r} fit no primitive and no "
                f"defined method",
                selector=selector,
                receiver_class=self.registry.by_tag(receiver_tag),
            )
        self._method_call(inst, lookup.method, sources)

    # ------------------------------------------------------------------
    # program execution
    # ------------------------------------------------------------------

    def start(self, main: CompiledMethod,
              arguments: Sequence[Word] = ()) -> None:
        """Set up the initial contexts and point the machine at ``main``.

        Re-starting releases any contexts left from a previous run (the
        caches stay warm -- deliberately, so repeated runs measure
        steady-state behaviour).
        """
        self.halted = False
        for pointer in (self.regs.ncp, self.regs.cp):
            if pointer.is_set:
                self._release_context(pointer.virtual, pointer.absolute)
                pointer.clear()
        self._prev_dest = None
        self._allocate_next_context()
        self.context_cache.on_call()
        self.regs.cp.set(self.regs.ncp.virtual, self.regs.ncp.absolute)
        self.regs.ncp.clear()
        self._allocate_next_context()
        self.activation_count += 1
        self.recycler.note_allocation(self.regs.cp.virtual.packed)
        self.depth = 1
        self.max_depth = 1
        # Top-level result convention: arg0 holds a pointer to a result
        # cell so a returning main stores its answer somewhere readable.
        self._result_cell = self.heap.allocate(self.array_class, 1,
                                               kind="result")
        self.context_cache.write_current(
            ARG0_SLOT,
            self.heap.pointer_to(self._result_cell),
        )
        for index, word in enumerate(arguments):
            self.context_cache.write_current(ARG1_SLOT + index, word)
        self.ip = main.entry

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Step until halt; returns the number of instructions executed."""
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise SimulationLimitExceeded(
                    f"exceeded budget of {max_instructions} instructions")
            self.step()
            executed += 1
        return executed

    def result(self) -> Word:
        """The word the top-level method stored through its result pointer."""
        if self._result_cell is None:
            raise MachineHalted("no program was started")
        return self.heap.load(self._result_cell, 0)

    def run_program(
        self,
        main: CompiledMethod,
        arguments: Sequence[Word] = (),
        max_instructions: int = 1_000_000,
    ) -> Word:
        """Convenience: start, run to halt, return the result word."""
        self.start(main, arguments)
        self.run(max_instructions)
        return self.result()
