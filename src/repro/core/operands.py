"""Operand descriptors: the two COM addressing modes (section 3.4).

Each of the (up to) three operand descriptors in an instruction selects
either

* **context mode** -- one bit picks the current or next context and the
  remaining bits are a positive offset into it, counted from the arg0
  slot (the two header words RCP/RIP are not operand-addressable); or
* **constant mode** -- legal only in the last descriptor; the bits
  index a small constant table holding frequently used constants
  (short integers, bit fields, and the objects true, false and nil).

Our descriptors are 7 bits wide (see encoding.py): one mode bit, and in
context mode one current/next bit plus a 5-bit offset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import EncodingError

#: Bits per operand descriptor in the 32-bit encoding.
OPERAND_BITS = 7
#: Operand-addressable slots per context (32 words minus RCP and RIP).
MAX_CONTEXT_OFFSET = 29
#: Entries in the constant table reachable from constant mode.
CONSTANT_TABLE_SIZE = 1 << (OPERAND_BITS - 1)


class Mode(enum.Enum):
    """Addressing mode of one operand descriptor."""

    CONTEXT = "context"
    CONSTANT = "constant"


class Space(enum.Enum):
    """Which context a context-mode descriptor addresses."""

    CURRENT = "current"
    NEXT = "next"


@dataclass(frozen=True)
class Operand:
    """A decoded operand descriptor."""

    mode: Mode
    space: Space = Space.CURRENT   # context mode only
    offset: int = 0                # context slot or constant index

    def __post_init__(self):
        if self.mode is Mode.CONTEXT:
            if not 0 <= self.offset <= MAX_CONTEXT_OFFSET:
                raise EncodingError(
                    f"context offset {self.offset} out of 0..{MAX_CONTEXT_OFFSET}"
                )
        else:
            if not 0 <= self.offset < CONSTANT_TABLE_SIZE:
                raise EncodingError(
                    f"constant index {self.offset} out of table range"
                )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def current(offset: int) -> "Operand":
        """Slot ``offset`` of the current context (c0, c1, ...)."""
        return Operand(Mode.CONTEXT, Space.CURRENT, offset)

    @staticmethod
    def next(offset: int) -> "Operand":
        """Slot ``offset`` of the next context (n0, n1, ...)."""
        return Operand(Mode.CONTEXT, Space.NEXT, offset)

    @staticmethod
    def constant(index: int) -> "Operand":
        """Entry ``index`` of the constant table (k0, k1, ...)."""
        return Operand(Mode.CONSTANT, Space.CURRENT, index)

    # -- encoding ----------------------------------------------------------

    def encode(self) -> int:
        """Pack into OPERAND_BITS bits."""
        if self.mode is Mode.CONSTANT:
            return (1 << (OPERAND_BITS - 1)) | self.offset
        bits = self.offset
        if self.space is Space.NEXT:
            bits |= 1 << (OPERAND_BITS - 2)
        return bits

    @staticmethod
    def decode(bits: int) -> "Operand":
        """Unpack from OPERAND_BITS bits.

        Operands are frozen value objects and the descriptor space is
        tiny (2**OPERAND_BITS encodings), so decoding returns interned
        instances from a precomputed table.
        """
        if not 0 <= bits < (1 << OPERAND_BITS):
            raise EncodingError(f"operand bits {bits:#x} out of range")
        operand = _DECODE_TABLE[bits]
        if operand is None:
            # Invalid encoding (e.g. context offset past the operand-
            # addressable slots): re-run the checked path for its error.
            return Operand._decode_bits(bits)
        return operand

    @staticmethod
    def _decode_bits(bits: int) -> "Operand":
        if bits & (1 << (OPERAND_BITS - 1)):
            return Operand.constant(bits & (CONSTANT_TABLE_SIZE - 1))
        space = Space.NEXT if bits & (1 << (OPERAND_BITS - 2)) else Space.CURRENT
        offset = bits & ((1 << (OPERAND_BITS - 2)) - 1)
        return Operand(Mode.CONTEXT, space, offset)

    # -- display -----------------------------------------------------------

    def __str__(self) -> str:
        if self.mode is Mode.CONSTANT:
            return f"k{self.offset}"
        prefix = "c" if self.space is Space.CURRENT else "n"
        return f"{prefix}{self.offset}"

    @staticmethod
    def parse(text: str) -> "Operand":
        """Parse the assembler spelling: c<k>, n<k> or k<k>."""
        text = text.strip()
        if len(text) < 2 or text[0] not in "cnk" or not text[1:].isdigit():
            raise EncodingError(f"bad operand spelling {text!r}")
        value = int(text[1:])
        if text[0] == "c":
            return Operand.current(value)
        if text[0] == "n":
            return Operand.next(value)
        return Operand.constant(value)


def _build_decode_table():
    table = []
    for bits in range(1 << OPERAND_BITS):
        try:
            table.append(Operand._decode_bits(bits))
        except EncodingError:
            table.append(None)      # invalid encoding: raises on use
    return tuple(table)


#: Interned decode results for every possible descriptor encoding.
_DECODE_TABLE = _build_decode_table()

#: The descriptor conventionally used for "operand absent".  The COM has
#: no unused-operand encoding; we reserve current-context slot 0 reads
#: as harmless and let the assembler emit c0 for don't-care positions.
DONT_CARE = Operand.current(0)
