"""Function units: the primitive methods of section 3.3.

When the ITLB resolves an abstract instruction to an entry whose
primitive bit is set, the method field "selects the result of a
function unit".  This module implements those units as pure functions
over tagged words:

* arithmetic on small integers and floats, including the primitive
  mixed-mode combinations;
* multiple-precision support (carry, mult1, mult2) on small integers;
* logical/bit-field operations treating small integers as 28-bit
  fields;
* comparisons on numbers, and the universal same-object comparison;
* moves and tag access.

A unit raises :class:`~repro.errors.TagMismatch` when handed operand
tags it does not implement; the machine treats that exactly like an
undefined (non-primitive) method and takes the method-call path, which
is the architecture's behaviour for non-primitive operand types.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import TagMismatch, TrapError
from repro.memory.tags import (
    SMALL_INTEGER_BITS,
    Tag,
    Word,
    fits_small_integer,
)
from repro.core.constants import boolean_word


class ArithmeticTrap(TrapError):
    """Division by zero or small-integer overflow in a function unit."""


_FIELD_MASK = (1 << SMALL_INTEGER_BITS) - 1
_SIGN_BIT = 1 << (SMALL_INTEGER_BITS - 1)


def _to_field(value: int) -> int:
    """Signed small integer -> unsigned 28-bit field."""
    return value & _FIELD_MASK


def _from_field(field: int) -> int:
    """Unsigned 28-bit field -> signed small integer."""
    field &= _FIELD_MASK
    return field - (1 << SMALL_INTEGER_BITS) if field & _SIGN_BIT else field


def _int_result(value: int) -> Word:
    if not fits_small_integer(value):
        raise ArithmeticTrap(f"small integer overflow: {value}")
    return Word.small_integer(value)


def _numeric(word: Word) -> float:
    if word.tag is Tag.SMALL_INTEGER or word.tag is Tag.FLOAT:
        return word.value
    raise TagMismatch(f"not a number: {word!r}")


def _both_ints(a: Word, b: Word) -> bool:
    return a.tag is Tag.SMALL_INTEGER and b.tag is Tag.SMALL_INTEGER


def _require_numbers(*words: Word) -> None:
    for word in words:
        if word.tag not in (Tag.SMALL_INTEGER, Tag.FLOAT):
            raise TagMismatch(f"numeric unit got {word.tag.name}")


def _require_ints(*words: Word) -> None:
    for word in words:
        if word.tag is not Tag.SMALL_INTEGER:
            raise TagMismatch(f"integer unit got {word.tag.name}")


# -- arithmetic ----------------------------------------------------------------


def unit_add(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    if _both_ints(a, b):
        return _int_result(a.value + b.value)
    return Word.floating(_numeric(a) + _numeric(b))


def unit_sub(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    if _both_ints(a, b):
        return _int_result(a.value - b.value)
    return Word.floating(_numeric(a) - _numeric(b))


def unit_mul(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    if _both_ints(a, b):
        return _int_result(a.value * b.value)
    return Word.floating(_numeric(a) * _numeric(b))


def unit_div(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    if _both_ints(a, b):
        if b.value == 0:
            raise ArithmeticTrap("integer division by zero")
        # Truncate toward zero, as hardware dividers do.
        quotient = abs(a.value) // abs(b.value)
        if (a.value < 0) != (b.value < 0):
            quotient = -quotient
        return _int_result(quotient)
    if _numeric(b) == 0.0:
        raise ArithmeticTrap("float division by zero")
    return Word.floating(_numeric(a) / _numeric(b))


def unit_mod(a: Word, b: Word) -> Word:
    # Modulo is defined for small integers only (section 3.3).
    _require_ints(a, b)
    if b.value == 0:
        raise ArithmeticTrap("modulo by zero")
    return _int_result(a.value % b.value)


def unit_neg(a: Word) -> Word:
    _require_numbers(a)
    if a.tag is Tag.SMALL_INTEGER:
        return _int_result(-a.value)
    return Word.floating(-a.value)


# -- multiple precision support ---------------------------------------------------


def unit_carry(a: Word, b: Word) -> Word:
    """Carry-out of the 28-bit unsigned sum of a and b (0 or 1)."""
    _require_ints(a, b)
    return Word.small_integer((_to_field(a.value) + _to_field(b.value))
                              >> SMALL_INTEGER_BITS)


def unit_mult1(a: Word, b: Word) -> Word:
    """Low 28 bits of the unsigned product (no flags needed)."""
    _require_ints(a, b)
    return Word.small_integer(
        _from_field(_to_field(a.value) * _to_field(b.value))
    )


def unit_mult2(a: Word, b: Word) -> Word:
    """High 28 bits of the unsigned product."""
    _require_ints(a, b)
    product = _to_field(a.value) * _to_field(b.value)
    return Word.small_integer(_from_field(product >> SMALL_INTEGER_BITS))


# -- logical and bit field ------------------------------------------------------------


def unit_shift(a: Word, b: Word) -> Word:
    """Logical shift of the 28-bit field; positive counts shift left."""
    _require_ints(a, b)
    fieldval = _to_field(a.value)
    count = b.value
    if count >= 0:
        fieldval = (fieldval << min(count, SMALL_INTEGER_BITS)) & _FIELD_MASK
    else:
        fieldval >>= min(-count, SMALL_INTEGER_BITS)
    return Word.small_integer(_from_field(fieldval))


def unit_ashift(a: Word, b: Word) -> Word:
    """Arithmetic shift: sign-propagating to the right."""
    _require_ints(a, b)
    count = b.value
    if count >= 0:
        return unit_shift(a, b)
    return Word.small_integer(a.value >> min(-count, SMALL_INTEGER_BITS))


def unit_rotate(a: Word, b: Word) -> Word:
    """Rotate the 28-bit field; positive counts rotate left."""
    _require_ints(a, b)
    fieldval = _to_field(a.value)
    count = b.value % SMALL_INTEGER_BITS
    rotated = ((fieldval << count) | (fieldval >> (SMALL_INTEGER_BITS - count))) \
        & _FIELD_MASK if count else fieldval
    return Word.small_integer(_from_field(rotated))


def unit_mask(a: Word, b: Word) -> Word:
    """Extract the low b bits of a (a bit-field mask operation)."""
    _require_ints(a, b)
    if b.value < 0:
        raise ArithmeticTrap("negative mask width")
    width = min(b.value, SMALL_INTEGER_BITS)
    return Word.small_integer(_from_field(_to_field(a.value)
                                          & ((1 << width) - 1)))


def unit_and(a: Word, b: Word) -> Word:
    _require_ints(a, b)
    return Word.small_integer(_from_field(_to_field(a.value) & _to_field(b.value)))


def unit_or(a: Word, b: Word) -> Word:
    _require_ints(a, b)
    return Word.small_integer(_from_field(_to_field(a.value) | _to_field(b.value)))


def unit_xor(a: Word, b: Word) -> Word:
    _require_ints(a, b)
    return Word.small_integer(_from_field(_to_field(a.value) ^ _to_field(b.value)))


def unit_not(a: Word) -> Word:
    _require_ints(a)
    return Word.small_integer(_from_field(~_to_field(a.value)))


# -- comparisons ------------------------------------------------------------------------


def unit_lt(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    return boolean_word(_numeric(a) < _numeric(b))


def unit_le(a: Word, b: Word) -> Word:
    _require_numbers(a, b)
    return boolean_word(_numeric(a) <= _numeric(b))


def unit_eq(a: Word, b: Word) -> Word:
    # "=" is defined for small integer and floating point; atoms also
    # compare by identity which coincides with "==" for them.
    if a.tag is Tag.ATOM and b.tag is Tag.ATOM:
        return boolean_word(a.value == b.value)
    _require_numbers(a, b)
    return boolean_word(_numeric(a) == _numeric(b))


def unit_same(a: Word, b: Word) -> Word:
    """The same-object comparison, defined for all types."""
    return boolean_word(a.same_object_as(b))


# -- moves and tags ----------------------------------------------------------------------


def unit_move(a: Word) -> Word:
    """Move is defined for all types (a pure copy)."""
    return a


def unit_tag(a: Word) -> Word:
    """The tag instruction: read a word's four-bit tag as an integer."""
    return Word.small_integer(int(a.tag))


#: Registry: unit name -> (arity, callable).  Units the *machine* must
#: implement itself (they touch machine state: movea, at:, at:put:,
#: as:, jumps, xfer) use the "machine." prefix and are not listed here.
UNITS: Dict[str, tuple] = {
    "arith.add": (2, unit_add),
    "arith.sub": (2, unit_sub),
    "arith.mul": (2, unit_mul),
    "arith.div": (2, unit_div),
    "arith.mod": (2, unit_mod),
    "arith.neg": (1, unit_neg),
    "mp.carry": (2, unit_carry),
    "mp.mult1": (2, unit_mult1),
    "mp.mult2": (2, unit_mult2),
    "bits.shift": (2, unit_shift),
    "bits.ashift": (2, unit_ashift),
    "bits.rotate": (2, unit_rotate),
    "bits.mask": (2, unit_mask),
    "bits.and": (2, unit_and),
    "bits.or": (2, unit_or),
    "bits.xor": (2, unit_xor),
    "bits.not": (1, unit_not),
    "cmp.lt": (2, unit_lt),
    "cmp.le": (2, unit_le),
    "cmp.eq": (2, unit_eq),
    "cmp.same": (2, unit_same),
    "move": (1, unit_move),
    "tag": (1, unit_tag),
}


def execute_unit(name: str, operands: List[Word]) -> Word:
    """Run a registered function unit on already-fetched operands."""
    try:
        arity, fn = UNITS[name]
    except KeyError:
        raise TagMismatch(f"unknown function unit {name!r}") from None
    count = len(operands)
    if count == arity:
        return fn(*operands)
    if count < arity:
        raise TagMismatch(
            f"unit {name} needs {arity} operands, got {count}"
        )
    return fn(*operands[:arity])
