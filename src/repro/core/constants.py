"""The constant table (paper section 3.4).

Constant mode indexes a small table "used to hold frequently referenced
constants including short integers, bit fields for byte insertion and
the objects true, false, and nil".  Indices 0..2 are architecturally
nil, true and false; small integers 0..9 occupy the next slots; the
remaining entries are assigned on demand by the assembler/compiler.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import EncodingError
from repro.core.operands import CONSTANT_TABLE_SIZE
from repro.memory.tags import Word

#: Architectural constant indices.
NIL_INDEX = 0
TRUE_INDEX = 1
FALSE_INDEX = 2

NIL = Word.atom("nil")
TRUE = Word.atom("true")
FALSE = Word.atom("false")


def boolean_word(value: bool) -> Word:
    """The COM object for a Python truth value."""
    return TRUE if value else FALSE


def is_true(word: Word) -> bool:
    """Truthiness as the jump instructions see it.

    The atom ``true`` and any non-zero small integer are true; the atom
    ``false``, the atom ``nil`` and zero are false.
    """
    if word.is_small_integer:
        return word.value != 0
    if word.same_object_as(TRUE):
        return True
    return False


class ConstantTable:
    """A fixed-size table of Words addressable from constant mode."""

    def __init__(self) -> None:
        self._entries: List[Word] = [NIL, TRUE, FALSE]
        self._index: Dict[tuple, int] = {}
        for i, word in enumerate(self._entries):
            self._index[(word.tag, word.value)] = i
        for value in range(10):
            self.intern(Word.small_integer(value))

    def intern(self, word: Word) -> int:
        """Index of ``word``, adding it if absent."""
        key = (word.tag, word.value)
        index = self._index.get(key)
        if index is not None:
            return index
        if len(self._entries) >= CONSTANT_TABLE_SIZE:
            raise EncodingError(
                f"constant table full ({CONSTANT_TABLE_SIZE} entries)"
            )
        self._entries.append(word)
        index = len(self._entries) - 1
        self._index[key] = index
        return index

    def get(self, index: int) -> Word:
        try:
            return self._entries[index]
        except IndexError:
            raise EncodingError(f"constant index {index} unassigned") from None

    def __len__(self) -> int:
        return len(self._entries)

    def words(self) -> List[Word]:
        return list(self._entries)
