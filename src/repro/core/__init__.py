"""The Caltech Object Machine: ISA, contexts, caches, pipeline, machine."""

from repro.core.assembler import Assembler, load_program
from repro.core.constants import ConstantTable
from repro.core.context import CONTEXT_WORDS, ContextPool
from repro.core.context_cache import ContextCache
from repro.core.encoding import Instruction, disassemble
from repro.core.isa import Op, OpcodeTable
from repro.core.machine import COMMachine, CompiledMethod
from repro.core.operands import Operand
from repro.core.pipeline import (
    CycleAccountant,
    CycleParams,
    pipeline_diagram,
    pipeline_schedule,
)
from repro.core.registers import ProcessStatus, RegisterFile

__all__ = [
    "Assembler", "COMMachine", "CONTEXT_WORDS", "CompiledMethod",
    "ConstantTable", "ContextCache", "ContextPool", "CycleAccountant",
    "CycleParams", "Instruction", "Op", "OpcodeTable", "Operand",
    "ProcessStatus", "RegisterFile", "disassemble", "load_program",
    "pipeline_diagram", "pipeline_schedule",
]
