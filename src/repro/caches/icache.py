"""The instruction cache model (paper sections 3.6 and 5, figure 11).

"An instruction cache holds the instructions of frequently accessed
methods."  Figure 11 sweeps its hit ratio against cache size in
*entries* (8..4096) for several associativities, so the default line
size is one instruction; ``line_words`` generalises to multi-word
lines for ablation.
"""

from __future__ import annotations

from typing import Union

from repro.caches.setassoc import SetAssociativeCache


class InstructionCache:
    """A set-associative cache of instruction addresses."""

    def __init__(
        self,
        size: int = 4096,
        associativity: Union[int, str] = 2,
        line_words: int = 1,
        policy: str = "lru",
    ) -> None:
        if line_words <= 0 or line_words & (line_words - 1):
            raise ValueError("line_words must be a power of two")
        if size % line_words:
            raise ValueError("size must be a multiple of line_words")
        self.line_words = line_words
        # Instruction caches index with the address's low bits (modulo),
        # which is what makes direct-mapped conflict misses visible.
        self._cache: SetAssociativeCache[int, bool] = SetAssociativeCache(
            size // line_words, associativity, policy, index="modulo"
        )

    @property
    def stats(self):
        return self._cache.stats

    @property
    def size(self) -> int:
        """Capacity in instruction words."""
        return self._cache.size * self.line_words

    @property
    def associativity(self) -> int:
        return self._cache.associativity

    def reference(self, address: int) -> bool:
        """Probe with an instruction address; True on hit, fills on miss."""
        return self._cache.reference(address // self.line_words)

    def flush(self) -> None:
        self._cache.flush()

    def reset_stats(self) -> None:
        """Zero counters after the warm-up trace."""
        self._cache.stats.reset()

    def __len__(self) -> int:
        return len(self._cache)
