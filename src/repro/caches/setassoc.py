"""A generic set-associative cache model.

This single structure backs every lookaside buffer in the machine: the
ITLB (section 2.1), the ATLB (section 3.1), the instruction cache and
the physical-space caches (section 3.1).  Keys are arbitrary hashable
values; a key is mapped to a set by a deterministic hash and looked up
associatively within the set.

Replacement policies: LRU (default -- what the Dorado and HP software
method caches approximate), FIFO and a deterministic pseudo-random
policy (xorshift, seedable) for ablation studies.

``associativity`` may be the string ``"full"`` for a fully associative
cache (one set).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.caches.stats import CacheStats

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISS = object()

REPLACEMENT_POLICIES = ("lru", "fifo", "random")

#: Upper bound on the key -> set placement memo (see ``_set_for``).
_PLACEMENT_MEMO_LIMIT = 1 << 16


def _stable_hash(key: Hashable) -> int:
    """A deterministic hash usable across runs (no PYTHONHASHSEED effects).

    Integers and tuples of integers/strings cover every key type the
    simulators use; strings are folded with FNV-1a so results are stable.
    """
    if isinstance(key, bool):  # bool is an int subclass; keep distinct
        return int(key)
    if isinstance(key, int):
        # Fibonacci hashing spreads consecutive integers across sets.
        return (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    if isinstance(key, str):
        h = 0xCBF29CE484222325
        for ch in key.encode("utf-8"):
            h ^= ch
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h
    if isinstance(key, tuple):
        h = 0x9E3779B97F4A7C15
        for item in key:
            h ^= _stable_hash(item)
            h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        return h
    if isinstance(key, frozenset):
        h = 0
        for item in key:
            h ^= _stable_hash(item)
        return h
    return _stable_hash(repr(key))


#: Public name for the placement hash: the sweep engine
#: (repro.sweep) must place blocks exactly as this cache does to stay
#: bitwise-equivalent, so they share the function.
stable_hash = _stable_hash


class SetAssociativeCache(Generic[K, V]):
    """A fixed-capacity set-associative cache with pluggable replacement.

    Parameters
    ----------
    size:
        Total number of entries.  Must be a positive multiple of the
        associativity.
    associativity:
        Ways per set, or ``"full"`` for a single fully associative set.
    policy:
        ``"lru"`` (default), ``"fifo"`` or ``"random"``.
    seed:
        Seed for the deterministic random policy.
    """

    def __init__(
        self,
        size: int,
        associativity: Union[int, str] = 2,
        policy: str = "lru",
        seed: int = 0x2545F491,
        index: str = "hash",
    ) -> None:
        """``index`` selects set placement: "hash" scrambles keys (an
        associative memory with a hashed directory, right for the ITLB
        and ATLB), while "modulo" uses the key's low bits directly
        (integer keys only -- how a real instruction cache indexes, and
        necessary to reproduce direct-mapped conflict behaviour)."""
        if size <= 0:
            raise ValueError(f"cache size must be positive, got {size}")
        if associativity == "full":
            associativity = size
        if not isinstance(associativity, int) or associativity <= 0:
            raise ValueError(f"bad associativity: {associativity!r}")
        if size % associativity != 0:
            raise ValueError(
                f"size {size} is not a multiple of associativity {associativity}"
            )
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(f"unknown replacement policy {policy!r}")
        if index not in ("hash", "modulo"):
            raise ValueError(f"unknown index scheme {index!r}")
        self.index = index
        self.size = size
        self.associativity = associativity
        self.num_sets = size // associativity
        self.policy = policy
        self.stats = CacheStats()
        self._rand_state = seed or 0x2545F491
        # Each set is an OrderedDict: iteration order is recency order
        # for LRU (oldest first) and insertion order for FIFO.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        # key -> set memo: _stable_hash walks tuples/strings on every
        # probe, which dominates hot lookups; placement is a pure
        # function of the key so it can be cached (bounded to keep
        # trace-scale key churn from growing it without limit).
        self._placement: Dict[K, OrderedDict] = {}

    # -- internals --------------------------------------------------------

    def _set_for(self, key: K) -> OrderedDict:
        if self.index == "modulo":
            return self._sets[int(key) % self.num_sets]
        entries = self._placement.get(key)
        if entries is None:
            entries = self._sets[_stable_hash(key) % self.num_sets]
            if len(self._placement) >= _PLACEMENT_MEMO_LIMIT:
                self._placement.clear()
            self._placement[key] = entries
        return entries

    def _next_random(self) -> int:
        x = self._rand_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rand_state = x
        return x

    def _choose_victim(self, entries: OrderedDict) -> K:
        if self.policy == "random":
            keys = list(entries.keys())
            return keys[self._next_random() % len(keys)]
        # LRU and FIFO both evict the front of the ordered dict; they
        # differ in whether lookups refresh the order.
        return next(iter(entries))

    # -- public API -------------------------------------------------------

    def lookup(self, key: K) -> Optional[V]:
        """Probe the cache; returns the value or ``None``, updating stats.

        Use :meth:`probe` when ``None`` is a legitimate stored value.
        """
        value = self.probe(key)
        return None if value is _MISS else value

    def probe(self, key: K) -> Any:
        """Probe the cache; returns the sentinel ``MISS`` on a miss."""
        entries = self._set_for(key)
        if key in entries:
            self.stats.hits += 1
            if self.policy == "lru":
                entries.move_to_end(key)
            return entries[key]
        self.stats.misses += 1
        return _MISS

    def contains(self, key: K) -> bool:
        """Non-statistical membership test (for assertions/tests)."""
        return key in self._set_for(key)

    def peek(self, key: K) -> Optional[V]:
        """Non-statistical read that does not disturb replacement order."""
        entries = self._set_for(key)
        return entries.get(key)

    def fill(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert (or update) an entry; returns the evicted (key, value).

        An update refreshes LRU order but does not count as an eviction.
        """
        entries = self._set_for(key)
        evicted = None
        if key in entries:
            entries[key] = value
            if self.policy == "lru":
                entries.move_to_end(key)
        else:
            if len(entries) >= self.associativity:
                victim = self._choose_victim(entries)
                evicted = (victim, entries.pop(victim))
                self.stats.evictions += 1
            entries[key] = value
        self.stats.fills += 1
        return evicted

    def access(self, key: K, loader) -> V:
        """Lookup, calling ``loader(key)`` and filling on a miss."""
        value = self.probe(key)
        if value is _MISS:
            value = loader(key)
            self.fill(key, value)
        return value

    def reference(self, key: K) -> bool:
        """Trace-driven access: returns True on hit, fills on miss.

        This is the operation the section-5 cache simulator performs on
        each trace event.
        """
        value = self.probe(key)
        if value is _MISS:
            self.fill(key, True)
            return False
        return True

    def invalidate(self, key: K) -> bool:
        """Remove one entry; returns whether it was present."""
        entries = self._set_for(key)
        if key in entries:
            del entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_where(self, predicate) -> int:
        """Remove every entry whose (key, value) satisfies ``predicate``."""
        removed = 0
        for entries in self._sets:
            victims = [k for k, v in entries.items() if predicate(k, v)]
            for k in victims:
                del entries[k]
                removed += 1
        self.stats.invalidations += removed
        return removed

    def flush(self) -> None:
        """Empty the cache, counting invalidations."""
        count = len(self)
        for entries in self._sets:
            entries.clear()
        self.stats.invalidations += count

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over all resident (key, value) pairs."""
        for entries in self._sets:
            yield from entries.items()

    def set_occupancy(self) -> List[int]:
        """Entries resident per set (for distribution diagnostics)."""
        return [len(entries) for entries in self._sets]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SetAssociativeCache(size={self.size}, "
            f"assoc={self.associativity}, policy={self.policy!r}, "
            f"resident={len(self)})"
        )


#: Public miss sentinel for probe().
MISS = _MISS
