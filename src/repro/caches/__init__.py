"""Cache models: the ITLB, instruction cache and their shared substrate."""

from repro.caches.icache import InstructionCache
from repro.caches.itlb import ITLB, ITLBEntry, TranslateOutcome
from repro.caches.setassoc import MISS, SetAssociativeCache
from repro.caches.stats import AccessProfile, CacheStats

__all__ = [
    "AccessProfile", "CacheStats", "ITLB", "ITLBEntry",
    "InstructionCache", "MISS", "SetAssociativeCache",
    "TranslateOutcome",
]
