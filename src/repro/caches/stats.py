"""Hit/miss accounting shared by every cache model in the package."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for one cache instance.

    ``hits``/``misses`` count lookups; ``fills`` counts insertions;
    ``evictions`` counts entries displaced by a fill; ``invalidations``
    counts entries removed explicitly (flush or coherence).
    """

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups occurred."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_ratio(self) -> float:
        """Fraction of lookups that missed; 0.0 when no lookups occurred."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Zero every counter (used after a warm-up trace, section 5)."""
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            evictions=self.evictions,
            invalidations=self.invalidations,
        )

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.fills += other.fills
        self.evictions += other.evictions
        self.invalidations += other.invalidations

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"hits={self.hits} misses={self.misses} "
            f"hit_ratio={self.hit_ratio:.4f}"
        )


@dataclass
class AccessProfile:
    """Aggregated access counts by category (used by memory-reference studies).

    The paper cites that over 91% of memory references go to contexts;
    this profile lets the machine bucket every reference it makes.
    """

    context_reads: int = 0
    context_writes: int = 0
    heap_reads: int = 0
    heap_writes: int = 0
    instruction_fetches: int = 0
    categories: dict = field(default_factory=dict)

    @property
    def context_references(self) -> int:
        return self.context_reads + self.context_writes

    @property
    def data_references(self) -> int:
        return (
            self.context_reads
            + self.context_writes
            + self.heap_reads
            + self.heap_writes
        )

    @property
    def context_fraction(self) -> float:
        """Fraction of data references that touch contexts."""
        total = self.data_references
        if total == 0:
            return 0.0
        return self.context_references / total

    def count(self, category: str, n: int = 1) -> None:
        """Bump an arbitrary named counter."""
        self.categories[category] = self.categories.get(category, 0) + n
