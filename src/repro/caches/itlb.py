"""The instruction translation lookaside buffer (paper section 2.1).

"Each ITLB [entry] corresponds to a unique method and contains three
fields: 1) A key, containing an opcode and a set of operand classes;
2) A primitive bit describing whether the method is primitive or
defined; and 3) A method field indicating how the method is to be
accomplished."

The ITLB is an associative memory keyed by (opcode, operand class
tags).  On a miss the instruction descriptor is pulled in from the
appropriate message dictionary via the standard method lookup, then
cached.  The simulation of section 5 measures exactly this structure's
hit ratio; :meth:`ITLB.reference` provides the trace-driven interface
the cache simulator uses, and :meth:`ITLB.translate` the full
functional path the machine uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from repro.caches.setassoc import MISS, SetAssociativeCache

#: An ITLB key: the opcode number plus the operand class tags.
ITLBKey = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class ITLBEntry:
    """One ITLB entry: the primitive bit and the method field.

    For a primitive method the method field selects a function unit
    (``unit``); otherwise it points to the code of a defined method
    (``method`` carries the full descriptor either way).
    """

    primitive: bool
    method: object          # PrimitiveMethod | DefinedMethod
    unit: Optional[str] = None

    @staticmethod
    def from_method(method) -> "ITLBEntry":
        # Duck-typed on the is_primitive property shared by
        # PrimitiveMethod and DefinedMethod (repro.objects.model); the
        # ITLB itself has no dependency on the object model.
        if getattr(method, "is_primitive", False):
            return ITLBEntry(True, method, method.unit)
        return ITLBEntry(False, method)


@dataclass
class TranslateOutcome:
    """Result of one functional ITLB translation."""

    entry: ITLBEntry
    hit: bool
    lookup: Optional[object] = None   # the LookupResult, set on misses


class ITLB:
    """A set-associative cache of (opcode, classes) -> method entries."""

    def __init__(
        self,
        size: int = 512,
        associativity: Union[int, str] = 2,
        policy: str = "lru",
    ) -> None:
        self._cache: SetAssociativeCache[ITLBKey, ITLBEntry] = (
            SetAssociativeCache(size, associativity, policy)
        )

    @property
    def stats(self):
        return self._cache.stats

    @property
    def size(self) -> int:
        return self._cache.size

    @property
    def associativity(self) -> int:
        return self._cache.associativity

    @staticmethod
    def key(opcode: int, class_tags: Tuple[int, ...]) -> ITLBKey:
        return (opcode, tuple(class_tags))

    # -- functional path (the machine) ---------------------------------------

    def translate(
        self,
        opcode: int,
        class_tags: Tuple[int, ...],
        miss_handler: Callable[[], object],
    ) -> TranslateOutcome:
        """Resolve an abstract instruction to its method.

        ``miss_handler`` performs the full method lookup (walking the
        receiver's class hierarchy); its result is cached.  Lookup
        failures (doesNotUnderstand) propagate out of the handler and
        are *not* cached, as in the real machine where the trap handler
        runs instead.
        """
        key = self.key(opcode, class_tags)
        entry = self._cache.lookup(key)
        if entry is not None:
            return TranslateOutcome(entry, True)
        lookup = miss_handler()
        entry = ITLBEntry.from_method(lookup.method)
        self._cache.fill(key, entry)
        return TranslateOutcome(entry, False, lookup)

    def probe_entry(self, opcode: int,
                    class_tags: Tuple[int, ...]) -> Optional[ITLBEntry]:
        """Statistical probe returning the cached entry or None.

        Fast-path flavour of :meth:`translate`: the caller performs the
        miss lookup itself and installs the result with
        :meth:`fill_entry`, avoiding the closure and outcome-object
        allocations of the general path.  Hit/miss statistics are
        identical to :meth:`translate`.
        """
        entry = self._cache.probe((opcode, class_tags))
        return None if entry is MISS else entry

    def fill_entry(self, opcode: int, class_tags: Tuple[int, ...],
                   entry: ITLBEntry) -> None:
        """Install a miss result produced by the caller (see probe_entry)."""
        self._cache.fill((opcode, class_tags), entry)

    # -- trace-driven path (the section-5 simulator) ----------------------------

    def reference(self, opcode: int, class_tags: Tuple[int, ...]) -> bool:
        """Hit/miss probe for trace simulation; fills on miss."""
        return self._cache.reference(self.key(opcode, class_tags))

    # -- maintenance ---------------------------------------------------------------

    def invalidate_selector(self, opcode: int) -> int:
        """Shoot down every entry for one opcode (method redefinition).

        Smooth extensibility (section 2.1): changing a method's
        implementation must not require touching object code, only the
        cached translations.
        """
        return self._cache.invalidate_where(lambda key, _v: key[0] == opcode)

    def invalidate_class(self, class_tag: int) -> int:
        """Shoot down every entry mentioning one class (class change)."""
        return self._cache.invalidate_where(
            lambda key, _v: class_tag in key[1]
        )

    def flush(self) -> None:
        self._cache.flush()

    def reset_stats(self) -> None:
        """Zero counters after a warm-up trace (section 5 methodology)."""
        self._cache.stats.reset()

    def __len__(self) -> int:
        return len(self._cache)
