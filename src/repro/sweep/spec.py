"""Declarative sweep descriptions: what to simulate, not how.

A :class:`SweepSpec` names one cache kind (ITLB or instruction cache)
and the grid to sweep over it -- sizes, associativities (integers
and/or ``"full"``), line size, replacement policy, and the section-5
warm-up methodology (``double_pass`` or a ``warmup_fraction``).  A
:class:`HierarchySpec` bundles several levels (the paper's figures are
one ITLB sweep plus one icache sweep over the same trace) so a whole
figure set is a single declared object.

Specs carry no events and run nothing themselves; the runner
(:mod:`repro.sweep.runner`) decides per spec whether the single-pass
stack-distance engine applies (LRU with power-of-two set counts) or
whether to fall back to the per-configuration grid simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.caches.setassoc import REPLACEMENT_POLICIES

#: The paper's sweep: sizes 8..4096 (log2 = 3..12) -- re-exported from
#: the cache simulator so the two modules cannot drift apart.
from repro.trace.cachesim import PAPER_ASSOCIATIVITIES, PAPER_SIZES
from repro.trace.semantics import (
    DEFAULT_SEMANTICS,
    SEMANTICS,
    validate_semantics,
    validate_warmup_fraction,
)

CACHE_KINDS = ("itlb", "icache")

ENGINES = ("auto", "single-pass", "numpy", "grid")

#: Default display labels, matching the labels the figure tables have
#: always used (pinned by the figure-output parity tests).
_LABELS = {"itlb": "ITLB", "icache": "instruction cache"}

Assoc = Union[int, str]


@dataclass(frozen=True)
class SweepSpec:
    """One cache's size x associativity sweep, declaratively.

    ``associativities`` may mix integers with ``"full"``; every
    ``(size, assoc)`` pair must describe a cache the set-associative
    model could build (the same divisibility rules
    :class:`~repro.caches.setassoc.SetAssociativeCache` enforces).
    ``engine`` selects execution: ``"auto"`` uses the single-pass
    stack-distance engine whenever the spec is eligible (LRU,
    power-of-two set counts) -- vectorized by the optional numpy
    backend when numpy is importable, pure python otherwise;
    ``"single-pass"`` requires the pure-python engine (raising if
    ineligible), ``"numpy"`` requires the vectorized backend (raising
    :class:`~repro.errors.BackendUnavailable` when numpy is absent),
    ``"grid"`` forces one simulation per configuration.  ``semantics`` selects the measurement-semantics
    version (:mod:`repro.trace.semantics`): ``"paper"`` keeps the
    historical warm-up quirks bit-for-bit, ``"v2"`` fixes them.
    """

    cache: str
    sizes: Tuple[int, ...] = PAPER_SIZES
    associativities: Tuple[Assoc, ...] = PAPER_ASSOCIATIVITIES
    line_words: int = 1
    policy: str = "lru"
    warmup_fraction: float = 0.25
    double_pass: bool = False
    dispatched_only: bool = True
    include_full: bool = False
    include_opt: bool = False
    engine: str = "auto"
    semantics: str = DEFAULT_SEMANTICS
    label: str = ""

    def __post_init__(self) -> None:
        if self.cache not in CACHE_KINDS:
            raise ValueError(f"unknown cache kind {self.cache!r}; "
                             f"expected one of {CACHE_KINDS}")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"expected one of {ENGINES}")
        if self.policy not in REPLACEMENT_POLICIES:
            raise ValueError(f"unknown replacement policy {self.policy!r}")
        validate_semantics(self.semantics)
        if not self.sizes:
            raise ValueError("a sweep needs at least one size")
        if not self.associativities:
            raise ValueError("a sweep needs at least one associativity")
        if self.line_words <= 0 or self.line_words & (self.line_words - 1):
            raise ValueError("line_words must be a power of two")
        if self.cache == "itlb" and self.line_words != 1:
            raise ValueError("line_words applies to the icache only")
        validate_warmup_fraction(self.warmup_fraction)
        for size in self.sizes:
            if not isinstance(size, int) or size <= 0:
                raise ValueError(f"bad sweep size {size!r}")
            if size % self.line_words:
                raise ValueError(
                    f"size {size} is not a multiple of line_words "
                    f"{self.line_words}")
        for assoc in self.associativities:
            if assoc == "full":
                continue
            if not isinstance(assoc, int) or assoc <= 0:
                raise ValueError(f"bad associativity {assoc!r}")
            for size in self.sizes:
                if (size // self.line_words) % assoc:
                    raise ValueError(
                        f"size {size} (line_words {self.line_words}) "
                        f"is not a multiple of associativity {assoc}")

    # -- derived geometry -------------------------------------------------

    @property
    def display_label(self) -> str:
        return self.label or _LABELS[self.cache]

    def entries(self, size: int) -> int:
        """Capacity in cache entries (blocks) for a swept size."""
        return size // self.line_words

    def num_sets(self, size: int, assoc: int) -> int:
        """Set count of one configuration (line size folded in)."""
        return self.entries(size) // assoc

    def lru_configs(self) -> Iterator[Tuple[int, int]]:
        """Every (size, integer associativity) pair of the grid."""
        for assoc in self.associativities:
            if assoc == "full":
                continue
            for size in self.sizes:
                yield size, assoc

    def wants_full_curve(self) -> bool:
        return self.include_full or "full" in self.associativities

    # -- engine eligibility -----------------------------------------------

    def single_pass_eligible(self) -> bool:
        """Whether the stack-distance engine reproduces this spec.

        The engine models LRU stacks over nested power-of-two set
        partitions; FIFO/random replacement does not satisfy the
        inclusion property and non-power-of-two set counts do not
        nest, so both fall back to the per-configuration grid.
        """
        if self.policy != "lru":
            return False
        for size, assoc in self.lru_configs():
            sets = self.num_sets(size, assoc)
            if sets <= 0 or sets & (sets - 1):
                return False
        return True


@dataclass(frozen=True)
class HierarchySpec:
    """A named bundle of sweep levels replayed over one trace.

    The levels are independent simulations (the ITLB sees dispatched
    instructions, the icache sees every instruction address), but a
    hierarchy is loaded, driven and reported as one unit -- the
    paper's figure pair is the canonical instance
    (:func:`paper_hierarchy`).
    """

    name: str
    levels: Tuple[SweepSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a hierarchy needs at least one level")
        labels = [level.display_label for level in self.levels]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"hierarchy {self.name!r} has duplicate level labels "
                f"{labels}; set SweepSpec.label to disambiguate")


def paper_hierarchy(*, include_full: bool = False,
                    include_opt: bool = False,
                    engine: str = "auto",
                    semantics: str = DEFAULT_SEMANTICS) -> HierarchySpec:
    """Figures 10 and 11 as one declared hierarchy.

    Both levels use the paper's double warm-up methodology over the
    full size x associativity grid; optional reference curves
    (fully-associative LRU, OPT/Belady) ride along for context.
    """
    common = dict(sizes=PAPER_SIZES, associativities=PAPER_ASSOCIATIVITIES,
                  double_pass=True, include_full=include_full,
                  include_opt=include_opt, engine=engine,
                  semantics=semantics)
    return HierarchySpec(
        name="paper-figures",
        description="the section-5 sweeps behind figures 10 and 11",
        levels=(SweepSpec(cache="itlb", **common),
                SweepSpec(cache="icache", **common)),
    )
