"""The hit-ratio surface a sweep produces, with grid queries.

A :class:`ResultSurface` stores measured (hits, misses) for every
grid cell plus the optional reference curves, and answers the
questions the figures and experiments ask: point ratios, iso-ratio
thresholds ("smallest size reaching 99%"), whole curves, and
figure-shaped extraction (a
:class:`~repro.trace.cachesim.SweepResult` for the existing table and
ASCII-plot rendering).  Ratios are computed exactly as
:class:`~repro.caches.stats.CacheStats` computes them (integer hit
and access counts, one float division), which is what makes the
single-pass engine's figures bitwise identical to the per-config
grid's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.caches.stats import CacheStats

Assoc = Union[int, str]
#: (hits, misses) for one grid cell.
Cell = Tuple[int, int]


def _ratio(cell: Cell) -> float:
    hits, misses = cell
    accesses = hits + misses
    if accesses == 0:
        return 0.0
    return hits / accesses


@dataclass
class ResultSurface:
    """Hit counts over a size x associativity grid plus reference curves.

    ``counts[assoc][size]`` holds measured ``(hits, misses)``;
    ``opt_counts`` the OPT/Belady curve when the spec asked for it.
    ``meta`` records provenance: which engine ran, how many simulation
    passes over the trace it took, and the measured access count.
    """

    spec: object                      # the SweepSpec that produced this
    counts: Dict[Assoc, Dict[int, Cell]]
    opt_counts: Optional[Dict[int, Cell]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    # -- point queries ----------------------------------------------------

    @property
    def label(self) -> str:
        return self.spec.display_label

    @property
    def semantics(self) -> str:
        """Which measurement-semantics version produced the counts."""
        return self.meta.get("semantics", self.spec.semantics)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(self.spec.sizes)

    @property
    def associativities(self) -> Tuple[Assoc, ...]:
        return tuple(self.counts)

    def cell(self, associativity: Assoc, size: int) -> Cell:
        return self.counts[associativity][size]

    def ratio(self, associativity: Assoc, size: int) -> float:
        return _ratio(self.cell(associativity, size))

    def stats(self, associativity: Assoc, size: int) -> CacheStats:
        """The cell as a CacheStats (fills mirror misses: every miss
        fills; evictions/invalidations are not tracked per cell)."""
        hits, misses = self.cell(associativity, size)
        return CacheStats(hits=hits, misses=misses, fills=misses)

    def opt_ratio(self, size: int) -> float:
        if self.opt_counts is None:
            raise ValueError("sweep did not request the OPT curve")
        return _ratio(self.opt_counts[size])

    # -- grid queries -----------------------------------------------------

    def grid(self) -> Iterator[Tuple[int, Assoc, float]]:
        """Every (size, associativity, hit ratio) cell, row-major."""
        for associativity, row in self.counts.items():
            for size in row:
                yield size, associativity, _ratio(row[size])

    def curve(self, associativity: Assoc) -> List[Tuple[int, float]]:
        """(size, ratio) along one associativity, in swept order."""
        row = self.counts[associativity]
        return [(size, _ratio(row[size])) for size in row]

    def smallest_size_reaching(self, target: float,
                               associativity: Assoc) -> Optional[int]:
        """Smallest swept size whose hit ratio meets ``target``.

        Sizes are considered in ascending order regardless of the
        order they were swept in.
        """
        row = self.counts[associativity]
        for size in sorted(row):
            if _ratio(row[size]) >= target:
                return size
        return None

    def isoratio(self, target: float) -> Dict[Assoc, Optional[int]]:
        """The iso-hit-ratio threshold for every swept associativity."""
        return {assoc: self.smallest_size_reaching(target, assoc)
                for assoc in self.counts}

    # -- result-cache payload ---------------------------------------------

    def to_payload(self) -> dict:
        """The surface as a JSON document for the on-disk result cache.

        Cells are ordered rows ``[assoc, size, hits, misses]`` --
        column order first, then the spec's size order -- so
        reconstruction rebuilds ``counts`` with iteration order
        identical to what the engine produced (the figure tables
        iterate dicts, and cached runs must render byte-identically).
        ``meta`` is carried verbatim for the same reason.
        """
        rows = [[assoc, size, *row[size]]
                for assoc, row in self.counts.items() for size in row]
        opt_rows = None
        if self.opt_counts is not None:
            opt_rows = [[size, *self.opt_counts[size]]
                        for size in self.opt_counts]
        return {"surface": 1, "counts": rows, "opt_counts": opt_rows,
                "meta": dict(self.meta)}

    @classmethod
    def from_payload(cls, spec, payload: dict) -> Optional["ResultSurface"]:
        """Rebuild a surface from :meth:`to_payload` output, or None
        when the document does not decode (the cache treats any
        malformed entry as a miss, never an error)."""
        try:
            if payload.get("surface") != 1:
                return None
            counts: Dict[Assoc, Dict[int, Cell]] = {}
            for assoc, size, hits, misses in payload["counts"]:
                counts.setdefault(assoc, {})[size] = (hits, misses)
            opt_rows = payload.get("opt_counts")
            opt_counts = None
            if opt_rows is not None:
                opt_counts = {size: (hits, misses)
                              for size, hits, misses in opt_rows}
            meta = dict(payload["meta"])
        except (KeyError, TypeError, ValueError):
            return None
        return cls(spec, counts, opt_counts, meta)

    # -- figure-shaped extraction -----------------------------------------

    def to_sweep_result(self, label: Optional[str] = None):
        """The LRU grid as a legacy SweepResult (tables, ASCII plots).

        Every LRU column is carried over -- including the ``"full"``
        column when the spec asked for it -- but the OPT reference
        curve stays on the surface, so the figure paths (which request
        neither) render exactly as they did in the per-config era.
        """
        from repro.trace.cachesim import SweepResult
        ratios = {assoc: {size: _ratio(row[size]) for size in row}
                  for assoc, row in self.counts.items()}
        return SweepResult(label or self.label, self.sizes,
                           tuple(self.counts), ratios, dict(self.meta))

    def table(self) -> str:
        """A figure-style table including any reference curves."""
        columns: List[Tuple[str, Dict[int, Cell]]] = [
            (f"{assoc}-way" if assoc != "full" else "full",
             self.counts[assoc])
            for assoc in self.counts]
        if self.opt_counts is not None:
            columns.append(("OPT", self.opt_counts))
        header = "log2(size)  size " + "".join(
            f"{name:>10}" for name, _ in columns)
        lines = [f"{self.label} hit ratio vs cache size", header,
                 "-" * len(header)]
        for size in self.sizes:
            row = f"{size.bit_length() - 1:10d} {size:5d}"
            for _, cells in columns:
                row += f"{_ratio(cells[size]):10.4f}"
            lines.append(row)
        return "\n".join(lines)


def semantics_delta_table(paper: ResultSurface,
                          v2: ResultSurface) -> str:
    """A figure-style table of per-cell v2-minus-paper ratio deltas.

    Renders the measured cost of the paper's warm-up quirk family:
    every cell is ``v2 hit ratio - paper hit ratio`` for one (size,
    associativity) point, signed, so a column of zeros means the
    quirks did not bias that configuration.
    """
    if tuple(paper.counts) != tuple(v2.counts) or \
            paper.sizes != v2.sizes:
        raise ValueError("semantics delta needs matching grids")
    header = "log2(size)  size " + "".join(
        f"{(f'{assoc}-way' if assoc != 'full' else 'full'):>10}"
        for assoc in paper.counts)
    lines = [f"{paper.label} hit-ratio delta (v2 - paper semantics)",
             header, "-" * len(header)]
    for size in paper.sizes:
        row = f"{size.bit_length() - 1:10d} {size:5d}"
        for assoc in paper.counts:
            row += f"{v2.ratio(assoc, size) - paper.ratio(assoc, size):+10.4f}"
        lines.append(row)
    return "\n".join(lines)
