"""Drivers: a SweepSpec plus a trace -> a ResultSurface.

``run_sweep`` picks the execution engine per spec:

* **numpy** (:class:`~repro.sweep.np_engine.NumpyMultiConfigLRU`) --
  the vectorized single-pass formulation.  ``engine="auto"`` uses it
  whenever the spec is single-pass eligible *and* numpy is importable
  (numpy is an optional extra, never a hard dependency);
  ``engine="numpy"`` requires it, raising the typed
  :class:`~repro.errors.BackendUnavailable` when the import is
  missing.  Bitwise-identical to the pure-python engine.
* **single-pass** (:class:`~repro.sweep.engine.MultiConfigLRU`) when
  the spec is LRU with power-of-two set counts -- one simulation
  replay of the trace (two under the paper's double-pass warm-up)
  produces every grid cell at once;
* **grid** otherwise (or on request) -- one
  :func:`~repro.trace.cachesim.simulate_itlb` /
  :func:`~repro.trace.cachesim.simulate_icache` call per cell, which
  supports any replacement policy and geometry.

Both paths produce *bitwise identical* hit ratios for LRU specs:
driver and ``simulate_*`` functions alike place the warm-up window
with :func:`repro.trace.semantics.reset_index`, the single audited
home of the versioned measurement semantics (``"paper"`` preserves
the historical quirk family bit-for-bit; ``"v2"`` fixes it).  The
equivalence is pinned by tests/test_sweep.py under both versions.

``meta["trace_passes"]`` counts *simulation replays* of the event
stream -- the number of times a cache model observed every reference.
Cheap preprocessing (building the filtered reference columns, the OPT
next-use scan) is not a simulation replay and is reported separately
as ``meta["aux_passes"]``.

Reference streams are *columns*, not event objects: the drivers read
the packed int columns of a :class:`~repro.trace.columnar.Trace`
directly (the icache stream for one-word lines is literally the
trace's address column, zero-copy) and feed the engines through
:meth:`~repro.sweep.engine.MultiConfigLRU.replay_columns`.
"""

from __future__ import annotations

import hashlib
import json
import time
from array import array
from dataclasses import asdict
from typing import Dict, Optional, Sequence, Tuple

from repro import telemetry
from repro.caches.setassoc import stable_hash
from repro.sweep import np_engine
from repro.sweep.engine import MultiConfigLRU, OptStack, next_use_times
from repro.sweep.spec import HierarchySpec, SweepSpec
from repro.sweep.surface import Cell, ResultSurface
from repro.trace.cachesim import simulate_icache, simulate_itlb
from repro.trace.columnar import Trace, as_trace
from repro.trace.semantics import reset_index
from repro.workloads.library import ResultCache

#: A reference stream: parallel (block identity, placement) columns.
RefColumns = Tuple[Sequence, Sequence[int]]

#: The engine-semantics version, part of every result-cache key: bump
#: it whenever ANY engine's measured counts could change (a
#: replacement-model fix, a warm-up change, a placement-hash change),
#: so stale cached surfaces can only ever miss, never misreport.
#: Measurement-*semantics* differences (``"paper"`` vs ``"v2"``) are
#: already in the spec and need no bump.
ENGINE_VERSION = 1


def result_cache_key(spec: SweepSpec, trace_key: str) -> str:
    """The content key one (trace, sweep) query memoizes under.

    Canonical JSON over the trace's store key, the *full* spec
    (minus the display-only ``label`` -- two labels of the same sweep
    share one result; note ``engine`` stays in the key, so the
    engine-equivalence pins always compare freshly computed
    surfaces), and :data:`ENGINE_VERSION`.
    """
    identity = asdict(spec)
    identity.pop("label", None)
    blob = json.dumps(
        {"trace": trace_key, "spec": identity,
         "engine_version": ENGINE_VERSION},
        sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


#: store root -> ResultCache, so repeated sweeps share hit/miss
#: counters and skip re-reading the environment.
_RESULT_CACHES: Dict[str, ResultCache] = {}


def _result_cache(root: str) -> ResultCache:
    cache = _RESULT_CACHES.get(root)
    if cache is None:
        cache = _RESULT_CACHES[root] = ResultCache(root)
    return cache


# -- reference streams ----------------------------------------------------

def _itlb_ref_columns(trace: Trace, dispatched_only: bool) -> RefColumns:
    """The (key, stable hash) columns the ITLB sees.

    Block identities are the opcode/class pair packed into one int
    (injective for the 32-bit column values), so the hot replay loop
    never builds a key tuple; the placement hash -- which must stay
    bitwise-identical to the set placement the real ITLB computes --
    is memoized per distinct key, so the tuple it hashes is built
    once per key instead of once per reference.
    """
    opcodes = trace.opcodes()
    classes = trace.receiver_classes()
    indices = (trace.dispatched_indices() if dispatched_only
               else range(len(trace)))
    blocks = array("q")
    placements = array("Q")
    hashes: Dict[int, int] = {}
    block_append = blocks.append
    placement_append = placements.append
    for i in indices:
        opcode = opcodes[i]
        receiver = classes[i]
        packed = (opcode << 32) ^ (receiver & 0xFFFFFFFF)
        placement = hashes.get(packed)
        if placement is None:
            placement = hashes[packed] = stable_hash(
                (opcode, (receiver,)))
        block_append(packed)
        placement_append(placement)
    return blocks, placements


def _icache_ref_columns(trace: Trace, line_words: int) -> RefColumns:
    """The (block, block) columns the icache sees (modulo indexing).

    For one-word lines the address column itself serves as both
    identity and placement -- a zero-copy view, nothing built at all.
    """
    addresses = trace.addresses()
    if line_words == 1:
        return addresses, addresses
    blocks = array("q", (address // line_words for address in addresses))
    return blocks, blocks


def _reset_touch(spec: SweepSpec, events: Sequence,
                 n_refs: int) -> Optional[int]:
    """Where in the *reference* stream the warm-up stats reset lands.

    Delegates to the versioned semantics module so the single-pass
    driver and the ``simulate_*`` loops agree reference-for-reference
    under either semantics version.
    """
    return reset_index(spec.semantics, spec.cache, events, n_refs,
                       warmup_fraction=spec.warmup_fraction,
                       dispatched_only=spec.dispatched_only)


# -- the single-pass path --------------------------------------------------

def _geometry(spec: SweepSpec) -> Tuple[Dict[int, int], int]:
    """(level caps keyed by log2(num_sets), single-set depth bound)."""
    level_caps: Dict[int, int] = {}
    full_cap = 0
    for size, assoc in spec.lru_configs():
        sets = spec.num_sets(size, assoc)
        if sets == 1:
            full_cap = max(full_cap, assoc)
        else:
            k = sets.bit_length() - 1
            level_caps[k] = max(level_caps.get(k, 0), assoc)
    if spec.wants_full_curve():
        full_cap = max(full_cap, max(spec.entries(s) for s in spec.sizes))
    return level_caps, full_cap


def _run_single_pass(spec: SweepSpec, events: Sequence,
                     use_numpy: bool = False) -> ResultSurface:
    trace = as_trace(events)
    blocks, placements = (_itlb_ref_columns(trace, spec.dispatched_only)
                          if spec.cache == "itlb"
                          else _icache_ref_columns(trace, spec.line_words))
    n_refs = len(blocks)
    level_caps, full_cap = _geometry(spec)
    if use_numpy:
        engine = np_engine.NumpyMultiConfigLRU(level_caps, full_cap)
        next_use_fn = np_engine.np_next_use_times
    else:
        engine = MultiConfigLRU(level_caps, full_cap)
        next_use_fn = next_use_times
    opt = OptStack(max(spec.entries(s) for s in spec.sizes)) \
        if spec.include_opt else None

    passes = 0
    aux = 1  # the reference-stream build
    if spec.double_pass:
        engine.replay_columns(blocks, placements, count=False)
        engine.replay_columns(blocks, placements, count=True)
        passes += 2
        if opt is not None:
            doubled = list(blocks)
            doubled += doubled
            next_use = next_use_fn(doubled)
            for i in range(n_refs):
                opt.touch(blocks[i], next_use[i], count=False)
            for i in range(n_refs):
                opt.touch(blocks[i], next_use[n_refs + i], count=True)
            passes += 2
            aux += 1
    else:
        reset_at = _reset_touch(spec, trace, n_refs)
        # Counting-then-resetting is the same as not counting (state
        # evolution never depends on the counters), so the warm-up
        # window splits into two bulk replays around the reset point.
        if reset_at is None:
            engine.replay_columns(blocks, placements, count=True)
        else:
            engine.replay_columns(blocks, placements,
                                  stop=reset_at, count=False)
            engine.replay_columns(blocks, placements,
                                  start=reset_at, count=True)
        passes += 1
        if opt is not None:
            next_use = next_use_fn(blocks)
            aux += 1
            for index in range(n_refs):
                opt.touch(blocks[index], next_use[index],
                          count=(reset_at is None or index >= reset_at))
            passes += 1

    total = engine.total
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            if assoc == "full":
                hits = engine.full_hits(spec.entries(size))
            else:
                sets = spec.num_sets(size, assoc)
                if sets == 1:
                    hits = engine.full_hits(assoc)
                else:
                    hits = engine.hits(sets.bit_length() - 1, assoc)
            row[size] = (hits, total - hits)
        counts[assoc] = row

    opt_counts = None
    if opt is not None:
        opt_counts = {size: (opt.hits(spec.entries(size)),
                             opt.total - opt.hits(spec.entries(size)))
                      for size in spec.sizes}
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "numpy" if use_numpy else "single-pass",
        "semantics": spec.semantics,
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(trace),
        "references": n_refs,
        "measured": total,
    })


# -- the per-configuration grid path ---------------------------------------

def _simulate_cell(spec: SweepSpec, events: Sequence,
                   size: int, assoc) -> Cell:
    kwargs = dict(policy=spec.policy,
                  warmup_fraction=spec.warmup_fraction,
                  double_pass=spec.double_pass,
                  semantics=spec.semantics)
    if spec.cache == "itlb":
        stats = simulate_itlb(events, size, assoc,
                              dispatched_only=spec.dispatched_only,
                              **kwargs)
    else:
        stats = simulate_icache(events, size, assoc,
                                line_words=spec.line_words, **kwargs)
    return stats.hits, stats.misses


def _run_grid(spec: SweepSpec,
              events: Sequence) -> ResultSurface:
    per_sim = 2 if spec.double_pass else 1
    passes = 0
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            row[size] = _simulate_cell(spec, events, size, assoc)
            passes += per_sim
        counts[assoc] = row

    # OPT has no per-configuration simulator: the stack engine is the
    # only implementation, so the reference curve is computed the
    # single-pass way even under the grid engine.
    opt_counts = None
    aux = 0
    if spec.include_opt:
        opt_spec = SweepSpec(
            cache=spec.cache, sizes=spec.sizes, associativities=(1,),
            line_words=spec.line_words,
            warmup_fraction=spec.warmup_fraction,
            double_pass=spec.double_pass,
            dispatched_only=spec.dispatched_only,
            include_opt=True, engine="single-pass",
            semantics=spec.semantics)
        opt_surface = _run_single_pass(opt_spec, events)
        opt_counts = opt_surface.opt_counts
        passes += 2 if spec.double_pass else 1
        aux = opt_surface.meta["aux_passes"]
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "grid",
        "semantics": spec.semantics,
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(events),
        "configurations": sum(len(row) for row in counts.values()),
    })


# -- public entry points ---------------------------------------------------

def run_sweep(spec: SweepSpec,
              events: Sequence) -> ResultSurface:
    """Execute one sweep over a trace, choosing the engine per spec.

    ``events`` may be a columnar :class:`~repro.trace.columnar.Trace`
    (the store's native type; iterated column-wise throughout) or a
    legacy ``TraceEvent`` sequence, which is packed into columns once
    up front.

    Store-backed traces (those carrying a ``store_key`` stamp) are
    memoized through the on-disk result cache: a repeated query
    reconstructs the surface from
    :meth:`~repro.sweep.surface.ResultSurface.to_payload` -- ``meta``
    verbatim, so cached figures render byte-identically -- without
    replaying a single reference.  The ``sweep.replay`` counter
    increments only when an engine actually ran, which is how "a
    repeated run performs zero replays" is asserted.
    """
    events = as_trace(events)
    cache = key = None
    trace_key = getattr(events, "store_key", None)
    if trace_key and getattr(events, "store_root", None) \
            and ResultCache.enabled():
        cache = _result_cache(events.store_root)
        key = result_cache_key(spec, trace_key)
        payload = cache.get(key)
        if payload is not None:
            surface = ResultSurface.from_payload(spec, payload)
            if surface is not None:
                with telemetry.span("sweep.run", cache=spec.cache,
                                    engine=spec.engine) as sp:
                    sp.set(outcome="result-cache-hit",
                           resolved_engine=surface.meta.get("engine"))
                return surface
            # Decoded JSON but not a surface document: rewrite below.
    with telemetry.span("sweep.run", cache=spec.cache,
                        engine=spec.engine) as sp:
        start = time.perf_counter()
        surface = _dispatch(spec, events)
        elapsed = time.perf_counter() - start
        meta = surface.meta
        sp.set(resolved_engine=meta["engine"],
               trace_passes=meta["trace_passes"],
               references=meta.get("references", meta.get("events")))
        telemetry.inc("sweep.replay", cache=spec.cache,
                      engine=meta["engine"])
        if telemetry.enabled() and elapsed > 0:
            replayed = ((meta.get("references")
                         or meta.get("events") or 0)
                        * max(1, meta["trace_passes"]))
            telemetry.observe("sweep.replay_events_per_sec",
                              replayed / elapsed,
                              cache=spec.cache, engine=meta["engine"])
    if cache is not None:
        cache.put(key, surface.to_payload())
    return surface


def _dispatch(spec: SweepSpec, events: Sequence) -> ResultSurface:
    """Engine selection (see :func:`run_sweep`)."""
    if spec.engine == "grid":
        return _run_grid(spec, events)
    eligible = spec.single_pass_eligible()
    if spec.engine == "numpy":
        np_engine.require_numpy()
        if not eligible:
            raise ValueError(
                f"spec is not single-pass eligible, so the numpy "
                f"backend cannot run it (policy={spec.policy!r}; set "
                f"counts must be powers of two): {spec}")
        return _run_single_pass(spec, events, use_numpy=True)
    if spec.engine == "single-pass" and not eligible:
        raise ValueError(
            f"spec is not single-pass eligible (policy={spec.policy!r}; "
            f"set counts must be powers of two): {spec}")
    if eligible:
        # "auto": the vectorized backend when the optional numpy extra
        # is importable, the pure-python engine otherwise -- both are
        # bitwise-identical, so the fallback is silent by design.
        use_numpy = (spec.engine == "auto"
                     and np_engine.numpy_available())
        return _run_single_pass(spec, events, use_numpy=use_numpy)
    return _run_grid(spec, events)


def run_hierarchy(hierarchy: HierarchySpec,
                  events: Sequence) -> Tuple[ResultSurface, ...]:
    """Run every level of a hierarchy over one trace, in order.

    Routed through the batch planner
    (:func:`repro.sweep.planner.run_batch`), so levels that differ
    only in geometry coalesce into one superset replay; the surfaces
    stay bitwise-identical to per-level :func:`run_sweep` calls.  Use
    :func:`run_hierarchy_planned` to also see what the batch cost.
    """
    return run_hierarchy_planned(hierarchy, events)[0]


def run_hierarchy_planned(hierarchy: HierarchySpec, events: Sequence):
    """(level surfaces, :class:`~repro.sweep.planner.BatchReport`)."""
    from repro.sweep.planner import Query, run_batch
    events = as_trace(events)
    batch = run_batch([Query(spec=level) for level in hierarchy.levels],
                      events)
    return tuple(batch.surfaces), batch.report


def run_semantics_delta(
    spec: SweepSpec, events: Sequence,
) -> Tuple[ResultSurface, ResultSurface, Dict[object, Dict[int, float]]]:
    """One spec under both semantics: (paper, v2, v2 - paper ratios).

    Quantifies what the paper's warm-up quirk family costs on this
    grid instead of leaving it buried in the pinned figures.  The
    delta is per cell (``delta[assoc][size]``, v2 ratio minus paper
    ratio) and is identically zero for double-pass specs -- the quirks
    live entirely in the single-pass fraction window.
    """
    from dataclasses import replace
    paper = run_sweep(replace(spec, semantics="paper"), events)
    v2 = run_sweep(replace(spec, semantics="v2"), events)
    delta = {assoc: {size: v2.ratio(assoc, size) - paper.ratio(assoc, size)
                     for size in row}
             for assoc, row in paper.counts.items()}
    return paper, v2, delta
