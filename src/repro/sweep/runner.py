"""Drivers: a SweepSpec plus a trace -> a ResultSurface.

``run_sweep`` picks the execution engine per spec:

* **single-pass** (:class:`~repro.sweep.engine.MultiConfigLRU`) when
  the spec is LRU with power-of-two set counts -- one simulation
  replay of the trace (two under the paper's double-pass warm-up)
  produces every grid cell at once;
* **grid** otherwise (or on request) -- one
  :func:`~repro.trace.cachesim.simulate_itlb` /
  :func:`~repro.trace.cachesim.simulate_icache` call per cell, which
  supports any replacement policy and geometry.

Both paths produce *bitwise identical* hit ratios for LRU specs:
driver and ``simulate_*`` functions alike place the warm-up window
with :func:`repro.trace.semantics.reset_index`, the single audited
home of the versioned measurement semantics (``"paper"`` preserves
the historical quirk family bit-for-bit; ``"v2"`` fixes it).  The
equivalence is pinned by tests/test_sweep.py under both versions.

``meta["trace_passes"]`` counts *simulation replays* of the event
stream -- the number of times a cache model observed every reference.
Cheap preprocessing (building the filtered reference list, the OPT
next-use scan) is not a simulation replay and is reported separately
as ``meta["aux_passes"]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.caches.setassoc import stable_hash
from repro.sweep.engine import MultiConfigLRU, OptStack, next_use_times
from repro.sweep.spec import HierarchySpec, SweepSpec
from repro.sweep.surface import Cell, ResultSurface
from repro.trace.cachesim import simulate_icache, simulate_itlb
from repro.trace.events import TraceEvent
from repro.trace.semantics import reset_index

#: One reference: (block identity, placement integer).
Ref = Tuple[object, int]


# -- reference streams ----------------------------------------------------

def _itlb_refs(events: Sequence[TraceEvent],
               dispatched_only: bool) -> List[Ref]:
    """The (key, stable hash) stream the ITLB sees."""
    hashes: Dict[Tuple, int] = {}
    refs: List[Ref] = []
    append = refs.append
    for event in events:
        if dispatched_only and not event.dispatched:
            continue
        key = (event.opcode, (event.receiver_class,))
        placement = hashes.get(key)
        if placement is None:
            placement = hashes[key] = stable_hash(key)
        append((key, placement))
    return refs


def _icache_refs(events: Sequence[TraceEvent],
                 line_words: int) -> List[Ref]:
    """The (block, block) stream the icache sees (modulo indexing)."""
    if line_words == 1:
        return [(event.address, event.address) for event in events]
    return [(event.address // line_words, event.address // line_words)
            for event in events]


def _reset_touch(spec: SweepSpec, events: Sequence[TraceEvent],
                 n_refs: int) -> Optional[int]:
    """Where in the *reference* stream the warm-up stats reset lands.

    Delegates to the versioned semantics module so the single-pass
    driver and the ``simulate_*`` loops agree reference-for-reference
    under either semantics version.
    """
    return reset_index(spec.semantics, spec.cache, events, n_refs,
                       warmup_fraction=spec.warmup_fraction,
                       dispatched_only=spec.dispatched_only)


# -- the single-pass path --------------------------------------------------

def _geometry(spec: SweepSpec) -> Tuple[Dict[int, int], int]:
    """(level caps keyed by log2(num_sets), single-set depth bound)."""
    level_caps: Dict[int, int] = {}
    full_cap = 0
    for size, assoc in spec.lru_configs():
        sets = spec.num_sets(size, assoc)
        if sets == 1:
            full_cap = max(full_cap, assoc)
        else:
            k = sets.bit_length() - 1
            level_caps[k] = max(level_caps.get(k, 0), assoc)
    if spec.wants_full_curve():
        full_cap = max(full_cap, max(spec.entries(s) for s in spec.sizes))
    return level_caps, full_cap


def _run_single_pass(spec: SweepSpec,
                     events: Sequence[TraceEvent]) -> ResultSurface:
    refs = (_itlb_refs(events, spec.dispatched_only)
            if spec.cache == "itlb"
            else _icache_refs(events, spec.line_words))
    level_caps, full_cap = _geometry(spec)
    engine = MultiConfigLRU(level_caps, full_cap)
    opt = OptStack(max(spec.entries(s) for s in spec.sizes)) \
        if spec.include_opt else None

    passes = 0
    aux = 1  # the reference-stream build
    if spec.double_pass:
        engine.replay(refs, count=False)
        engine.replay(refs, count=True)
        passes += 2
        if opt is not None:
            blocks = [block for block, _ in refs]
            next_use = next_use_times(blocks + blocks)
            warm = len(blocks)
            for i, block in enumerate(blocks):
                opt.touch(block, next_use[i], count=False)
            for i, block in enumerate(blocks):
                opt.touch(block, next_use[warm + i], count=True)
            passes += 2
            aux += 1
    else:
        reset_at = _reset_touch(spec, events, len(refs))
        # Counting-then-resetting is the same as not counting (state
        # evolution never depends on the counters), so the warm-up
        # window splits into two bulk replays around the reset point.
        if reset_at is None:
            engine.replay(refs, count=True)
        else:
            engine.replay(refs[:reset_at], count=False)
            engine.replay(refs[reset_at:], count=True)
        passes += 1
        if opt is not None:
            next_use = next_use_times([block for block, _ in refs])
            aux += 1
            for index, (block, _) in enumerate(refs):
                opt.touch(block, next_use[index],
                          count=(reset_at is None or index >= reset_at))
            passes += 1

    total = engine.total
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            if assoc == "full":
                hits = engine.full_hits(spec.entries(size))
            else:
                sets = spec.num_sets(size, assoc)
                if sets == 1:
                    hits = engine.full_hits(assoc)
                else:
                    hits = engine.hits(sets.bit_length() - 1, assoc)
            row[size] = (hits, total - hits)
        counts[assoc] = row

    opt_counts = None
    if opt is not None:
        opt_counts = {size: (opt.hits(spec.entries(size)),
                             opt.total - opt.hits(spec.entries(size)))
                      for size in spec.sizes}
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "single-pass",
        "semantics": spec.semantics,
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(events),
        "references": len(refs),
        "measured": total,
    })


# -- the per-configuration grid path ---------------------------------------

def _simulate_cell(spec: SweepSpec, events: Sequence[TraceEvent],
                   size: int, assoc) -> Cell:
    kwargs = dict(policy=spec.policy,
                  warmup_fraction=spec.warmup_fraction,
                  double_pass=spec.double_pass,
                  semantics=spec.semantics)
    if spec.cache == "itlb":
        stats = simulate_itlb(events, size, assoc,
                              dispatched_only=spec.dispatched_only,
                              **kwargs)
    else:
        stats = simulate_icache(events, size, assoc,
                                line_words=spec.line_words, **kwargs)
    return stats.hits, stats.misses


def _run_grid(spec: SweepSpec,
              events: Sequence[TraceEvent]) -> ResultSurface:
    per_sim = 2 if spec.double_pass else 1
    passes = 0
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            row[size] = _simulate_cell(spec, events, size, assoc)
            passes += per_sim
        counts[assoc] = row

    # OPT has no per-configuration simulator: the stack engine is the
    # only implementation, so the reference curve is computed the
    # single-pass way even under the grid engine.
    opt_counts = None
    aux = 0
    if spec.include_opt:
        opt_spec = SweepSpec(
            cache=spec.cache, sizes=spec.sizes, associativities=(1,),
            line_words=spec.line_words,
            warmup_fraction=spec.warmup_fraction,
            double_pass=spec.double_pass,
            dispatched_only=spec.dispatched_only,
            include_opt=True, engine="single-pass",
            semantics=spec.semantics)
        opt_surface = _run_single_pass(opt_spec, events)
        opt_counts = opt_surface.opt_counts
        passes += 2 if spec.double_pass else 1
        aux = opt_surface.meta["aux_passes"]
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "grid",
        "semantics": spec.semantics,
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(events),
        "configurations": sum(len(row) for row in counts.values()),
    })


# -- public entry points ---------------------------------------------------

def run_sweep(spec: SweepSpec,
              events: Sequence[TraceEvent]) -> ResultSurface:
    """Execute one sweep over a trace, choosing the engine per spec."""
    if spec.engine == "grid":
        return _run_grid(spec, events)
    eligible = spec.single_pass_eligible()
    if spec.engine == "single-pass" and not eligible:
        raise ValueError(
            f"spec is not single-pass eligible (policy={spec.policy!r}; "
            f"set counts must be powers of two): {spec}")
    if eligible:
        return _run_single_pass(spec, events)
    return _run_grid(spec, events)


def run_hierarchy(hierarchy: HierarchySpec,
                  events: Sequence[TraceEvent]) -> Tuple[ResultSurface, ...]:
    """Run every level of a hierarchy over one trace, in order."""
    return tuple(run_sweep(level, events) for level in hierarchy.levels)


def run_semantics_delta(
    spec: SweepSpec, events: Sequence[TraceEvent],
) -> Tuple[ResultSurface, ResultSurface, Dict[object, Dict[int, float]]]:
    """One spec under both semantics: (paper, v2, v2 - paper ratios).

    Quantifies what the paper's warm-up quirk family costs on this
    grid instead of leaving it buried in the pinned figures.  The
    delta is per cell (``delta[assoc][size]``, v2 ratio minus paper
    ratio) and is identically zero for double-pass specs -- the quirks
    live entirely in the single-pass fraction window.
    """
    from dataclasses import replace
    paper = run_sweep(replace(spec, semantics="paper"), events)
    v2 = run_sweep(replace(spec, semantics="v2"), events)
    delta = {assoc: {size: v2.ratio(assoc, size) - paper.ratio(assoc, size)
                     for size in row}
             for assoc, row in paper.counts.items()}
    return paper, v2, delta
