"""Drivers: a SweepSpec plus a trace -> a ResultSurface.

``run_sweep`` picks the execution engine per spec:

* **single-pass** (:class:`~repro.sweep.engine.MultiConfigLRU`) when
  the spec is LRU with power-of-two set counts -- one simulation
  replay of the trace (two under the paper's double-pass warm-up)
  produces every grid cell at once;
* **grid** otherwise (or on request) -- one
  :func:`~repro.trace.cachesim.simulate_itlb` /
  :func:`~repro.trace.cachesim.simulate_icache` call per cell, which
  supports any replacement policy and geometry.

Both paths produce *bitwise identical* hit ratios for LRU specs: the
single-pass driver mirrors the warm-up window semantics of the
``simulate_*`` functions exactly, including their documented edge
behaviours (the warm-up cut index is computed over the raw event
stream; for the ITLB a cut landing on a non-dispatched event never
resets; ``simulate_icache`` has no end-of-trace reset).  The
equivalence is pinned by tests/test_sweep.py.

``meta["trace_passes"]`` counts *simulation replays* of the event
stream -- the number of times a cache model observed every reference.
Cheap preprocessing (building the filtered reference list, the OPT
next-use scan) is not a simulation replay and is reported separately
as ``meta["aux_passes"]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.caches.setassoc import stable_hash
from repro.sweep.engine import MultiConfigLRU, OptStack, next_use_times
from repro.sweep.spec import HierarchySpec, SweepSpec
from repro.sweep.surface import Cell, ResultSurface
from repro.trace.cachesim import simulate_icache, simulate_itlb
from repro.trace.events import TraceEvent

#: One reference: (block identity, placement integer).
Ref = Tuple[object, int]


# -- reference streams ----------------------------------------------------

def _itlb_refs(events: Sequence[TraceEvent],
               dispatched_only: bool) -> List[Ref]:
    """The (key, stable hash) stream the ITLB sees."""
    hashes: Dict[Tuple, int] = {}
    refs: List[Ref] = []
    append = refs.append
    for event in events:
        if dispatched_only and not event.dispatched:
            continue
        key = (event.opcode, (event.receiver_class,))
        placement = hashes.get(key)
        if placement is None:
            placement = hashes[key] = stable_hash(key)
        append((key, placement))
    return refs


def _icache_refs(events: Sequence[TraceEvent],
                 line_words: int) -> List[Ref]:
    """The (block, block) stream the icache sees (modulo indexing)."""
    if line_words == 1:
        return [(event.address, event.address) for event in events]
    return [(event.address // line_words, event.address // line_words)
            for event in events]


def _reset_touch(spec: SweepSpec, events: Sequence[TraceEvent],
                 n_refs: int) -> Optional[int]:
    """Where in the *reference* stream the warm-up stats reset lands.

    Mirrors the simulate_* loops reference-for-reference: the cut
    index is computed over raw events; a value of ``n_refs`` means
    "reset after the last reference" (everything measured away), and
    ``None`` means the reset never fires.
    """
    cut = int(len(events) * spec.warmup_fraction)
    if spec.cache == "icache":
        # simulate_icache resets iff the loop reaches index == cut;
        # there is no end-of-trace reset.
        return cut if cut < len(events) else None
    if cut >= len(events):
        return n_refs  # simulate_itlb's trailing reset
    if spec.dispatched_only and not events[cut].dispatched:
        return None    # the cut event is filtered out: never resets
    return sum(1 for event in events[:cut]
               if not spec.dispatched_only or event.dispatched)


# -- the single-pass path --------------------------------------------------

def _geometry(spec: SweepSpec) -> Tuple[Dict[int, int], int]:
    """(level caps keyed by log2(num_sets), single-set depth bound)."""
    level_caps: Dict[int, int] = {}
    full_cap = 0
    for size, assoc in spec.lru_configs():
        sets = spec.num_sets(size, assoc)
        if sets == 1:
            full_cap = max(full_cap, assoc)
        else:
            k = sets.bit_length() - 1
            level_caps[k] = max(level_caps.get(k, 0), assoc)
    if spec.wants_full_curve():
        full_cap = max(full_cap, max(spec.entries(s) for s in spec.sizes))
    return level_caps, full_cap


def _run_single_pass(spec: SweepSpec,
                     events: Sequence[TraceEvent]) -> ResultSurface:
    refs = (_itlb_refs(events, spec.dispatched_only)
            if spec.cache == "itlb"
            else _icache_refs(events, spec.line_words))
    level_caps, full_cap = _geometry(spec)
    engine = MultiConfigLRU(level_caps, full_cap)
    opt = OptStack(max(spec.entries(s) for s in spec.sizes)) \
        if spec.include_opt else None

    passes = 0
    aux = 1  # the reference-stream build
    if spec.double_pass:
        engine.replay(refs, count=False)
        engine.replay(refs, count=True)
        passes += 2
        if opt is not None:
            blocks = [block for block, _ in refs]
            next_use = next_use_times(blocks + blocks)
            warm = len(blocks)
            for i, block in enumerate(blocks):
                opt.touch(block, next_use[i], count=False)
            for i, block in enumerate(blocks):
                opt.touch(block, next_use[warm + i], count=True)
            passes += 2
            aux += 1
    else:
        reset_at = _reset_touch(spec, events, len(refs))
        # Counting-then-resetting is the same as not counting (state
        # evolution never depends on the counters), so the warm-up
        # window splits into two bulk replays around the reset point.
        if reset_at is None:
            engine.replay(refs, count=True)
        else:
            engine.replay(refs[:reset_at], count=False)
            engine.replay(refs[reset_at:], count=True)
        passes += 1
        if opt is not None:
            next_use = next_use_times([block for block, _ in refs])
            aux += 1
            for index, (block, _) in enumerate(refs):
                opt.touch(block, next_use[index],
                          count=(reset_at is None or index >= reset_at))
            passes += 1

    total = engine.total
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            if assoc == "full":
                hits = engine.full_hits(spec.entries(size))
            else:
                sets = spec.num_sets(size, assoc)
                if sets == 1:
                    hits = engine.full_hits(assoc)
                else:
                    hits = engine.hits(sets.bit_length() - 1, assoc)
            row[size] = (hits, total - hits)
        counts[assoc] = row

    opt_counts = None
    if opt is not None:
        opt_counts = {size: (opt.hits(spec.entries(size)),
                             opt.total - opt.hits(spec.entries(size)))
                      for size in spec.sizes}
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "single-pass",
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(events),
        "references": len(refs),
        "measured": total,
    })


# -- the per-configuration grid path ---------------------------------------

def _simulate_cell(spec: SweepSpec, events: Sequence[TraceEvent],
                   size: int, assoc) -> Cell:
    kwargs = dict(policy=spec.policy,
                  warmup_fraction=spec.warmup_fraction,
                  double_pass=spec.double_pass)
    if spec.cache == "itlb":
        stats = simulate_itlb(events, size, assoc,
                              dispatched_only=spec.dispatched_only,
                              **kwargs)
    else:
        stats = simulate_icache(events, size, assoc,
                                line_words=spec.line_words, **kwargs)
    return stats.hits, stats.misses


def _run_grid(spec: SweepSpec,
              events: Sequence[TraceEvent]) -> ResultSurface:
    per_sim = 2 if spec.double_pass else 1
    passes = 0
    counts: Dict[object, Dict[int, Cell]] = {}
    columns = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    for assoc in columns:
        row: Dict[int, Cell] = {}
        for size in spec.sizes:
            row[size] = _simulate_cell(spec, events, size, assoc)
            passes += per_sim
        counts[assoc] = row

    # OPT has no per-configuration simulator: the stack engine is the
    # only implementation, so the reference curve is computed the
    # single-pass way even under the grid engine.
    opt_counts = None
    aux = 0
    if spec.include_opt:
        opt_spec = SweepSpec(
            cache=spec.cache, sizes=spec.sizes, associativities=(1,),
            line_words=spec.line_words,
            warmup_fraction=spec.warmup_fraction,
            double_pass=spec.double_pass,
            dispatched_only=spec.dispatched_only,
            include_opt=True, engine="single-pass")
        opt_surface = _run_single_pass(opt_spec, events)
        opt_counts = opt_surface.opt_counts
        passes += 2 if spec.double_pass else 1
        aux = opt_surface.meta["aux_passes"]
    return ResultSurface(spec, counts, opt_counts, {
        "engine": "grid",
        "trace_passes": passes,
        "aux_passes": aux,
        "events": len(events),
        "configurations": sum(len(row) for row in counts.values()),
    })


# -- public entry points ---------------------------------------------------

def run_sweep(spec: SweepSpec,
              events: Sequence[TraceEvent]) -> ResultSurface:
    """Execute one sweep over a trace, choosing the engine per spec."""
    if spec.engine == "grid":
        return _run_grid(spec, events)
    eligible = spec.single_pass_eligible()
    if spec.engine == "single-pass" and not eligible:
        raise ValueError(
            f"spec is not single-pass eligible (policy={spec.policy!r}; "
            f"set counts must be powers of two): {spec}")
    if eligible:
        return _run_single_pass(spec, events)
    return _run_grid(spec, events)


def run_hierarchy(hierarchy: HierarchySpec,
                  events: Sequence[TraceEvent]) -> Tuple[ResultSurface, ...]:
    """Run every level of a hierarchy over one trace, in order."""
    return tuple(run_sweep(level, events) for level in hierarchy.levels)
