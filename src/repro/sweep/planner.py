"""Batched sweep query planning: N queries, one trace pass per group.

The single-pass engine already computes a *whole* hit-ratio surface
from one replay, so N queries against the same trace should cost one
pass, not N.  This module is the layer that makes that true for
callers who arrive with *queries* (a curve here, an iso-ratio
threshold there, a point ratio somewhere else) rather than one
carefully crafted superset spec:

:class:`Query`
    One normalized question -- a :class:`~repro.sweep.spec.SweepSpec`
    plus a kind (``sweep`` / ``curve`` / ``isoratio`` / ``stats`` /
    ``ratio``) and the kind's arguments -- with :meth:`Query.answer`
    projecting the JSON-shaped reply out of a surface.

:func:`run_batch`
    The planner.  Queries are answered from cache when possible
    (the in-memory :class:`SurfaceCache`, then the disk
    :class:`~repro.workloads.library.ResultCache`); the misses are
    grouped by everything that must match for two queries to share a
    replay (cache kind, line size, policy, warm-up, semantics,
    engine -- the trace itself is the batch's), the *superset*
    geometry (union of sizes, union of associativities) is run once
    per group through :func:`~repro.sweep.runner.run_sweep`, and each
    query's surface is *projected* out of the superset.

    Projection is bitwise-exact by construction: the stack-distance
    engine's per-level depth histograms are independent, and widening
    a level's cap never changes the hit counts at shallower depths
    (a reference past every swept way count simply misses
    everywhere), so the superset's counts for any sub-grid are the
    same integers an individual replay produces.  The projected
    surface's ``meta`` is reconstructed exactly as the individual
    run would have reported it (``trace_passes`` / ``aux_passes``
    reflect the query's own spec, not the superset's), which is what
    keeps batch-planned figures byte-identical to per-query runs.

    Groups that cannot merge -- the union geometry fails spec
    validation, the spec is not single-pass eligible, or the caller
    forced the ``grid`` engine -- fall back to individual
    :func:`~repro.sweep.runner.run_sweep` calls, counted in the
    :class:`BatchReport` so the fallback is visible, never silent.

:class:`SurfaceCache`
    A byte-budgeted in-memory LRU of result payloads (the same JSON
    documents the disk cache stores) keyed by the same content key,
    with **single-flight** deduplication: concurrent identical
    replays (the async front-end's executor threads) share one
    computation, the waiters adopting the leader's payload.  Budget
    via ``REPRO_SURFACE_CACHE_BYTES`` (default 64 MiB); disable with
    ``REPRO_SURFACE_CACHE=0``.

Caching only engages for store-stamped traces (those carrying
``store_key`` / ``store_root``), exactly like :func:`run_sweep`;
grouping and projection work for any trace.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.sweep.runner import _result_cache, result_cache_key, run_sweep
from repro.sweep.spec import CACHE_KINDS, ENGINES, SweepSpec
from repro.sweep.surface import ResultSurface
from repro.trace.columnar import as_trace
from repro.trace.semantics import SEMANTICS
from repro.workloads.library import ResultCache

Assoc = Union[int, str]

QUERY_KINDS = ("sweep", "curve", "isoratio", "stats", "ratio")

ENV_SURFACE_CACHE = "REPRO_SURFACE_CACHE"
ENV_SURFACE_BUDGET = "REPRO_SURFACE_CACHE_BYTES"

#: In-memory surface budget when ``REPRO_SURFACE_CACHE_BYTES`` is
#: unset: a paper-grid payload is ~1 KiB, so this holds ~10^4 hot
#: surfaces without approaching the disk cache's budget.
DEFAULT_SURFACE_BUDGET = 64 * 1024 * 1024


def _spec_columns(spec: SweepSpec) -> List[Assoc]:
    """The column order a surface for *spec* iterates in."""
    columns: List[Assoc] = list(spec.associativities)
    if spec.include_full and "full" not in columns:
        columns.append("full")
    return columns


@dataclass(frozen=True)
class Query:
    """One normalized sweep question against one trace.

    ``kind`` picks the answer shape; ``associativity`` / ``size`` /
    ``target`` are the kind's arguments (validated against the spec's
    grid, so a malformed query fails at construction, not after a
    replay).
    """

    spec: SweepSpec
    kind: str = "sweep"
    associativity: Optional[Assoc] = None
    size: Optional[int] = None
    target: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}; "
                             f"expected one of {QUERY_KINDS}")
        columns = _spec_columns(self.spec)
        if self.kind in ("curve", "stats", "ratio"):
            if self.associativity is None:
                raise ValueError(
                    f"a {self.kind!r} query needs an associativity")
            if self.associativity not in columns:
                raise ValueError(
                    f"associativity {self.associativity!r} is not in "
                    f"the swept columns {columns}")
        if self.kind in ("stats", "ratio"):
            if self.size is None:
                raise ValueError(f"a {self.kind!r} query needs a size")
            if self.size not in self.spec.sizes:
                raise ValueError(
                    f"size {self.size!r} is not in the swept sizes "
                    f"{self.spec.sizes}")
        if self.kind == "isoratio":
            if self.target is None:
                raise ValueError("an 'isoratio' query needs a target")
            if not 0.0 < self.target <= 1.0:
                raise ValueError(
                    f"isoratio target must be in (0, 1], got "
                    f"{self.target!r}")

    def answer(self, surface: ResultSurface):
        """The JSON-shaped reply for this query, read off *surface*."""
        if self.kind == "sweep":
            return {
                "grid": [[assoc, size, surface.ratio(assoc, size)]
                         for assoc in surface.counts
                         for size in surface.counts[assoc]],
                "meta": dict(surface.meta),
            }
        if self.kind == "curve":
            return {"associativity": self.associativity,
                    "points": surface.curve(self.associativity)}
        if self.kind == "isoratio":
            return {"target": self.target,
                    "thresholds": {str(assoc): size for assoc, size
                                   in surface.isoratio(self.target)
                                   .items()}}
        hits, misses = surface.cell(self.associativity, self.size)
        cell = {"associativity": self.associativity, "size": self.size,
                "ratio": surface.ratio(self.associativity, self.size)}
        if self.kind == "stats":
            cell.update(hits=hits, misses=misses,
                        accesses=hits + misses)
        return cell


def query_from_request(document: dict) -> Query:
    """Build a :class:`Query` from one wire-format dict.

    Raises :class:`ValueError` (with a client-facing message) on any
    malformed field; the server turns that into a per-query error
    entry instead of failing the request.  Point queries (``stats`` /
    ``ratio``) that name only their cell are normalized to a
    single-cell spec, which the planner then coalesces into whatever
    superset the batch needs.
    """
    if not isinstance(document, dict):
        raise ValueError(f"a query must be an object, got "
                         f"{type(document).__name__}")
    kind = document.get("kind", "sweep")
    known = {"kind", "cache", "sizes", "associativities", "line_words",
             "policy", "warmup_fraction", "double_pass",
             "dispatched_only", "full", "opt", "engine", "semantics",
             "associativity", "size", "target", "label"}
    unknown = set(document) - known
    if unknown:
        raise ValueError(f"unknown query field(s) "
                         f"{sorted(unknown)}; known: {sorted(known)}")
    cache = document.get("cache")
    if cache not in CACHE_KINDS:
        raise ValueError(f"query needs a cache kind, one of "
                         f"{CACHE_KINDS}; got {cache!r}")
    spec_kw: Dict[str, object] = {"cache": cache}
    associativity = document.get("associativity")
    size = document.get("size")
    if "sizes" in document:
        spec_kw["sizes"] = tuple(document["sizes"])
    elif kind in ("stats", "ratio") and size is not None:
        spec_kw["sizes"] = (size,)          # normalized point query
    if "associativities" in document:
        spec_kw["associativities"] = tuple(document["associativities"])
    elif kind in ("stats", "ratio", "curve") and associativity is not None:
        spec_kw["associativities"] = (associativity,)
    for key, spec_field in (("line_words", "line_words"),
                            ("policy", "policy"),
                            ("warmup_fraction", "warmup_fraction"),
                            ("double_pass", "double_pass"),
                            ("dispatched_only", "dispatched_only"),
                            ("full", "include_full"),
                            ("opt", "include_opt"),
                            ("engine", "engine"),
                            ("semantics", "semantics"),
                            ("label", "label")):
        if key in document:
            spec_kw[spec_field] = document[key]
    if spec_kw.get("engine", "auto") not in ENGINES:
        raise ValueError(f"unknown engine {spec_kw['engine']!r}; "
                         f"expected one of {ENGINES}")
    if spec_kw.get("semantics", "paper") not in SEMANTICS:
        raise ValueError(f"unknown semantics "
                         f"{spec_kw['semantics']!r}; expected one of "
                         f"{SEMANTICS}")
    spec = SweepSpec(**spec_kw)  # ValueError on bad geometry
    return Query(spec=spec, kind=kind, associativity=associativity,
                 size=size, target=document.get("target"))


# -- the in-memory surface cache -------------------------------------------

class _Flight:
    """One in-progress superset replay waiters can adopt."""

    __slots__ = ("event", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[dict] = None


class SurfaceCache:
    """Byte-budgeted LRU of result payloads, with single-flight.

    Keys are the same content keys the disk
    :class:`~repro.workloads.library.ResultCache` uses, values the
    same JSON payloads, so the two tiers are interchangeable views of
    one identity.  Thread-safe: the async front-end's executor
    threads share one instance.
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is None:
            try:
                budget_bytes = int(
                    os.environ.get(ENV_SURFACE_BUDGET,
                                   str(DEFAULT_SURFACE_BUDGET)))
            except ValueError:
                budget_bytes = DEFAULT_SURFACE_BUDGET
        self.budget_bytes = max(0, budget_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[dict, int]]" \
            = OrderedDict()
        self._bytes = 0
        self._inflight: Dict[str, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.shared = 0
        self.evicted = 0

    @staticmethod
    def enabled() -> bool:
        """False when ``REPRO_SURFACE_CACHE=0`` (or ``off``/``false``)
        disables the in-memory tier for the process."""
        return os.environ.get(ENV_SURFACE_CACHE, "1").strip().lower() \
            not in ("0", "off", "false", "no")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: str) -> bool:
        """Existence probe -- no LRU refresh, no counters (the server
        uses this for admission decisions)."""
        with self._lock:
            return key in self._entries

    def _get_locked(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def _put_locked(self, key: str, payload: dict) -> None:
        size = len(json.dumps(payload, sort_keys=True,
                              separators=(",", ":")))
        if key in self._entries:
            self._bytes -= self._entries.pop(key)[1]
        self._entries[key] = (payload, size)
        self._bytes += size
        while self._bytes > self.budget_bytes and self._entries:
            _, (_, dropped) = self._entries.popitem(last=False)
            self._bytes -= dropped
            self.evicted += 1

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            payload = self._get_locked(key)
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            self._put_locked(key, payload)

    def get_or_compute(self, key: str, compute) -> Tuple[dict, str]:
        """The payload for *key*, computing it at most once at a time.

        Returns ``(payload, outcome)`` with outcome ``"hit"`` (already
        cached), ``"computed"`` (this caller ran *compute*) or
        ``"shared"`` (another thread's in-flight computation was
        adopted).  If the leader raises, its waiters retry -- one of
        them becomes the next leader, so a transient failure never
        wedges the key.
        """
        while True:
            with self._lock:
                payload = self._get_locked(key)
                if payload is not None:
                    self.hits += 1
                    return payload, "hit"
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    break
            flight.event.wait()
            if flight.payload is not None:
                with self._lock:
                    self.shared += 1
                return flight.payload, "shared"
            # The leader failed; loop and contend for leadership.
        try:
            payload = compute()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.payload = payload
        with self._lock:
            self.misses += 1
            self._put_locked(key, payload)
            self._inflight.pop(key, None)
        flight.event.set()
        return payload, "computed"

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "bytes": self._bytes,
                    "budget_bytes": self.budget_bytes,
                    "hits": self.hits, "misses": self.misses,
                    "shared": self.shared, "evicted": self.evicted}


_DEFAULT_CACHE: Optional[SurfaceCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_surface_cache() -> SurfaceCache:
    """The process-wide surface cache (CLI, hierarchy runs and the
    server all share it, so their hits compound)."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = SurfaceCache()
        return _DEFAULT_CACHE


# -- planning --------------------------------------------------------------

def _group_key(spec: SweepSpec) -> Tuple:
    """Everything two specs must share to answer from one replay.

    Geometry (sizes, associativities, the reference-curve flags) is
    deliberately absent -- that is what the superset unions away.
    ``engine`` stays: it is part of the result-cache identity and of
    ``meta``, so an ``auto`` query and a ``single-pass`` query never
    share a surface even when their counts would agree.
    """
    return (spec.cache, spec.line_words, spec.policy,
            spec.warmup_fraction, spec.double_pass,
            spec.dispatched_only, spec.engine, spec.semantics)


def _superset_spec(specs: Sequence[SweepSpec]) -> Optional[SweepSpec]:
    """The union-geometry spec one replay of the group runs, or None
    when the group must fall back to individual runs.

    The union can be invalid where every member is valid (a size from
    one query need not divide an associativity from another), and
    non-eligible specs (non-LRU, non-power-of-two set counts, forced
    ``grid`` engine) have no superset-projection property to lean on;
    both answer None and the caller runs the queries one by one.
    """
    sizes = tuple(sorted({size for spec in specs
                          for size in spec.sizes}))
    int_assocs = tuple(sorted({assoc for spec in specs
                               for assoc in spec.associativities
                               if assoc != "full"}))
    wants_full = any(spec.wants_full_curve() for spec in specs)
    base = specs[0]
    if base.engine == "grid":
        return None
    try:
        merged = replace(
            base, sizes=sizes,
            associativities=int_assocs or ("full",),
            include_full=wants_full,
            include_opt=any(spec.include_opt for spec in specs),
            label="")
    except ValueError:
        return None
    if not merged.single_pass_eligible():
        return None
    return merged


def _project(spec: SweepSpec, superset: ResultSurface) -> ResultSurface:
    """*spec*'s surface read out of the superset's counts.

    ``meta`` is reconstructed to exactly what an individual
    single-pass run of *spec* reports: pass counts follow the query's
    own ``double_pass`` / ``include_opt`` flags (the superset may
    have unioned ``include_opt`` in for someone else), while engine,
    reference and measured counts are grid-independent within a
    group and carry over verbatim.
    """
    counts: Dict[Assoc, Dict[int, Tuple[int, int]]] = {}
    for assoc in _spec_columns(spec):
        row = superset.counts[assoc]
        counts[assoc] = {size: row[size] for size in spec.sizes}
    opt_counts = None
    if spec.include_opt:
        opt_counts = {size: superset.opt_counts[size]
                      for size in spec.sizes}
    passes = 2 if spec.double_pass else 1
    aux = 1
    if spec.include_opt:
        passes *= 2
        aux += 1
    meta = {
        "engine": superset.meta["engine"],
        "semantics": spec.semantics,
        "trace_passes": passes,
        "aux_passes": aux,
        "events": superset.meta["events"],
        "references": superset.meta["references"],
        "measured": superset.meta["measured"],
    }
    return ResultSurface(spec, counts, opt_counts, meta)


@dataclass
class BatchReport:
    """What one planned batch actually cost, for footers/telemetry."""

    queries: int = 0
    #: Engine replays that actually ran (superset runs + fallbacks).
    replays: int = 0
    #: Simulation passes over the trace those replays performed.
    trace_passes: int = 0
    #: Queries answered from a superset replay shared with >= 1 other.
    coalesced: int = 0
    #: Superset groups formed (however they were then satisfied).
    groups: int = 0
    #: Queries run individually because their group could not merge.
    fallbacks: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    #: Whole groups answered from a cached superset surface.
    superset_hits: int = 0
    singleflight_shared: int = 0

    @property
    def queries_per_replay(self) -> Optional[float]:
        return self.queries / self.replays if self.replays else None

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "replays": self.replays,
            "trace_passes": self.trace_passes,
            "coalesced": self.coalesced,
            "groups": self.groups,
            "fallbacks": self.fallbacks,
            "cache_hits": {"memory": self.memory_hits,
                           "disk": self.disk_hits,
                           "superset": self.superset_hits},
            "singleflight_shared": self.singleflight_shared,
            "queries_per_replay": self.queries_per_replay,
        }


@dataclass
class BatchResult:
    """Per-query surfaces (aligned with the input order) + the bill."""

    queries: List[Query]
    surfaces: List[ResultSurface]
    report: BatchReport = field(default_factory=BatchReport)

    def answers(self) -> List[object]:
        return [query.answer(surface)
                for query, surface in zip(self.queries, self.surfaces)]


def run_batch(queries: Sequence[Query], events,
              *, surface_cache: Optional[SurfaceCache] = None
              ) -> BatchResult:
    """Answer every query over one trace with as few replays as the
    grouping rules allow.  See the module docstring for the pipeline;
    the returned surfaces are bitwise-identical to per-query
    :func:`~repro.sweep.runner.run_sweep` results (pinned by
    tests/test_planner.py).
    """
    queries = list(queries)
    events = as_trace(events)
    memory = surface_cache if surface_cache is not None \
        else default_surface_cache()
    if not SurfaceCache.enabled():
        memory = None
    trace_key = getattr(events, "store_key", None)
    store_root = getattr(events, "store_root", None)
    disk = _result_cache(store_root) \
        if trace_key and store_root and ResultCache.enabled() else None

    report = BatchReport(queries=len(queries))
    telemetry.inc("planner.queries", len(queries))
    surfaces: List[Optional[ResultSurface]] = [None] * len(queries)
    keys: List[Optional[str]] = [None] * len(queries)
    pending: Dict[Tuple, List[int]] = {}

    with telemetry.span("planner.batch", queries=len(queries)) as sp:
        for i, query in enumerate(queries):
            key = result_cache_key(query.spec, trace_key) \
                if trace_key else None
            keys[i] = key
            if key is not None and memory is not None:
                payload = memory.get(key)
                if payload is not None:
                    surface = ResultSurface.from_payload(query.spec,
                                                         payload)
                    if surface is not None:
                        surfaces[i] = surface
                        report.memory_hits += 1
                        telemetry.inc("planner.cache_hit",
                                      tier="memory")
                        continue
            if key is not None and disk is not None:
                payload = disk.get(key)
                if payload is not None:
                    surface = ResultSurface.from_payload(query.spec,
                                                         payload)
                    if surface is not None:
                        surfaces[i] = surface
                        report.disk_hits += 1
                        telemetry.inc("planner.cache_hit", tier="disk")
                        if memory is not None:
                            memory.put(key, payload)
                        continue
            pending.setdefault(_group_key(query.spec), []).append(i)

        for indexes in pending.values():
            report.groups += 1
            merged = _superset_spec([queries[i].spec for i in indexes])
            if merged is None:
                for i in indexes:
                    surfaces[i] = run_sweep(queries[i].spec, events)
                    report.fallbacks += 1
                    report.replays += 1
                    report.trace_passes += \
                        surfaces[i].meta.get("trace_passes", 0)
                    telemetry.inc("planner.fallback")
                continue
            superset = _run_superset(merged, events, trace_key, memory,
                                     disk, len(indexes), report)
            for i in indexes:
                surface = _project(queries[i].spec, superset)
                surfaces[i] = surface
                if keys[i] is not None:
                    payload = surface.to_payload()
                    if memory is not None:
                        memory.put(keys[i], payload)
                    if disk is not None:
                        disk.put(keys[i], payload)
        sp.set(replays=report.replays, coalesced=report.coalesced,
               cache_hits=report.memory_hits + report.disk_hits)
    return BatchResult(queries=queries, surfaces=surfaces,
                       report=report)


def _run_superset(merged: SweepSpec, events, trace_key: Optional[str],
                  memory: Optional[SurfaceCache],
                  disk: Optional[ResultCache],
                  group_size: int, report: BatchReport) -> ResultSurface:
    """One group's superset surface, via every cache tier in turn."""
    key = result_cache_key(merged, trace_key) if trace_key else None
    was_on_disk = disk is not None and key is not None \
        and disk.contains(key)

    def compute() -> dict:
        # run_sweep handles the disk tier itself (consult + put) and
        # emits the sweep.run span / sweep.replay counter, so a
        # superset replay is indistinguishable from any other sweep
        # in the existing telemetry.
        return run_sweep(merged, events).to_payload()

    if memory is not None and key is not None:
        payload, outcome = memory.get_or_compute(key, compute)
    else:
        payload, outcome = compute(), "computed"
    if outcome == "shared":
        report.singleflight_shared += 1
        telemetry.inc("planner.singleflight_shared")
    surface = ResultSurface.from_payload(merged, payload)
    if surface is None:  # never expected; defensive re-run
        surface = run_sweep(merged, events)
        outcome = "computed"
    if outcome == "computed" and not was_on_disk:
        report.replays += 1
        report.trace_passes += surface.meta.get("trace_passes", 0)
        telemetry.inc("planner.replays")
        telemetry.observe("planner.queries_per_replay", group_size)
        if group_size > 1:
            report.coalesced += group_size
            telemetry.inc("planner.coalesced", group_size)
    else:
        report.superset_hits += 1
        telemetry.inc("planner.cache_hit", tier="superset")
    return surface
