"""Single-pass multi-configuration cache sweeps (the section-5 grids).

The classic design-space methodology -- replay one trace, read off
the whole hit-ratio surface -- as a subsystem:

* :mod:`repro.sweep.spec` -- :class:`SweepSpec` / :class:`HierarchySpec`,
  declarative descriptions of what to sweep;
* :mod:`repro.sweep.engine` -- the Mattson-style stack-distance
  engine: every LRU (size, associativity) point from one trace
  replay, plus the OPT/Belady reference stack;
* :mod:`repro.sweep.np_engine` -- the vectorized numpy twin of the
  stack-distance engine (optional extra, bitwise-identical, an order
  of magnitude faster on the paper trace);
* :mod:`repro.sweep.runner` -- engine selection (single-pass when
  eligible, per-configuration grid otherwise) and the warm-up window
  drivers, bitwise-equivalent to the ``simulate_*`` functions;
* :mod:`repro.sweep.surface` -- :class:`ResultSurface`: grid queries,
  iso-ratio thresholds, figure-shaped extraction.

Typical use::

    from repro.sweep import SweepSpec, run_sweep

    surface = run_sweep(SweepSpec(cache="itlb", double_pass=True),
                        events)
    surface.ratio(2, 512)                  # one grid point
    surface.smallest_size_reaching(0.99, 2)  # iso-ratio query

or, for the paper's figure pair in one declared object::

    from repro.sweep import paper_hierarchy, run_hierarchy

    itlb, icache = run_hierarchy(paper_hierarchy(include_opt=True),
                                 events)
"""

from repro.sweep.engine import MultiConfigLRU, OptStack, next_use_times
from repro.sweep.np_engine import NumpyMultiConfigLRU, numpy_available
from repro.sweep.planner import (
    BatchReport,
    BatchResult,
    Query,
    SurfaceCache,
    default_surface_cache,
    query_from_request,
    run_batch,
)
from repro.sweep.runner import (
    result_cache_key,
    run_hierarchy,
    run_hierarchy_planned,
    run_semantics_delta,
    run_sweep,
)
from repro.sweep.spec import (
    DEFAULT_SEMANTICS,
    HierarchySpec,
    PAPER_ASSOCIATIVITIES,
    PAPER_SIZES,
    SEMANTICS,
    SweepSpec,
    paper_hierarchy,
)
from repro.sweep.surface import ResultSurface, semantics_delta_table

__all__ = [
    "BatchReport",
    "BatchResult",
    "DEFAULT_SEMANTICS",
    "HierarchySpec",
    "MultiConfigLRU",
    "NumpyMultiConfigLRU",
    "OptStack",
    "PAPER_ASSOCIATIVITIES",
    "PAPER_SIZES",
    "Query",
    "ResultSurface",
    "SEMANTICS",
    "SurfaceCache",
    "SweepSpec",
    "default_surface_cache",
    "next_use_times",
    "numpy_available",
    "paper_hierarchy",
    "query_from_request",
    "result_cache_key",
    "run_batch",
    "run_hierarchy",
    "run_hierarchy_planned",
    "run_semantics_delta",
    "run_sweep",
    "semantics_delta_table",
]
