"""Single-pass multi-configuration cache simulation (stack distances).

The classic observation (Mattson et al. 1970, generalized to
set-associative caches by Hill & Smith) is that LRU is a *stack
algorithm*: at any moment the contents of an A-way LRU set are exactly
the A most-recently-used blocks mapping to that set, for every A at
once.  A reference therefore hits in an (S sets, A ways) cache iff
fewer than A *distinct* conflicting blocks (same set under S) were
touched since the previous reference to the same block.  Replaying the
trace once while recording those per-set stack depths yields the hit
count of every configuration simultaneously -- one trace pass instead
of one per (size, associativity) point.

Two structures implement that here:

* :class:`MultiConfigLRU` -- one *level* per swept power-of-two set
  count.  A level keeps, per set, a bounded most-recent-first list of
  blocks: depths only matter up to the deepest swept associativity
  (4 on the paper grid), so each list is truncated there and a
  reference that falls off the end is simply "missed at every swept
  way count".  Set membership under S = 2^k sets is a pure function
  of the block's placement value (the stable hash for the ITLB's
  hashed directory, the block address for the icache's modulo
  indexing), so the same replay serves every level.  An optional
  unbounded-depth level (one set) yields the fully-associative
  reference curve and any one-set configurations.

* :class:`OptStack` -- the OPT/Belady reference curve.  OPT is also a
  stack algorithm, but its stack update needs each block's *next*
  reference time, so it is inherently two-pass:
  :func:`next_use_times` scans the stream backwards first, then the
  priority-carry update (the sooner-reused block stays shallower, the
  farther-reused one is carried down) maintains the stack on the
  second pass.

Both structures count into histograms of (capped) stack depth;
``hits(...)`` answers are prefix sums, computed once per histogram
and cached until the next counted update (surface extraction reads
hundreds of grid cells from the same histograms).  Misses -- compulsory ones
included, in the LRU levels -- land in the overflow bucket beyond
every swept way count, and a counter ``total`` tracks measured
references so per-configuration misses fall out by subtraction.
``reset_counts`` zeroes counters while keeping stack state -- exactly
what the section-5 warm-up methodology's mid-trace ``reset_stats``
does to a live cache.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro import telemetry

#: "Never referenced again" sentinel for OPT priorities; compares
#: greater than every real trace index.
NEVER = float("inf")


class MultiConfigLRU:
    """All swept LRU configurations, updated by one block stream.

    Parameters
    ----------
    level_caps:
        ``log2(num_sets) -> deepest associativity swept`` for every
        multi-set level (``num_sets`` a power of two >= 2).
    full_cap:
        Depth bound of the single-set level (0 disables it).  Covers
        the fully-associative curve (bound = largest capacity in
        entries) and any num_sets == 1 configurations.
    """

    def __init__(self, level_caps: Dict[int, int],
                 full_cap: int = 0) -> None:
        self._hist_by_k: Dict[int, List[int]] = {}
        levels = []
        for k in sorted(level_caps):
            cap = level_caps[k]
            if k <= 0 or cap <= 0:
                raise ValueError(f"bad level (k={k}, cap={cap})")
            hist = [0] * (cap + 1)
            self._hist_by_k[k] = hist
            levels.append(((1 << k) - 1, cap, {}, hist))
        self._levels: Tuple = tuple(levels)
        self._full = None
        self._full_hist: List[int] = []
        if full_cap:
            self._full_hist = [0] * (full_cap + 1)
            self._full = ([], full_cap, self._full_hist)
        self.total = 0
        # Cached hit prefix sums, dropped whenever a histogram counts.
        self._cum_by_k: Optional[Dict[int, List[int]]] = None
        self._full_cum: Optional[List[int]] = None

    # -- replay -----------------------------------------------------------

    def replay(self, refs: Sequence[Tuple[Hashable, int]],
               count: bool = True) -> None:
        """Reference every ``(block, placement)`` pair in order.

        ``placement`` is the integer whose low bits select the set
        (stable hash or block address); ``count=False`` updates stack
        state without recording depths (a warm-up pass).
        """
        blocks = []
        placements = []
        for block, placement in refs:   # one pass: refs may be a
            blocks.append(block)        # one-shot iterable
            placements.append(placement)
        self.replay_columns(blocks, placements, count=count)

    def replay_columns(self, blocks: Sequence[Hashable],
                       placements: Sequence[int],
                       start: int = 0, stop: Optional[int] = None,
                       count: bool = True) -> None:
        """Reference ``blocks[i]`` placed by ``placements[i]`` in order.

        The columnar twin of :meth:`replay`: two parallel indexable
        columns (packed int arrays, memoryviews over a trace's
        address column, or lists) instead of a stream of pair tuples,
        plus ``start``/``stop`` bounds so the warm-up window split
        replays sub-ranges without slicing (and without copying) the
        columns.
        """
        if stop is None:
            stop = len(blocks)
        levels = self._levels
        full = self._full
        n = 0
        for index in range(start, stop):
            block = blocks[index]
            placement = placements[index]
            for mask, cap, sets, hist in levels:
                bucket = placement & mask
                lst = sets.get(bucket)
                if lst is None:
                    sets[bucket] = [block]
                    if count:
                        hist[cap] += 1
                elif block in lst:
                    depth = lst.index(block)
                    if depth:
                        del lst[depth]
                        lst.insert(0, block)
                    if count:
                        hist[depth] += 1
                else:
                    lst.insert(0, block)
                    if len(lst) > cap:
                        del lst[cap]
                    if count:
                        hist[cap] += 1
            if full is not None:
                stack, fcap, fhist = full
                try:
                    depth = stack.index(block)
                except ValueError:
                    depth = fcap
                    stack.insert(0, block)
                    if len(stack) > fcap:
                        del stack[fcap]
                else:
                    if depth:
                        del stack[depth]
                        stack.insert(0, block)
                if count:
                    fhist[depth] += 1
            n += 1
        if count:
            self.total += n
            self._cum_by_k = None
            self._full_cum = None
        if n:
            # One registry bump per bulk replay (never per reference):
            # the disabled path costs a single env lookup here.
            telemetry.inc("sweep.refs_replayed", n,
                          engine="single-pass")

    def touch(self, block: Hashable, placement: int,
              count: bool = True) -> None:
        """Reference one block (incremental alternative to replay).

        The same per-level update the replay loop performs, without
        materializing single-element reference columns per call.
        """
        for mask, cap, sets, hist in self._levels:
            bucket = placement & mask
            lst = sets.get(bucket)
            if lst is None:
                sets[bucket] = [block]
                if count:
                    hist[cap] += 1
            elif block in lst:
                depth = lst.index(block)
                if depth:
                    del lst[depth]
                    lst.insert(0, block)
                if count:
                    hist[depth] += 1
            else:
                lst.insert(0, block)
                if len(lst) > cap:
                    del lst[cap]
                if count:
                    hist[cap] += 1
        if self._full is not None:
            stack, fcap, fhist = self._full
            try:
                depth = stack.index(block)
            except ValueError:
                depth = fcap
                stack.insert(0, block)
                if len(stack) > fcap:
                    del stack[fcap]
            else:
                if depth:
                    del stack[depth]
                    stack.insert(0, block)
            if count:
                fhist[depth] += 1
        if count:
            self.total += 1
            self._cum_by_k = None
            self._full_cum = None

    def reset_counts(self) -> None:
        """Zero every histogram and the access counter; keep stacks."""
        for hist in self._hist_by_k.values():
            hist[:] = [0] * len(hist)
        if self._full_hist:
            self._full_hist[:] = [0] * len(self._full_hist)
        self.total = 0
        self._cum_by_k = None
        self._full_cum = None

    # -- results ----------------------------------------------------------

    def hits(self, k: int, assoc: int) -> int:
        """Measured hits of the (2^k sets, assoc ways) configuration."""
        cum = self._cum_by_k
        if cum is None:
            cum = self._cum_by_k = {
                key: list(accumulate(hist, initial=0))
                for key, hist in self._hist_by_k.items()}
        prefix = cum[k]
        return prefix[min(assoc, len(prefix) - 1)]

    def full_hits(self, entries: int) -> int:
        """Measured hits of a one-set LRU cache with that many entries."""
        if self._full is None:
            raise ValueError("single-set level was not enabled")
        cum = self._full_cum
        if cum is None:
            cum = self._full_cum = list(
                accumulate(self._full_hist, initial=0))
        return cum[min(entries, len(cum) - 1)]

    # -- introspection (tests, benchmarks) --------------------------------

    def histograms(self) -> Dict[int, List[int]]:
        """Per-level depth histograms, ``log2(num_sets) -> counts``."""
        return {k: list(hist) for k, hist in self._hist_by_k.items()}

    def stack_state(self):
        """Current per-set recency stacks (per level, plus single-set).

        A copy, safe to mutate; the numpy backend exposes the same
        shape so equivalence tests can pin post-replay state, not just
        counts.
        """
        levels = {}
        for k, (mask, cap, sets, hist) in zip(sorted(self._hist_by_k),
                                              self._levels):
            levels[k] = {bucket: list(lst) for bucket, lst in sets.items()}
        state = {"levels": levels, "full": None}
        if self._full is not None:
            state["full"] = list(self._full[0])
        return state


def next_use_times(blocks: Sequence[Hashable]) -> List[float]:
    """``result[i]`` = index of the next reference to ``blocks[i]``.

    The backward scan OPT needs before its stack pass; positions with
    no later reference get :data:`NEVER`.
    """
    result: List[float] = [NEVER] * len(blocks)
    last: Dict[Hashable, int] = {}
    for i in range(len(blocks) - 1, -1, -1):
        block = blocks[i]
        nxt = last.get(block)
        if nxt is not None:
            result[i] = nxt
        last[block] = i
    return result


class OptStack:
    """Belady's OPT for every fully-associative capacity at once.

    The stack invariant: after each reference, the top C entries are
    exactly the contents of an OPT-managed cache of capacity C.  The
    update carries the farthest-next-use block downward (each capacity
    evicts its own victim), so unlike LRU the repair walk needs block
    priorities -- the next-use times from :func:`next_use_times`.

    The stack is truncated at ``cap`` (the largest swept capacity):
    blocks only ever move *down* the stack between their references,
    so the top-``cap`` prefix evolves identically with or without the
    deeper tail, and a truncated block's return is indistinguishable
    from a compulsory miss at every swept capacity.
    """

    def __init__(self, cap: int) -> None:
        if cap <= 0:
            raise ValueError("OPT capacity bound must be positive")
        self.cap = cap
        self._stack: List[Hashable] = []
        self._prio: List[float] = []
        self.hist = [0] * (cap + 1)
        self.total = 0
        self._cum: Optional[List[int]] = None

    def touch(self, block: Hashable, next_use: float,
              count: bool = True) -> None:
        stack = self._stack
        prio = self._prio
        size = len(stack)
        try:
            depth = stack.index(block)
        except ValueError:
            depth = size  # a miss: the carry chain runs the whole stack
        if size == 0:
            stack.append(block)
            prio.append(next_use)
        elif depth == 0:
            prio[0] = next_use
        else:
            carry_block, carry_prio = stack[0], prio[0]
            stack[0], prio[0] = block, next_use
            for i in range(1, depth):
                incumbent_prio = prio[i]
                if carry_prio < incumbent_prio:
                    # The carried block is reused sooner: it stays at
                    # this depth and the incumbent is carried down.
                    stack[i], carry_block = carry_block, stack[i]
                    prio[i], carry_prio = carry_prio, incumbent_prio
            if depth < size:
                stack[depth] = carry_block
                prio[depth] = carry_prio
            else:
                # Miss: every capacity admitted the block and evicted
                # its own farthest-reuse victim; the final carry drops
                # off (or grows the stack up to the truncation bound).
                stack.append(carry_block)
                prio.append(carry_prio)
                if len(stack) > self.cap:
                    del stack[self.cap:]
                    del prio[self.cap:]
        if count:
            self.total += 1
            if depth < size:
                cap = self.cap
                self.hist[depth if depth < cap else cap] += 1
                self._cum = None

    def reset_counts(self) -> None:
        self.hist[:] = [0] * len(self.hist)
        self.total = 0
        self._cum = None

    def hits(self, capacity: int) -> int:
        """Measured hits of an OPT-managed cache of that capacity."""
        cum = self._cum
        if cum is None:
            cum = self._cum = list(accumulate(self.hist, initial=0))
        return cum[min(capacity, len(cum) - 1)]
