"""Vectorized numpy replay backend for the single-pass sweep engine.

:class:`NumpyMultiConfigLRU` is a drop-in, bitwise-identical
replacement for :class:`repro.sweep.engine.MultiConfigLRU`: same
constructor, same ``replay``/``replay_columns``/``touch`` update
surface, same ``hits``/``full_hits``/``total``/``reset_counts``
results surface -- but the per-reference LRU stack-depth loop is
replaced by whole-array passes.  On the paper's measurement trace the
replay runs an order of magnitude faster (see BENCH_throughput.json).

The formulation (details in DESIGN.md, "The vectorized stack-distance
backend"):

* Factorize the ``(block, placement)`` columns once per replayed
  segment into dense block ids plus previous-occurrence links
  (:class:`_SegmentStructs`; cached so the warm and counting passes of
  a double-pass replay share one build).
* Per level, sort ``(set id, position)`` composite keys so each set's
  references become one contiguous span, then classify every
  reference by *capped stack depth* with array passes only: depth 0
  (top-of-stack) and compulsory misses fall out of the
  previous-occurrence links directly, and depths 2..cap are resolved
  in *run space* -- maximal same-block stretches -- where the tiny
  depth cap (4 on the paper grid) bounds the work per reference.
* Stack state between segments is carried as one global MRU-ordered
  list of distinct ``(block, placement)`` pairs; replaying that list
  as a synthetic prefix regenerates every level's per-set stacks
  exactly, which is what makes warm-up cuts, mid-trace
  ``reset_counts`` and ``start``/``stop`` sub-range replay match the
  incremental engine bit for bit.

numpy is an *optional* extra (``pip install .[numpy]``): this module
always imports; only constructing the engine (or forcing
``engine="numpy"``) requires the library.  The runner checks
:func:`numpy_available` and falls back to the pure-python engine
when the import is missing.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # exercised by the sys.modules block in the tests
    np = None  # type: ignore[assignment]

from repro import telemetry
from repro.errors import BackendUnavailable

#: Vector rounds of the chain resolver before it falls back to the
#: path-compressed scalar walk (measured best on the paper trace).
_CHAIN_VECTOR_ROUNDS = 6


def numpy_available() -> bool:
    """Whether the vectorized backend can actually run here."""
    return np is not None


def require_numpy() -> None:
    """Raise the typed, actionable error if numpy is missing."""
    if np is None:
        raise BackendUnavailable(
            "the numpy sweep backend was requested but numpy is not "
            "importable; install the optional extra with "
            "'pip install .[numpy]' (or 'pip install numpy'), or use "
            "engine='auto' / engine='single-pass' for the pure-python "
            "fallback")


class _SegmentStructs:
    """Cached, carry-independent factorization of one (columns, range).

    Holds the block-sorted order of the segment: dense block ids,
    previous same-block occurrence indices, first/last occurrence
    tables, and the per-block placement table.  Building this is the
    only O(n log n) work per replayed segment; the warm (count=False)
    pass and the counting pass of a double-pass replay share one
    instance.
    """

    __slots__ = ("blocks", "placements", "start", "stop", "m", "bid",
                 "uniq_vals", "uniq_pvals", "prev", "first_pos",
                 "first_bid", "last_desc_b", "last_desc_p")

    def __init__(self, blocks, placements, start, stop):
        self.blocks = blocks
        self.placements = placements
        self.start = start
        self.stop = stop
        b = np.asarray(blocks, dtype=np.int64)[start:stop]
        p = np.asarray(placements).astype(np.uint64)[start:stop]
        m = self.m = len(b)
        # Stable block-sort.  When (value range, position) packs into
        # one 64-bit key a plain sort is several times faster than a
        # stable argsort of int64; fall back to argsort otherwise.
        bmin = int(b.min()) if m else 0
        vbits = int(int(b.max()) - bmin).bit_length() if m else 0
        ibits = max(1, int(m - 1).bit_length()) if m > 1 else 1
        if m and vbits + ibits <= 63:
            key = (b - bmin).astype(np.uint64)
            key <<= np.uint64(ibits)
            key |= np.arange(m, dtype=np.uint64)
            key.sort()
            order = (key & np.uint64((1 << ibits) - 1)).astype(np.int32)
            bs = (key >> np.uint64(ibits)).astype(np.int64)
            bs += bmin
        else:
            order = np.argsort(b, kind="stable").astype(np.int32)
            bs = b[order]
        glast = np.empty(m, bool)
        glast[-1] = True
        glast[:-1] = bs[1:] != bs[:-1]
        gfirst = np.empty(m, bool)
        gfirst[0] = True
        gfirst[1:] = glast[:-1]
        # The per-level set tables index placements by block id, so
        # every occurrence of a block must carry one placement.
        ps = p[order]
        if m > 1 and not bool(np.all((ps[1:] == ps[:-1]) | glast[:-1])):
            raise ValueError(
                "numpy backend requires placements to be a pure function "
                "of blocks; found a block with two distinct placements")
        bid = np.empty(m, np.int32)
        bid[order] = np.cumsum(gfirst, dtype=np.int32) - np.int32(1)
        self.bid = bid
        self.uniq_vals = bs[glast]
        self.uniq_pvals = ps[glast]
        prev = np.full(m, -1, np.int32)
        if m > 1:
            same = ~glast[:-1]
            prev[order[1:][same]] = order[:-1][same]
        self.prev = prev
        fpos = order[gfirst]
        self.first_pos = fpos
        self.first_bid = bid[fpos]
        last_desc = np.sort(order[glast])[::-1]
        self.last_desc_b = b[last_desc]
        self.last_desc_p = p[last_desc]


class _Scratch:
    """Reused per-replay work arrays shared by all levels."""

    def __init__(self, n, use64):
        dt = np.uint64 if use64 else np.uint32
        self.key = np.empty(n, dt)
        self.kd = np.empty(n, dt)
        self.ar = np.arange(n, dtype=dt)
        self.first = np.empty(n, bool)
        self.posmap = np.empty(n + 1, np.int32)
        self.t32 = np.empty(n, np.int32)
        self.b1 = np.empty(n, bool)
        self.b2 = np.empty(n, bool)
        self.b3 = np.empty(n, bool)
        self.i32 = np.arange(n + 1, dtype=np.int32)


def _alive_tables(cprun, c32):
    """Run-space aliveness: nxr[v] is the run index of the next run of
    run v's block (R if none).  Run v is alive at a query in run q0 iff
    nxr[v] >= q0; nxr2[v] tests the pair (v, v-1) at once.  Built by one
    scatter: run w's block previously occurred as the close of run
    cprun[w]-1, so that run's next-run is w."""
    R = len(cprun)
    nxr = np.full(R + 1, R, np.int32)
    # redirect compulsory starts (cprun <= 0) to the dump slot R
    tgt = np.where(cprun > 0, cprun, np.int32(R + 1))
    tgt -= np.int32(1)
    nxr[tgt] = c32
    nxr2 = nxr[:R].copy()
    if R > 1:
        np.maximum(nxr2[1:], nxr[:R - 1], out=nxr2[1:])
    return nxr, nxr2


def _chain_resolve(v_init, q_s, nxr, nxr2, LF):
    """For each query q, walk runs downward from v_init[q] and return the
    largest run alive at query-run rank q_s[q] (-1 if none).  Dead
    2-block alternations are skipped via the LF leap; queries that
    survive a few vector rounds finish in a path-compressed scalar walk
    (queries visit runs in ascending rank and a run found dead stays dead
    for every later query in its set, so dead spans compress)."""
    rj = np.full(len(q_s), -1, np.int32)
    live = np.nonzero(v_init >= 0)[0]
    vcur = v_init[live]
    rounds = 0
    while len(live):
        rounds += 1
        if rounds > _CHAIN_VECTOR_ROUNDS:
            skip = {}
            nxr_i = nxr.item
            lf_i = LF.item
            q_i = q_s.item
            for q, vq in zip(live.tolist(), vcur.tolist()):
                q0 = q_i(q)
                vv = vq
                res = -1
                visited = []
                while vv >= 0:
                    nxt = skip.get(vv)
                    if nxt is not None:
                        visited.append(vv)
                        vv = nxt
                        continue
                    if nxr_i(vv) >= q0:
                        res = vv
                        break
                    if vv == 0:
                        break
                    if nxr_i(vv - 1) >= q0:
                        res = vv - 1
                        break
                    visited.append(vv)
                    vv = lf_i(vv) - 2
                for u in visited:
                    skip[u] = vv
                rj[q] = res
            break
        pa = nxr2[vcur] >= q_s[live]
        if pa.any():
            hi = live[pa]
            vh = vcur[pa]
            one = nxr[vh] >= q_s[hi]
            rj[hi] = vh - np.int32(1) + one
            np.logical_not(pa, out=pa)
            live = live[pa]
            vcur = vcur[pa]
            if not len(live):
                break
        vcur = LF[vcur]
        vcur -= np.int32(2)
        keep = vcur >= 0
        live = live[keep]
        vcur = vcur[keep]
    return rj


def _depth4_chain(rank_i, r_start, cpr1, LF, nxr, nxr2, counts, cap):
    """Counts of queries at depth >= c for c in 4..cap.

    Appends one per-depth count to ``counts``.  Runs outside the query's
    set segment can report spuriously alive, but the final rank filter
    ``rj >= cpr1`` (the run rank right after the query's previous
    occurrence) rejects them, so no explicit segment bounds are needed.
    """
    sel = np.arange(len(rank_i))
    r_prev = r_start
    for depth in range(4, cap + 1):
        if not len(sel):
            counts.append(0)
            continue
        rj = _chain_resolve(r_prev - 1, rank_i[sel], nxr, nxr2, LF)
        hitj = rj >= cpr1[sel]
        counts.append(int(np.count_nonzero(hitj)))
        sel = sel[hitj]
        r_prev = rj[hitj]


class NumpyMultiConfigLRU:
    """Bitwise-identical numpy replacement for ``MultiConfigLRU``.

    Stack state is carried between replays as a global MRU-ordered list
    of distinct (block, placement) pairs; replaying that list as a
    synthetic prefix regenerates every level's per-set recency stacks
    exactly, so segmented replay (warm-up cuts, ``reset_counts``
    mid-trace, sub-range replay) matches the incremental engine bit for
    bit.  Blocks and placements must be integer columns and placements
    must be a pure function of blocks (both hold for every reference
    stream the runner builds).
    """

    def __init__(self, level_caps: Dict[int, int],
                 full_cap: int = 0) -> None:
        require_numpy()
        self.ks = sorted(level_caps)
        for k in self.ks:
            if k <= 0 or level_caps[k] <= 0:
                raise ValueError(f"bad level (k={k}, cap={level_caps[k]})")
        self.levels = [((1 << k) - 1, level_caps[k]) for k in self.ks]
        self._hists = [np.zeros(cap + 1, np.int64) for _, cap in self.levels]
        self._carry_b = np.empty(0, np.int64)
        self._carry_p = np.empty(0, np.uint64)
        self._full = None
        self._full_hist: List[int] = []
        if full_cap:
            self._full_hist = [0] * (full_cap + 1)
            self._full = ([], full_cap, self._full_hist)
        self.total = 0
        self._seg_cache: List[_SegmentStructs] = []
        self._cum_by_k: Optional[Dict[int, List[int]]] = None
        self._full_cum: Optional[List[int]] = None

    # -- replay -----------------------------------------------------------

    def replay(self, refs: Sequence[Tuple[Hashable, int]],
               count: bool = True) -> None:
        """Reference every ``(block, placement)`` pair in order."""
        blocks = []
        placements = []
        for block, placement in refs:   # one pass: refs may be a
            blocks.append(block)        # one-shot iterable
            placements.append(placement)
        self.replay_columns(blocks, placements, count=count)

    def touch(self, block: Hashable, placement: int,
              count: bool = True) -> None:
        """Reference one block (incremental alternative to replay)."""
        self.replay_columns((block,), (placement,), count=count)

    def _segment(self, blocks, placements, start, stop):
        for s in self._seg_cache:
            if (s.blocks is blocks and s.placements is placements
                    and s.start == start and s.stop == stop):
                return s
        s = _SegmentStructs(blocks, placements, start, stop)
        self._seg_cache.append(s)
        del self._seg_cache[:-2]
        return s

    def replay_columns(self, blocks: Sequence, placements: Sequence[int],
                       start: int = 0, stop: Optional[int] = None,
                       count: bool = True) -> None:
        if stop is None:
            stop = len(blocks)
        if stop <= start:
            return
        seg = self._segment(blocks, placements, start, stop)
        P = len(self._carry_b)
        if count:
            self._count_levels(seg, P)
            self.total += seg.m
            self._cum_by_k = None
            self._full_cum = None

        new_b = seg.last_desc_b
        new_p = seg.last_desc_p
        if P:
            loc = np.searchsorted(seg.uniq_vals, self._carry_b)
            loc_c = np.minimum(loc, len(seg.uniq_vals) - 1)
            keep = seg.uniq_vals[loc_c] != self._carry_b
            # Purity guard across segments (the in-segment guard lives
            # in _SegmentStructs): a carried block re-seen here must
            # re-appear with its carried placement, or the carry-prefix
            # reconstruction would silently diverge from the
            # incremental engine.
            seen = ~keep
            if not bool(np.all(seg.uniq_pvals[loc_c[seen]]
                               == self._carry_p[seen])):
                raise ValueError(
                    "numpy backend requires placements to be a pure "
                    "function of blocks; found a block with two "
                    "distinct placements across replayed segments")
            self._carry_b = np.concatenate([new_b, self._carry_b[keep]])
            self._carry_p = np.concatenate([new_p, self._carry_p[keep]])
        else:
            self._carry_b = new_b
            self._carry_p = new_p

        if self._full is not None:
            if count:
                self._replay_full(blocks, placements, start, stop, count)
            else:
                # the fully-associative stack is the MRU-ordered distinct
                # blocks truncated to capacity, which is exactly the
                # carry prefix just rebuilt above
                stack, fcap, _ = self._full
                stack[:] = self._carry_b[:fcap].tolist()
        # One registry bump per bulk replay (never per reference).
        telemetry.inc("sweep.refs_replayed", stop - start,
                      engine="numpy")

    def _count_levels(self, seg, P):
        m = seg.m
        n = P + m
        U = len(seg.uniq_vals)
        if P:
            rev_b = self._carry_b[::-1]
            rev_p = self._carry_p[::-1]
            loc = np.searchsorted(seg.uniq_vals, rev_b)
            loc_c = np.minimum(loc, U - 1)
            in_seg = seg.uniq_vals[loc_c] == rev_b
            bid_pfx = np.where(in_seg, loc_c, 0).astype(np.int32)
            n_extra = int(np.count_nonzero(~in_seg))
            bid_pfx[~in_seg] = U + np.arange(n_extra, dtype=np.int32)
            pvals = np.concatenate([seg.uniq_pvals, rev_p[~in_seg]])
            bid = np.empty(n, np.int32)
            bid[:P] = bid_pfx
            bid[P:] = seg.bid
            prev = np.empty(n, np.int32)
            prev[:P] = -1
            np.add(seg.prev, np.int32(P), out=prev[P:])
            prev[P:][seg.prev < 0] = -1
            cmap = np.full(U + n_extra, -1, np.int32)
            cmap[bid_pfx] = np.arange(P, dtype=np.int32)
            prev[seg.first_pos + P] = cmap[seg.first_bid]
        else:
            bid = seg.bid
            prev = seg.prev
            pvals = seg.uniq_pvals

        idx_bits = max(1, int(n - 1).bit_length()) if n > 1 else 1
        kmax = int(self.levels[-1][0]).bit_length() if self.levels else 0
        use64 = kmax + idx_bits > 32
        s = _Scratch(n, use64)
        dt = np.uint64 if use64 else np.uint32
        low = dt((1 << idx_bits) - 1)
        i32 = s.i32
        comp_c_all = None

        for li, (mask, cap) in enumerate(self.levels):
            table = ((pvals & np.uint64(mask))
                     << np.uint64(idx_bits)).astype(dt)
            np.take(table, bid, out=s.key)
            s.key |= s.ar
            s.key.sort()
            first = s.first
            first[0] = True
            if n > 1:
                # set id changed <=> sorted keys jump by >= 2**idx_bits
                np.subtract(s.key[1:], s.key[:-1], out=s.kd[1:])
                np.greater_equal(s.kd[1:], dt(1 << idx_bits),
                                 out=first[1:])
            np.bitwise_and(s.key, low, out=s.key)
            if use64:
                idx = s.key.astype(np.int32)
            else:
                idx = s.key.view(np.int32)
            np.take(prev, idx, out=s.t32)
            # prev[idx] < 0 <=> compulsory; the previous occurrence sits
            # at level position i-1 <=> prev[idx[i]] == idx[i-1] (the
            # level order is a permutation, so the test is exact).
            # Carry-prefix entries are first occurrences of distinct
            # blocks (prev == -1), so every prefix position is
            # compulsory, none is an act query, and the only prefix
            # correction the histograms need is subtracting P from the
            # compulsory count.
            comp = np.less(s.t32, 0, out=s.b1)
            nontop = s.b2
            nontop[0] = True
            if n > 1:
                np.not_equal(s.t32[1:], idx[:-1], out=nontop[1:])
            if comp_c_all is None:
                # which accesses are compulsory does not depend on the
                # level's set mask, so count them once
                comp_c_all = int(np.count_nonzero(comp)) - P
            comp_c = comp_c_all
            d0_c = n - int(np.count_nonzero(nontop))
            actm = np.logical_xor(nontop, comp, out=s.b3)
            d1p_c = int(np.count_nonzero(actm))
            counts = [d1p_c]
            if cap >= 2 and d1p_c:
                newrun = np.logical_or(first, nontop, out=s.b1)
                cstart = np.nonzero(newrun)[0].astype(np.int32)
                R = len(cstart)
                # crankmap[j]: 1-based run rank of stream index j's
                # level position, filled only at run-end positions --
                # every lookup below is a previous occurrence, which
                # always closes its run.  crankmap[n] = -9 catches
                # prev == -1 (which wraps to index n).
                cend = np.empty(R, np.int32)
                cend[:-1] = cstart[1:]
                cend[:-1] -= np.int32(1)
                cend[-1] = n - 1
                crankmap = s.posmap
                crankmap[idx[cend]] = i32[1:R + 1]
                crankmap[n] = np.int32(-9)
                # everything below runs in run space: every act query
                # (depth >= 1) starts its own run, so per-query state is
                # per-run state and no per-query gathers are needed.
                # cprun[w] is the 1-based rank of the run holding run w's
                # previous occurrence; run w is an act query iff
                # cprun[w] > 0 (its start is non-compulsory).
                cprun = crankmap[s.t32[cstart]]
                c32 = i32[:R]
                # an act query's previous occurrence always closes its
                # run, so "candidate run r is more recent than the
                # previous occurrence" reduces to the rank test
                # r >= cprun[w] for the query starting run w (candidates
                # from previous sets are auto-rejected by the same
                # test).  The depth >= 2 candidate is run w - 2.
                hit2 = (c32 - 2) >= cprun
                np.bitwise_and(hit2, cprun > 0, out=hit2)
                cnt2 = int(np.count_nonzero(hit2))
                counts.append(cnt2)
                if cap >= 3 and cnt2:
                    # run w is a 2-block alternation continuation iff the
                    # previous occurrence of its block lies in run w-2
                    # (1-based rank w-1)
                    LF = np.where(cprun != (c32 - 1), c32, np.int32(0))
                    np.maximum.accumulate(LF, out=LF)
                    # depth >= 3 candidate: leap below the alternation
                    # ending at run w-1, i.e. LF[w-1] - 2
                    j3 = np.empty(R, np.int32)
                    j3[1:] = LF[:-1]
                    j3[0] = 0
                    j3 -= np.int32(2)
                    hit3 = hit2
                    np.bitwise_and(hit3, j3 >= cprun, out=hit3)
                    cnt3 = int(np.count_nonzero(hit3))
                    counts.append(cnt3)
                    if cap >= 4 and cnt3:
                        nxr, nxr2 = _alive_tables(cprun, c32)
                        if cap == 4 and cnt3 * 4 > R:
                            # dense fast path: one run-array round over
                            # the pair (j3-1, j3-2), then chain-walk only
                            # the dead-pair remainder
                            v0 = j3
                            v0 -= np.int32(1)
                            pa = np.take(nxr2, v0, mode="clip") >= c32
                            # an alive pair member is >= v0-1, so the
                            # final rank filter passes outright when
                            # v0-1 >= cprun; only v0 == cprun needs to
                            # know which member was alive
                            ok4 = (v0 > cprun) & pa
                            edge = (v0 == cprun) & pa
                            if edge.any():
                                esel = np.nonzero(edge)[0]
                                ok4[esel] = (nxr[v0[esel]]
                                             >= c32[esel])
                            unres = hit3 & ~pa & (v0 > 0)
                            if unres.any():
                                usel = np.nonzero(unres)[0]
                                vinit = LF[v0[usel]]
                                vinit -= np.int32(2)
                                rj_u = _chain_resolve(
                                    vinit, c32[usel], nxr, nxr2, LF)
                                ok4[usel] = rj_u >= cprun[usel]
                            hit4 = hit3
                            np.bitwise_and(hit4, ok4, out=hit4)
                            counts.append(
                                int(np.count_nonzero(hit4)))
                        else:
                            sel_idx = np.nonzero(hit3)[0].astype(
                                np.int32)
                            _depth4_chain(sel_idx, j3[sel_idx],
                                          cprun[sel_idx], LF, nxr,
                                          nxr2, counts, cap)
            hist = self._hists[li]
            while len(counts) < cap:
                counts.append(0)
            hist[0] += d0_c
            for c in range(1, cap):
                hist[c] += counts[c - 1] - counts[c]
            hist[cap] += comp_c + counts[cap - 1]

    def _replay_full(self, blocks, placements, start, stop, count):
        # The single-set level is depth-unbounded in practice (its cap
        # is the largest swept capacity), so the fixed-depth vector
        # formulation does not apply; the sequential update is kept.
        stack, fcap, fhist = self._full
        for index in range(start, stop):
            block = blocks[index]
            try:
                depth = stack.index(block)
            except ValueError:
                depth = fcap
                stack.insert(0, block)
                if len(stack) > fcap:
                    del stack[fcap]
            else:
                if depth:
                    del stack[depth]
                    stack.insert(0, block)
            if count:
                fhist[depth] += 1

    def reset_counts(self) -> None:
        """Zero every histogram and the access counter; keep stacks."""
        for h in self._hists:
            h[:] = 0
        if self._full is not None:
            self._full_hist[:] = [0] * len(self._full_hist)
        self.total = 0
        self._cum_by_k = None
        self._full_cum = None

    # -- results ----------------------------------------------------------

    def hits(self, k: int, assoc: int) -> int:
        """Measured hits of the (2^k sets, assoc ways) configuration."""
        cum = self._cum_by_k
        if cum is None:
            cum = self._cum_by_k = {
                key: [0] + np.cumsum(hist).tolist()
                for key, hist in zip(self.ks, self._hists)}
        prefix = cum[k]
        return prefix[min(assoc, len(prefix) - 1)]

    def full_hits(self, entries: int) -> int:
        """Measured hits of a one-set LRU cache with that many entries."""
        if self._full is None:
            raise ValueError("single-set level was not enabled")
        cum = self._full_cum
        if cum is None:
            cum = self._full_cum = list(
                accumulate(self._full_hist, initial=0))
        return cum[min(entries, len(cum) - 1)]

    # -- introspection (tests, benchmarks) --------------------------------

    def histograms(self) -> Dict[int, List[int]]:
        """Per-level depth histograms, ``log2(num_sets) -> counts``."""
        return {k: hist.tolist()
                for k, hist in zip(self.ks, self._hists)}

    def stack_state(self):
        """Current per-set recency stacks, reconstructed from the carry.

        Same shape as ``MultiConfigLRU.stack_state()``: per level, a
        mapping of set index to the MRU-first block list; plus the
        single-set stack when enabled.  The carry is the global
        MRU-ordered distinct-block list, so each set's stack is its
        per-set filtration truncated at the level's depth cap.
        """
        carry_b = self._carry_b.tolist()
        carry_p = self._carry_p.tolist()
        levels = {}
        for k, (mask, cap) in zip(self.ks, self.levels):
            sets: Dict[int, List] = {}
            for block, placement in zip(carry_b, carry_p):
                lst = sets.setdefault(placement & mask, [])
                if len(lst) < cap:
                    lst.append(block)
            levels[k] = sets
        state = {"levels": levels, "full": None}
        if self._full is not None:
            state["full"] = list(self._full[0])
        return state


def np_next_use_times(blocks: Sequence) -> List[float]:
    """Vectorized :func:`repro.sweep.engine.next_use_times`.

    Same contract: ``result[i]`` is the index of the next reference to
    ``blocks[i]``, ``inf`` (== ``NEVER``) when there is none.  Computed
    from the block-sorted order instead of a backward python scan.
    """
    require_numpy()
    b = np.asarray(blocks, dtype=np.int64)
    n = len(b)
    result = np.full(n, np.inf)
    if n > 1:
        order = np.argsort(b, kind="stable")
        bs = b[order]
        same = bs[1:] == bs[:-1]
        result[order[:-1][same]] = order[1:][same]
    return result.tolist()
