"""Legacy shim: enables `python setup.py develop` on environments
without the wheel package (configuration lives in pyproject.toml)."""

from setuptools import setup

setup()
