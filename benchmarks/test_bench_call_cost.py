"""TAB-CALL bench: the call/return cycle-cost table (section 3.6)."""

from repro.experiments import call_cost


def test_call_cost_table(benchmark):
    result = benchmark.pedantic(lambda: call_cost.run(calls=100),
                                rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
