"""Simulator throughput benchmarks (not paper claims; engineering data).

The calibration note for this reproduction flags "easy functional
simulator, but slow for benchmarks" -- these benches quantify the
simulator's speed so users can size their workloads.
"""

from repro.config import make_com, make_fith
from repro.fith.programs import fib as fith_fib
from repro.smalltalk import compile_program

_FIB = """
SmallInteger >> fib
    self < 2 ifTrue: [^self].
    ^(self - 1) fib + (self - 2) fib
main
    ^15 fib
"""


def test_com_instructions_per_second(benchmark):
    machine = make_com()
    main = compile_program(machine, _FIB)

    def run():
        machine.run_program(main, max_instructions=5_000_000)
        return machine.cycles.instructions

    executed = benchmark(run)
    assert executed > 10_000


def test_fith_steps_per_second(benchmark):
    source = fith_fib(scale=4)

    def run():
        machine = make_fith()
        machine.run_source(source, max_steps=20_000_000)
        return machine.steps

    steps = benchmark(run)
    assert steps > 10_000


def test_smalltalk_compile_speed(benchmark):
    def compile_once():
        machine = make_com()
        return compile_program(machine, _FIB)

    main = benchmark(compile_once)
    assert main.instruction_count > 0
