"""TAB-3ADDR bench: stack vs three-address instruction counts (section 5)."""

from repro.experiments import stack_vs_3addr


def test_stack_vs_3addr_table(benchmark):
    result = benchmark.pedantic(stack_vs_3addr.run, rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
