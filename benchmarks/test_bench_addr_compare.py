"""TAB-ADDR bench: floating vs fixed-field addressing (section 2.2)."""

from repro.experiments import addr_compare


def test_addr_compare_table(benchmark):
    result = benchmark(addr_compare.run)
    print()
    print(result.report())
    assert result.all_hold, result.report()
