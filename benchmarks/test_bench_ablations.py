"""Ablation benches for the design choices DESIGN.md calls out.

* replacement policy (the paper does not state one; we default to LRU);
* icache line size (the paper's figure uses one-instruction entries);
* warm-up methodology (fractional single-pass vs the paper's full
  double-pass).
"""

from repro.trace.cachesim import simulate_icache, simulate_itlb


def test_ablation_replacement_policy(benchmark, events):
    def sweep_policies():
        return {
            policy: simulate_itlb(events, 256, 2, policy=policy,
                                  double_pass=True).hit_ratio
            for policy in ("lru", "fifo", "random")
        }

    ratios = benchmark.pedantic(sweep_policies, rounds=1, iterations=1)
    print()
    for policy, ratio in ratios.items():
        print(f"  ITLB 256/2-way {policy:>6}: {ratio:.4f}")
    # LRU should not lose to FIFO on a locality-heavy trace.
    assert ratios["lru"] >= ratios["fifo"] - 0.01


def test_ablation_icache_line_size(benchmark, events):
    def sweep_lines():
        return {
            line: simulate_icache(events, 4096, 2, line_words=line,
                                  double_pass=True).hit_ratio
            for line in (1, 4, 16)
        }

    ratios = benchmark.pedantic(sweep_lines, rounds=1, iterations=1)
    print()
    for line, ratio in ratios.items():
        print(f"  icache 4096/2-way line={line:>2}: {ratio:.4f}")
    # Spatial locality: longer lines help sequential instruction fetch.
    assert ratios[4] >= ratios[1] - 0.005


def test_ablation_warmup_methodology(benchmark, events):
    def both():
        single = simulate_itlb(events, 512, 2, warmup_fraction=0.25)
        double = simulate_itlb(events, 512, 2, double_pass=True)
        return single.hit_ratio, double.hit_ratio

    single, double = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\n  single-pass 25% warmup: {single:.4f}; "
          f"double-pass: {double:.4f}")
    # Removing compulsory misses can only help.
    assert double >= single - 0.001
