"""Harness wall-clock: registry engine, serial vs parallel.

Runs the full quick suite twice -- ``--jobs 1`` (in-process) and
``--jobs 2`` (ProcessPoolExecutor with sweep shards) -- against a
warm trace store, and records both wall-clocks in
``BENCH_throughput.json`` so the parallel engine's behaviour is
tracked across PRs alongside ops/sec.

The speedup assertion is deliberately one-sided: on a single-core
runner process parallelism cannot win (the expected ratio is ~1.0
minus pool overhead), so we only require that parallel execution
produces the identical claim verdicts and stays within 2x of serial.
Multi-core hosts should see jobs=2 land well under serial (FIG-10/11
split into one task per associativity).
"""

import io
import os
import time

import pytest

from repro.experiments.harness import run_all
from repro.workloads.store import TraceStore


def _claims(results):
    return [(r.experiment, c.claim, c.holds)
            for r in results for c in r.claims]


@pytest.mark.slow
def test_harness_serial_vs_parallel(wallclock_records, tmp_path):
    trace_dir = str(tmp_path / "traces")
    # Warm the store so both measurements exclude trace generation.
    TraceStore(trace_dir).ensure("paper", quick=True)

    start = time.time()
    serial = run_all(quick=True, stream=io.StringIO(),
                     trace_dir=trace_dir, jobs=1)
    serial_seconds = time.time() - start

    jobs = min(4, max(2, os.cpu_count() or 2))
    start = time.time()
    parallel = run_all(quick=True, stream=io.StringIO(),
                       trace_dir=trace_dir, jobs=jobs)
    parallel_seconds = time.time() - start

    assert _claims(serial) == _claims(parallel)
    assert all(r.all_hold for r in serial)

    wallclock_records["harness::quick_jobs1"] = {
        "wall_seconds": round(serial_seconds, 3)}
    wallclock_records[f"harness::quick_jobs{jobs}"] = {
        "wall_seconds": round(parallel_seconds, 3),
        "speedup_vs_jobs1": round(serial_seconds / parallel_seconds, 3),
        "cpus": os.cpu_count(),
    }
    # One-sided sanity bound; the real speedup needs real cores.
    assert parallel_seconds < serial_seconds * 2.0
