"""Sweep engine bench: single-pass vs per-configuration grid, and
pure-python vs vectorized numpy replay.

Runs the two paper figure sweeps (the full size x associativity grid
over the measurement trace, double warm-up methodology) through both
execution engines and records, per figure: wall-clock, the number of
simulation passes over the trace, and the speedup.  The single-pass
stack-distance engine replays the trace twice per figure (warm +
measured) where the grid replays it twice per configuration -- 60
passes for the 30-point grid -- so the advantage is structural
(core-count independent), not parallelism.

The replay bench then times the bare stack-distance replay exactly as
the figures run it (columns prepared outside the timed region, paper
geometry, double warm-up methodology: one count=False warm pass plus
one counted measured pass) on the pure-python engine against the
numpy backend and records events/sec for each plus the speedup -- the
PR-7 target is >= 10x on this payload->surface path.

The engines' outputs are asserted bitwise-identical while we are
here, on the full-scale trace the figures actually use.
"""

import time

import pytest

from repro.sweep import SweepSpec, run_sweep
from repro.sweep import np_engine
from repro.sweep.engine import MultiConfigLRU
from repro.sweep.runner import _geometry, _icache_ref_columns, \
    _itlb_ref_columns


def _timed(spec, events):
    start = time.time()
    surface = run_sweep(spec, events)
    return surface, time.time() - start


@pytest.mark.slow
@pytest.mark.parametrize("cache", ["itlb", "icache"])
def test_sweep_single_pass_vs_grid(cache, events, wallclock_records):
    single, single_seconds = _timed(
        SweepSpec(cache=cache, double_pass=True, engine="single-pass"),
        events)
    grid, grid_seconds = _timed(
        SweepSpec(cache=cache, double_pass=True, engine="grid"),
        events)

    assert single.counts == grid.counts  # bitwise, full paper grid
    assert single.meta["trace_passes"] == 2
    assert grid.meta["trace_passes"] == 60

    wallclock_records[f"sweep::{cache}_single_pass"] = {
        "wall_seconds": round(single_seconds, 3),
        "trace_passes": single.meta["trace_passes"],
    }
    wallclock_records[f"sweep::{cache}_grid"] = {
        "wall_seconds": round(grid_seconds, 3),
        "trace_passes": grid.meta["trace_passes"],
        "speedup_single_pass": round(grid_seconds / single_seconds, 3),
    }


def _best_replay_seconds(make_engine, blocks, placements, repeats):
    """Best-of-N double-pass replay (warm + measured) on a fresh
    engine each round -- the figures' methodology, bare."""
    best = float("inf")
    hists = None
    for _ in range(repeats):
        engine = make_engine()
        start = time.perf_counter()
        engine.replay_columns(blocks, placements, count=False)
        engine.replay_columns(blocks, placements, count=True)
        best = min(best, time.perf_counter() - start)
        hists = engine.histograms()
    return best, hists


@pytest.mark.slow
@pytest.mark.skipif(not np_engine.numpy_available(),
                    reason="numpy is not installed")
@pytest.mark.parametrize("cache", ["itlb", "icache"])
def test_sweep_replay_python_vs_numpy(cache, events, wallclock_records):
    spec = SweepSpec(cache=cache, double_pass=True)
    if cache == "itlb":
        blocks, placements = _itlb_ref_columns(
            events, spec.dispatched_only)
    else:
        blocks, placements = _icache_ref_columns(events, spec.line_words)
    level_caps, full_cap = _geometry(spec)

    py_seconds, py_hists = _best_replay_seconds(
        lambda: MultiConfigLRU(dict(level_caps), full_cap),
        blocks, placements, repeats=2)
    np_seconds, np_hists = _best_replay_seconds(
        lambda: np_engine.NumpyMultiConfigLRU(dict(level_caps), full_cap),
        blocks, placements, repeats=3)

    assert np_hists == py_hists  # bitwise, full paper geometry
    n = 2 * len(blocks)  # warm pass + measured pass
    speedup = py_seconds / np_seconds

    wallclock_records[f"sweep::{cache}_replay_python"] = {
        "wall_seconds": round(py_seconds, 4),
        "events": n,
        "events_per_second": round(n / py_seconds),
    }
    wallclock_records[f"sweep::{cache}_replay_numpy"] = {
        "wall_seconds": round(np_seconds, 4),
        "events": n,
        "events_per_second": round(n / np_seconds),
        "speedup_vs_python": round(speedup, 2),
    }
