"""Sweep engine bench: single-pass vs per-configuration grid.

Runs the two paper figure sweeps (the full size x associativity grid
over the measurement trace, double warm-up methodology) through both
execution engines and records, per figure: wall-clock, the number of
simulation passes over the trace, and the speedup.  The single-pass
stack-distance engine replays the trace twice per figure (warm +
measured) where the grid replays it twice per configuration -- 60
passes for the 30-point grid -- so the advantage is structural
(core-count independent), not parallelism.

The two engines' surfaces are asserted bitwise-identical while we are
here, on the full-scale trace the figures actually use.
"""

import time

import pytest

from repro.sweep import SweepSpec, run_sweep


def _timed(spec, events):
    start = time.time()
    surface = run_sweep(spec, events)
    return surface, time.time() - start


@pytest.mark.slow
@pytest.mark.parametrize("cache", ["itlb", "icache"])
def test_sweep_single_pass_vs_grid(cache, events, wallclock_records):
    single, single_seconds = _timed(
        SweepSpec(cache=cache, double_pass=True, engine="single-pass"),
        events)
    grid, grid_seconds = _timed(
        SweepSpec(cache=cache, double_pass=True, engine="grid"),
        events)

    assert single.counts == grid.counts  # bitwise, full paper grid
    assert single.meta["trace_passes"] == 2
    assert grid.meta["trace_passes"] == 60

    wallclock_records[f"sweep::{cache}_single_pass"] = {
        "wall_seconds": round(single_seconds, 3),
        "trace_passes": single.meta["trace_passes"],
    }
    wallclock_records[f"sweep::{cache}_grid"] = {
        "wall_seconds": round(grid_seconds, 3),
        "trace_passes": grid.meta["trace_passes"],
        "speedup_single_pass": round(grid_seconds / single_seconds, 3),
    }
