"""Columnar-vs-object trace pipeline throughput (events/sec).

The PR-5 refactor keeps traces as struct-of-arrays columns end to
end; these benches quantify the two wins against the legacy
array-of-structs path and record them in ``BENCH_throughput.json``:

* **load** -- decoding a stored payload into columns (four bulk
  ``frombytes``) vs exploding it into one frozen ``TraceEvent``
  dataclass per event (what ``TraceStore.deserialize`` did before);
* **replay** -- the pipeline unit the suite actually executes: stored
  payload in, cache statistics out.  The object path deserializes to
  event objects and runs the seed ``simulate_icache`` loop (both
  reproduced here verbatim); the columnar path maps the payload onto
  arrays and feeds the model from the packed address column.

Both paths run the identical cache-model work (the stats are asserted
equal); the delta is purely the per-event object traffic the columnar
pipeline eliminated, so columnar must come out ahead even on a noisy
1-core box.  The bare simulation loops -- object attributes vs column
ints, no load -- are recorded too (``hot_loop_*``): they are
dominated by the shared ``reference()`` call and land within noise of
each other, which is exactly the point -- dropping materialization
costs the hot loop nothing.
"""

import time

from repro.caches.icache import InstructionCache
from repro.trace.columnar import Trace
from repro.trace.events import TraceEvent
from repro.workloads.store import TraceStore


def _best_of(callable_, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _object_deserialize(blob):
    """The pre-columnar load path: one TraceEvent per payload record."""
    trace = Trace.from_bytes(blob)
    addresses = trace.addresses()
    opcodes = trace.opcodes()
    classes = trace.receiver_classes()
    flag = trace.dispatched_flag
    return [TraceEvent(addresses[i], opcodes[i], classes[i], flag(i))
            for i in range(len(trace))]


def _object_replay(events, size=1024, associativity=2):
    """The seed simulate_icache loop: iterate event objects."""
    icache = InstructionCache(size, associativity, 1, "lru")
    reference = icache.reference
    for event in events:
        reference(event.address)
    return icache.stats.snapshot()


def _columnar_replay(trace, size=1024, associativity=2):
    """The columnar loop: iterate the packed address column."""
    icache = InstructionCache(size, associativity, 1, "lru")
    reference = icache.reference
    for address in trace.addresses():
        reference(address)
    return icache.stats.snapshot()


def test_columnar_vs_object_load(events, wallclock_records):
    blob = TraceStore.serialize(events)
    n = len(events)
    columnar_s, trace = _best_of(lambda: Trace.from_bytes(blob))
    object_s, objects = _best_of(lambda: _object_deserialize(blob))
    assert trace == events and len(objects) == n
    speedup = object_s / columnar_s
    wallclock_records["trace_load_columnar_vs_object"] = {
        "events": n,
        "columnar_events_per_second": n / columnar_s,
        "object_events_per_second": n / object_s,
        "speedup": speedup,
    }
    # Four bulk frombytes vs n dataclass constructions: the margin is
    # structural, not a timing accident.
    assert speedup > 2.0


def test_columnar_vs_object_replay(events, wallclock_records):
    blob = TraceStore.serialize(events)
    n = len(events)
    # The pipeline unit: payload -> statistics.
    columnar_s, columnar_stats = _best_of(
        lambda: _columnar_replay(Trace.from_bytes(blob)))
    object_s, object_stats = _best_of(
        lambda: _object_replay(_object_deserialize(blob)))
    assert columnar_stats == object_stats   # identical simulation
    # The bare loops, objects and columns pre-built (informational:
    # dominated by the shared reference() call on both sides).
    objects = list(events)
    loop_columnar_s, _ = _best_of(lambda: _columnar_replay(events))
    loop_object_s, _ = _best_of(lambda: _object_replay(objects))
    speedup = object_s / columnar_s
    wallclock_records["trace_replay_columnar_vs_object"] = {
        "events": n,
        "columnar_events_per_second": n / columnar_s,
        "object_events_per_second": n / object_s,
        "speedup": speedup,
        "hot_loop_columnar_events_per_second": n / loop_columnar_s,
        "hot_loop_object_events_per_second": n / loop_object_s,
    }
    # Same cache work on both sides; columnar drops the load-time
    # object explosion, so end-to-end replay must be clearly faster.
    assert speedup > 1.05
