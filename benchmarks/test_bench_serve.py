"""Batched query planner bench: N paper-grid queries, 2 trace passes.

Drives the planner exactly the way ``repro serve`` does: a 60-query
batch covering both cache kinds -- the full-grid sweep, hit-ratio
curves, iso-ratio thresholds and per-cell stats -- planned down to
one superset replay per cache kind.  The claim is structural, not a
core count: 60 individually-run queries would cost 60 replays of the
measurement trace where the planned batch costs 2 (asserted on the
replay meta, so a planner regression fails the bench rather than
quietly inflating the numbers).

Recorded per run: replays and trace passes for the batch,
replays-per-query, and the throughput split the serving story rests
on -- cold (replaying) queries/sec vs warm (cache-served) queries/sec
from the in-memory surface cache.  The disk result cache stays
disabled (benchmark-suite default), so the warm half times the
``SurfaceCache`` tier alone.
"""

import time

from repro.sweep import PAPER_SIZES, Query, SurfaceCache, SweepSpec, \
    run_batch

#: The serving grid: section-5 warm-up-fraction methodology, one
#: simulation pass per replay.
_WINDOW = dict(warmup_fraction=0.25, double_pass=False)

_STATS_CELLS = [(assoc, size)
                for assoc in (1, 2, 4)
                for size in PAPER_SIZES][:23]


def _paper_grid_queries(cache):
    """30 mixed queries over one cache kind, all one planner group."""
    full = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                     associativities=(1, 2, 4, "full"), **_WINDOW)
    queries = [Query(spec=full)]
    for assoc in (1, 2, "full"):
        spec = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                         associativities=(assoc,), **_WINDOW)
        queries.append(Query(spec=spec, kind="curve",
                             associativity=assoc))
    iso = SweepSpec(cache=cache, sizes=PAPER_SIZES,
                    associativities=(1, 2, 4), **_WINDOW)
    for target in (0.90, 0.95, 0.99):
        queries.append(Query(spec=iso, kind="isoratio", target=target))
    for assoc, size in _STATS_CELLS:
        spec = SweepSpec(cache=cache, sizes=(size,),
                         associativities=(assoc,), **_WINDOW)
        queries.append(Query(spec=spec, kind="stats",
                             associativity=assoc, size=size))
    return queries


def test_batched_paper_grid_two_trace_passes(events, wallclock_records):
    queries = _paper_grid_queries("itlb") + _paper_grid_queries("icache")
    assert len(queries) == 60
    memory = SurfaceCache()

    start = time.perf_counter()
    cold = run_batch(queries, events, surface_cache=memory)
    cold_seconds = time.perf_counter() - start

    # The acceptance pin: the whole batch from one replay per cache
    # kind, never one per query.
    assert cold.report.replays == 2
    assert cold.report.trace_passes <= 2
    assert cold.report.fallbacks == 0
    assert all(surface is not None for surface in cold.surfaces)

    start = time.perf_counter()
    warm = run_batch(queries, events, surface_cache=memory)
    warm_seconds = time.perf_counter() - start

    assert warm.report.replays == 0
    assert warm.report.memory_hits == 60

    wallclock_records["serve::batched_paper_grid"] = {
        "queries": cold.report.queries,
        "replays": cold.report.replays,
        "trace_passes": cold.report.trace_passes,
        "replays_per_query": round(
            cold.report.replays / cold.report.queries, 4),
        "wall_seconds": round(cold_seconds, 3),
        "replay_queries_per_second": round(
            cold.report.queries / cold_seconds, 3),
        "cached_queries_per_second": round(
            warm.report.queries / warm_seconds, 3),
    }
