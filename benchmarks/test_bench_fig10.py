"""FIG-10 bench: regenerate the ITLB hit-ratio curve (paper figure 10).

The benchmark times one replay of the measurement trace against the
paper's headline configuration (512-entry, 2-way); the full sweep is
regenerated once and its claims asserted, and the series is printed so
the bench output contains the figure's data.
"""

from repro.experiments import fig10
from repro.trace.cachesim import simulate_itlb


def test_fig10_itlb_replay(benchmark, events):
    stats = benchmark(simulate_itlb, events, 512, 2, double_pass=True)
    assert stats.hit_ratio >= 0.99


def test_fig10_full_sweep(benchmark, events):
    result = benchmark.pedantic(
        lambda: fig10.run(events=events, plot=False), rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
