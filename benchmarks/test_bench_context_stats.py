"""TAB-CTX bench: context allocation/reference statistics (section 2.3)."""

from repro.experiments import context_stats


def test_context_stats_table(benchmark):
    result = benchmark.pedantic(context_stats.run, rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
