"""Trace-store bench: mmap zero-copy loading and the sweep-result cache.

Two measurements, both recorded into ``BENCH_throughput.json``:

* ``store::load_{read,mmap}`` -- full load of the measurement trace's
  payload with every column touched (so both paths pay the CRC walk),
  via the copying ``from_bytes`` path against the zero-copy
  ``from_buffer`` mmap path, in events/sec.  ``store::mmap_open``
  additionally times the bare open (structure check only, CRC
  deferred), which is the latency the store actually adds to a warm
  harness start.  The acceptance bar is deliberately loose -- mmap
  within 10x of read -- because the win is the deferred work, not the
  open itself.

* ``store::result_cache`` -- one engine replay of the paper ITLB sweep
  against a cached-query hit on the same spec/trace key, asserting the
  >=100x speedup the PR claims.  The surfaces are compared bitwise
  while we are here.

The session-wide result-cache kill switch from conftest is re-enabled
locally for the cache bench only.
"""

import mmap
import time

from repro.sweep import SweepSpec, run_sweep
from repro.trace.columnar import MappedTrace, Trace

ROUNDS = 5


def _touch(trace):
    """Force every column (and its CRC, when deferred) to be read."""
    return (trace.addresses()[-1], trace.opcodes()[0],
            trace.receiver_classes()[0], trace.dispatched_count())


def test_store_load_mmap_vs_read(events, wallclock_records, tmp_path):
    payload = tmp_path / "bench.trace"
    payload.write_bytes(events.to_bytes())
    n = len(events)

    start = time.perf_counter()
    for _ in range(ROUNDS):
        trace = Trace.from_bytes(payload.read_bytes())
        _touch(trace)
    read_seconds = (time.perf_counter() - start) / ROUNDS

    mapped = True
    start = time.perf_counter()
    for _ in range(ROUNDS):
        with open(payload, "rb") as handle:
            buffer = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        trace = Trace.from_buffer(memoryview(buffer))
        _touch(trace)
        if isinstance(trace, MappedTrace):
            trace.close()
        else:  # big-endian host: from_buffer copied
            mapped = False
        buffer.close()
    mmap_seconds = (time.perf_counter() - start) / ROUNDS

    opens = 0
    start = time.perf_counter()
    deadline = start + 0.2
    while time.perf_counter() < deadline:
        with open(payload, "rb") as handle:
            buffer = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        trace = Trace.from_buffer(memoryview(buffer))
        assert len(trace) == n  # structure only; no column CRC paid
        if isinstance(trace, MappedTrace):
            trace.close()
        buffer.close()
        opens += 1
    open_seconds = (time.perf_counter() - start) / opens

    wallclock_records["store::load_read"] = {
        "events_per_second": round(n / read_seconds),
        "wall_seconds": round(read_seconds, 5),
    }
    wallclock_records["store::load_mmap"] = {
        "events_per_second": round(n / mmap_seconds),
        "wall_seconds": round(mmap_seconds, 5),
        "zero_copy": mapped,
    }
    wallclock_records["store::mmap_open"] = {
        "opens_per_second": round(1.0 / open_seconds),
        "wall_seconds": round(open_seconds, 6),
    }
    # The acceptance bar: mmap loads within 10x of the read path even
    # when forced to pay the full CRC walk (it normally defers it).
    assert n / mmap_seconds >= 0.1 * (n / read_seconds)


def test_result_cache_hit_vs_replay(events, wallclock_records,
                                    monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "1")  # conftest kills it
    spec = SweepSpec(cache="itlb", double_pass=True,
                     label="bench-result-cache")
    assert events.store_key, "bench trace must come from the store"
    store_root = events.store_root
    from repro.workloads.library import ResultCache
    ResultCache(store_root).clear()  # the cold timing must replay

    start = time.perf_counter()
    replayed = run_sweep(spec, events)  # computes and caches
    replay_seconds = time.perf_counter() - start

    hit_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        cached = run_sweep(spec, events)
        hit_seconds = min(hit_seconds, time.perf_counter() - start)
        assert cached.counts == replayed.counts  # bitwise
        assert cached.table() == replayed.table()

    speedup = replay_seconds / hit_seconds
    wallclock_records["store::result_cache"] = {
        "replay_wall_seconds": round(replay_seconds, 4),
        "hit_wall_seconds": round(hit_seconds, 6),
        "queries_per_second": round(1.0 / hit_seconds),
        "speedup": round(speedup, 1),
        "engine": replayed.meta["engine"],
    }
    # Keep the on-disk cache out of the other replay benches' way.
    ResultCache(store_root).clear()
    assert speedup >= 100, (
        f"cached query only {speedup:.0f}x over replay")
