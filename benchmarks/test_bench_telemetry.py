"""Telemetry overhead: the disabled fast path and the armed run.

Two measurements land in ``BENCH_throughput.json``:

* ``telemetry::disabled_span`` -- calls/sec through a disabled
  ``telemetry.span(...)`` + ``telemetry.inc(...)`` pair, i.e. the
  cost every instrumented seam pays when telemetry is off (one env
  lookup and a shared no-op singleton; this is what keeps the
  "<2% overhead when disabled" acceptance bound honest);
* ``telemetry::quick_suite_on/off`` -- the quick harness suite (the
  light, trace-free experiments) with and without ``--telemetry``,
  plus their ratio, so the armed cost is tracked across PRs.

The overhead assertions are deliberately loose (a 1-CPU CI runner is
noisy); the committed numbers are the real trend line.
"""

import io
import time

import pytest

from repro import telemetry
from repro.experiments.harness import run_all

#: Cheap, trace-free experiments: overhead dominates, work does not.
LIGHT = ["TAB-CCACHE", "TAB-ADDR"]


def _claims(results):
    return [(r.experiment, c.claim, c.holds)
            for r in results for c in r.claims]


def test_disabled_span_fast_path(wallclock_records, monkeypatch):
    monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
    assert not telemetry.enabled()

    def seam():
        with telemetry.span("bench.noop", task="x"):
            telemetry.inc("bench.counter")

    # Warm up, then measure calls/sec through the no-op pair.
    for _ in range(1000):
        seam()
    rounds = 200_000
    start = time.perf_counter()
    for _ in range(rounds):
        seam()
    elapsed = time.perf_counter() - start
    per_call = elapsed / rounds
    wallclock_records["telemetry::disabled_span"] = {
        "calls_per_second": round(rounds / elapsed),
        "ns_per_call": round(per_call * 1e9, 1),
    }
    # A disabled seam must stay far below a microsecond-scale cost;
    # 20us/call would mean the fast path grew a file or lock touch.
    assert per_call < 20e-6


def test_regression_guard_flags_only_real_drops():
    from conftest import REGRESSION_FRACTION, find_regressions

    committed = {
        "sweep": {"events_per_second": 1000.0, "rounds": 3},
        "trace": {"columnar_events_per_second": 500.0},
        "_environment": {"cpus": 1},
    }
    fresh = {
        "sweep": {"events_per_second": 950.0, "rounds": 3},
        "trace": {"columnar_events_per_second": 100.0},
        "new_bench": {"ops_per_second": 5.0},
        "_environment": {"cpus": 1},
    }
    flagged = find_regressions(committed, fresh)
    # Only the >30% drop is flagged; small noise, brand-new
    # benchmarks and the metadata block are not.
    assert flagged == [("trace", "columnar_events_per_second",
                        500.0, 100.0)]
    assert REGRESSION_FRACTION == 0.7


@pytest.mark.slow
def test_quick_suite_overhead(wallclock_records, tmp_path):
    run_dir = str(tmp_path / "runs")

    start = time.time()
    plain = run_all(quick=True, stream=io.StringIO(), only=LIGHT,
                    run_dir=run_dir)
    off_seconds = time.time() - start

    start = time.time()
    traced = run_all(quick=True, stream=io.StringIO(), only=LIGHT,
                     run_dir=run_dir, with_telemetry=True)
    on_seconds = time.time() - start

    # Telemetry must never change a result.
    assert _claims(plain) == _claims(traced)

    wallclock_records["telemetry::quick_suite_off"] = {
        "wall_seconds": round(off_seconds, 3)}
    wallclock_records["telemetry::quick_suite_on"] = {
        "wall_seconds": round(on_seconds, 3),
        "overhead_vs_off": round(on_seconds / off_seconds, 3)
        if off_seconds else None,
    }
    # Loose sanity bound only: sub-second suites on a busy 1-CPU
    # runner swing too much for a tight ratio assertion.
    assert on_seconds < off_seconds * 5 + 2.0
