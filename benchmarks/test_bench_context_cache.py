"""TAB-CCACHE bench: context cache vs nesting depth (section 2.3)."""

from repro.experiments import context_cache


def test_context_cache_table(benchmark):
    result = benchmark.pedantic(context_cache.run, rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
