"""Shared fixtures for the benchmark suite.

The measurement trace is generated once per session; each figure bench
replays it against its cache models.  Scale with REPRO_BENCH_SCALE=N.
"""

import os

import pytest

from repro.trace.workloads import paper_trace


@pytest.fixture(scope="session")
def events():
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return paper_trace(scale)
