"""Shared fixtures for the benchmark suite.

The measurement trace comes through the scenario registry's on-disk
trace store, so benchmark runs stop paying Fith re-execution once the
trace exists (the first run of a fresh checkout generates it; every
later run -- and every other consumer, including the harness and the
tests -- loads the same file).  Scale with REPRO_BENCH_SCALE=N; point
the store elsewhere with REPRO_TRACE_DIR.

At session end, every pytest-benchmark result is written to
``BENCH_throughput.json`` at the repository root (ops/sec per
benchmark) so the performance trajectory is tracked across PRs.
Wall-clock measurements recorded via the ``wallclock_records``
fixture (the harness parallelism and sweep benches) land in the same
file.  The file is written deterministically -- keys sorted at every
level, a ``_environment`` stamp identifying the host class the
numbers came from, and no rewrite at all when the merged content is
byte-identical -- so bench-only commits stop churning the whole file.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.workloads import load_events

_WALLCLOCK = {}


@pytest.fixture(scope="session")
def events():
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return load_events("paper", scale=scale)


@pytest.fixture(scope="session")
def wallclock_records():
    """Mutable mapping: name -> {seconds, ...} merged into the JSON."""
    return _WALLCLOCK


def pytest_sessionfinish(session, exitstatus):
    """Record ops/sec for every benchmark that ran this session."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    payload = {}
    for name, record in _WALLCLOCK.items():
        payload[name] = record
    for bench in getattr(bench_session, "benchmarks", []) \
            if bench_session is not None else []:
        stats = getattr(bench, "stats", None)
        # Some pytest-benchmark versions nest Stats inside Metadata.
        stats = getattr(stats, "stats", stats)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        # fullname (module::test) keeps same-named benchmarks in
        # different files from colliding.
        payload[getattr(bench, "fullname", bench.name)] = {
            "ops_per_second": stats.ops,
            "mean_seconds": stats.mean,
            "rounds": stats.rounds,
        }
    if not payload:
        return
    # A host/environment stamp: when committed numbers shift, the
    # stamp says whether the host class shifted with them.  Stable
    # per machine so it does not by itself dirty the file.
    payload["_environment"] = {
        "cpus": os.cpu_count(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "system": platform.system(),
    }
    path = Path(str(session.config.rootpath)) / "BENCH_throughput.json"
    try:
        # Merge over the existing record so a partial run (-k, single
        # file) updates its benchmarks without erasing the others.
        try:
            existing_text = path.read_text()
        except OSError:
            existing_text = ""
        try:
            existing = json.loads(existing_text)
            if isinstance(existing, dict):
                existing.update(payload)
                payload = existing
        except ValueError:
            pass
        # sort_keys at every level + fixed separators make the
        # serialization canonical; identical content is not rewritten.
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if text != existing_text:
            path.write_text(text)
    except OSError:  # never fail the run over bookkeeping
        pass
