"""Shared fixtures for the benchmark suite.

The measurement trace comes through the scenario registry's on-disk
trace store, so benchmark runs stop paying Fith re-execution once the
trace exists (the first run of a fresh checkout generates it; every
later run -- and every other consumer, including the harness and the
tests -- loads the same file).  Scale with REPRO_BENCH_SCALE=N; point
the store elsewhere with REPRO_TRACE_DIR.

At session end, every pytest-benchmark result is written to
``BENCH_throughput.json`` at the repository root (ops/sec per
benchmark) so the performance trajectory is tracked across PRs.
Wall-clock measurements recorded via the ``wallclock_records``
fixture (the harness parallelism and sweep benches) land in the same
file.  The file is written deterministically -- keys sorted at every
level, a ``_environment`` stamp identifying the host class the
numbers came from, and no rewrite at all when the merged content is
byte-identical -- so bench-only commits stop churning the whole file.
"""

import json
import os
from pathlib import Path

import pytest

from repro import telemetry
from repro.workloads import load_events

_WALLCLOCK = {}


@pytest.fixture(autouse=True)
def _no_result_cache(monkeypatch):
    """Benches measure replay, not the sweep-result cache.

    The store-loaded ``events`` trace carries its content key, so with
    the cache live every warm re-run of a figure or harness bench
    would silently time a cache hit instead of the engine.  The cache
    bench in test_bench_store re-enables it locally.
    """
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")

#: A fresh throughput below this fraction of the committed number is
#: flagged as a regression (warning only -- hosts differ; the guard
#: exists to make a 10x cliff visible, not to gate CI on noise).
REGRESSION_FRACTION = 0.7


def find_regressions(existing: dict, payload: dict) -> list:
    """(name, field, committed, fresh) for every >30% throughput drop.

    Compares every ``*per_second`` field of the fresh *payload*
    against the committed record of the same benchmark.
    """
    out = []
    for name, record in payload.items():
        if name.startswith("_") or not isinstance(record, dict):
            continue
        committed = existing.get(name)
        if not isinstance(committed, dict):
            continue
        for field, fresh in record.items():
            if not field.endswith("per_second"):
                continue
            baseline = committed.get(field)
            if not isinstance(baseline, (int, float)) or baseline <= 0:
                continue
            if isinstance(fresh, (int, float)) \
                    and fresh < REGRESSION_FRACTION * baseline:
                out.append((name, field, baseline, fresh))
    return out


@pytest.fixture(scope="session")
def events():
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return load_events("paper", scale=scale)


@pytest.fixture(scope="session")
def wallclock_records():
    """Mutable mapping: name -> {seconds, ...} merged into the JSON."""
    return _WALLCLOCK


def pytest_sessionfinish(session, exitstatus):
    """Record ops/sec for every benchmark that ran this session."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    payload = {}
    for name, record in _WALLCLOCK.items():
        payload[name] = record
    for bench in getattr(bench_session, "benchmarks", []) \
            if bench_session is not None else []:
        stats = getattr(bench, "stats", None)
        # Some pytest-benchmark versions nest Stats inside Metadata.
        stats = getattr(stats, "stats", stats)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        # fullname (module::test) keeps same-named benchmarks in
        # different files from colliding.
        payload[getattr(bench, "fullname", bench.name)] = {
            "ops_per_second": stats.ops,
            "mean_seconds": stats.mean,
            "rounds": stats.rounds,
        }
    if not payload:
        return
    # A host/environment stamp: when committed numbers shift, the
    # stamp says whether the host class shifted with them (the numpy
    # version -- or its absence -- decides which sweep engine the
    # numbers exercised).  Stable per machine so it does not by
    # itself dirty the file.
    payload["_environment"] = telemetry.environment_block()
    path = Path(str(session.config.rootpath)) / "BENCH_throughput.json"
    try:
        # Merge over the existing record so a partial run (-k, single
        # file) updates its benchmarks without erasing the others.
        try:
            existing_text = path.read_text()
        except OSError:
            existing_text = ""
        try:
            existing = json.loads(existing_text)
            if isinstance(existing, dict):
                # Warn (never fail) when a fresh number cratered
                # against the committed baseline.
                for name, field, baseline, fresh \
                        in find_regressions(existing, payload):
                    print(f"\nBENCH REGRESSION: {name} {field} "
                          f"{fresh:,.0f} < {REGRESSION_FRACTION:.0%} "
                          f"of committed {baseline:,.0f}")
                    telemetry.event("bench.regression", benchmark=name,
                                    field=field, committed=baseline,
                                    fresh=fresh)
                existing.update(payload)
                payload = existing
        except ValueError:
            pass
        # sort_keys at every level + fixed separators make the
        # serialization canonical; identical content is not rewritten.
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if text != existing_text:
            path.write_text(text)
    except OSError:  # never fail the run over bookkeeping
        pass
