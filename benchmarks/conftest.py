"""Shared fixtures for the benchmark suite.

The measurement trace is generated once per session; each figure bench
replays it against its cache models.  Scale with REPRO_BENCH_SCALE=N.

At session end, every pytest-benchmark result is written to
``BENCH_throughput.json`` at the repository root (ops/sec per
benchmark) so the performance trajectory is tracked across PRs.
"""

import json
import os
from pathlib import Path

import pytest

from repro.trace.workloads import paper_trace


@pytest.fixture(scope="session")
def events():
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return paper_trace(scale)


def pytest_sessionfinish(session, exitstatus):
    """Record ops/sec for every benchmark that ran this session."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    payload = {}
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        # Some pytest-benchmark versions nest Stats inside Metadata.
        stats = getattr(stats, "stats", stats)
        if stats is None or not getattr(stats, "rounds", 0):
            continue
        # fullname (module::test) keeps same-named benchmarks in
        # different files from colliding.
        payload[getattr(bench, "fullname", bench.name)] = {
            "ops_per_second": stats.ops,
            "mean_seconds": stats.mean,
            "rounds": stats.rounds,
        }
    if not payload:
        return
    path = Path(str(session.config.rootpath)) / "BENCH_throughput.json"
    try:
        # Merge over the existing record so a partial run (-k, single
        # file) updates its benchmarks without erasing the others.
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                existing.update(payload)
                payload = existing
        except (OSError, ValueError):
            pass
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:  # never fail the run over bookkeeping
        pass
