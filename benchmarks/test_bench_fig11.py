"""FIG-11 bench: regenerate the instruction-cache curve (figure 11)."""

from repro.experiments import fig11
from repro.trace.cachesim import simulate_icache


def test_fig11_icache_replay(benchmark, events):
    stats = benchmark(simulate_icache, events, 4096, 2, double_pass=True)
    assert stats.hit_ratio >= 0.99


def test_fig11_full_sweep(benchmark, events):
    result = benchmark.pedantic(
        lambda: fig11.run(events=events, plot=False), rounds=1, iterations=1)
    print()
    print(result.report())
    assert result.all_hold, result.report()
