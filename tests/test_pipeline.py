"""Tests for the pipeline cost model (repro.core.pipeline, figure 6)."""

import pytest

from repro.core.pipeline import (
    CycleAccountant,
    CycleParams,
    STAGES,
    pipeline_diagram,
    pipeline_schedule,
)


class TestCycleParams:
    def test_paper_defaults(self):
        params = CycleParams()
        assert params.issue_cycles == 2
        assert params.branch_penalty == 1
        assert params.return_extra == 0

    def test_call_overhead_formula(self):
        params = CycleParams()
        # flush (1) + sequence (1) = 2 extra; with the 2 issue cycles
        # of the calling instruction that is the paper's 4 total.
        assert params.call_overhead(0) == 2
        assert params.call_overhead(3) == 5


class TestCycleAccountant:
    def test_issue(self):
        accountant = CycleAccountant()
        accountant.issue()
        accountant.issue()
        assert accountant.instructions == 2
        assert accountant.cycles == 4
        assert accountant.cycles_per_instruction == 2.0

    def test_empty_cpi(self):
        assert CycleAccountant().cycles_per_instruction == 0.0

    def test_branch(self):
        accountant = CycleAccountant()
        accountant.issue()
        accountant.taken_branch()
        assert accountant.cycles == 3
        assert accountant.stalls["branch"] == 1

    def test_call_and_return(self):
        accountant = CycleAccountant()
        accountant.issue()
        accountant.method_call(0)
        assert accountant.cycles == 4      # the paper's 4-cycle call
        accountant.issue()
        accountant.method_return()
        assert accountant.cycles == 6      # plus the 2-cycle return
        assert accountant.calls == 1
        assert accountant.returns == 1

    def test_operand_copies(self):
        accountant = CycleAccountant()
        accountant.issue()
        accountant.method_call(3)
        assert accountant.cycles == 2 + 2 + 3
        assert accountant.operands_copied == 3

    def test_itlb_miss_scales_with_probes(self):
        params = CycleParams(itlb_miss_base=6, itlb_miss_per_probe=2)
        accountant = CycleAccountant(params)
        accountant.itlb_miss(3)
        assert accountant.stalls["itlb_miss"] == 12

    def test_memory_instruction(self):
        accountant = CycleAccountant()
        accountant.memory_instruction()
        assert accountant.stalls["at_memory"] == 1

    def test_context_fault(self):
        accountant = CycleAccountant()
        accountant.context_fault()
        assert accountant.stalls["context_fault"] == \
            CycleParams().context_fault

    def test_snapshot_and_reset(self):
        accountant = CycleAccountant()
        accountant.issue()
        accountant.raw_hazard()
        snapshot = accountant.snapshot()
        assert snapshot["instructions"] == 1
        assert snapshot["stalls"]["raw_hazard"] == 1
        accountant.reset()
        assert accountant.cycles == 0
        assert accountant.stalls == {}
        # The snapshot is independent of the reset.
        assert snapshot["cycles"] == 3

    def test_zero_stall_not_recorded(self):
        accountant = CycleAccountant(CycleParams(return_extra=0))
        accountant.method_return()
        assert "return" not in accountant.stalls


class TestPipelineSchedule:
    def test_five_stages(self):
        assert STAGES == ("Fetch", "Read", "ITLB", "Op", "Write")

    def test_two_cycle_issue_overlap(self):
        grid = pipeline_schedule(3)
        # Instruction i starts its Fetch at cycle 2i.
        assert grid[0][0] == "i0"
        assert grid[2][0] == "i1"
        assert grid[4][0] == "i2"
        # While i1 reads operands, i0 is in its ITLB step (figure 6).
        assert grid[3][1] == "i1"
        assert grid[2][2] == "i0"

    def test_total_cycles(self):
        grid = pipeline_schedule(3)
        assert len(grid) == (3 - 1) * 2 + 5

    def test_empty(self):
        assert pipeline_schedule(0) == []

    def test_each_instruction_visits_every_stage_once(self):
        grid = pipeline_schedule(4)
        seen = {}
        for row in grid:
            for stage_index, label in enumerate(row):
                if label:
                    seen.setdefault(label, []).append(stage_index)
        for label, stages in seen.items():
            assert stages == [0, 1, 2, 3, 4]

    def test_diagram_renders(self):
        text = pipeline_diagram(3)
        assert "Fetch" in text and "Write" in text
        assert "i2" in text
