"""Harness fault tolerance: retries, timeouts, crash recovery,
serial degradation, and the crash-safe run journal / --resume."""

import io
import time

import pytest

from repro import faults
from repro.experiments.harness import run_all
from repro.experiments.journal import RunJournal, run_key

#: Cheap experiments (no trace workloads) used for engine-level
#: tests, in registry order (run keys hash the selected suite order).
LIGHT = ["TAB-CCACHE", "TAB-ADDR"]


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    yield
    faults.install(None)


def _claims(results):
    return [(c.claim, c.holds) for r in results for c in r.claims]


class TestChaosEquivalence:
    """The acceptance pin: under a seeded fault plan the suite must
    complete with results byte-identical to the fault-free run, via
    the retry / rebuild / degrade paths."""

    def test_injected_task_errors_retry_to_identical_results(
            self, tmp_path):
        baseline = run_all(stream=io.StringIO(), only=LIGHT,
                           trace_dir=str(tmp_path / "t"),
                           run_dir=str(tmp_path / "r"))
        chaotic = run_all(stream=io.StringIO(), only=LIGHT,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r2"),
                          retries=3, backoff=0.0,
                          fault_plan="worker.task:error:times=1",
                          fault_seed=5)
        assert _claims(chaotic) == _claims(baseline)
        assert all(r.all_hold for r in chaotic)

    def test_worker_crashes_rebuild_then_degrade_to_identical_results(
            self, tmp_path):
        stream = io.StringIO()
        baseline = run_all(stream=io.StringIO(), only=LIGHT,
                           trace_dir=str(tmp_path / "t"),
                           run_dir=str(tmp_path / "r"))
        chaotic = run_all(stream=stream, only=LIGHT, jobs=2,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r2"),
                          retries=3, backoff=0.0,
                          fault_plan="worker.task:crash:times=1",
                          fault_seed=5)
        assert _claims(chaotic) == _claims(baseline)
        output = stream.getvalue()
        assert "pool broke" in output or "degrading to serial" in output

    def test_same_seed_reproduces_the_same_injection_log(
            self, tmp_path):
        def chaos_run(tag):
            stream = io.StringIO()
            run_all(stream=stream, only=LIGHT,
                    trace_dir=str(tmp_path / "t"),
                    run_dir=str(tmp_path / tag),
                    retries=3, backoff=0.0,
                    fault_plan="worker.task:error:p=0.5:times=2",
                    fault_seed=21)
            return [line for line in stream.getvalue().splitlines()
                    if line.startswith("!")]
        first, second = chaos_run("r1"), chaos_run("r2")
        assert first == second
        assert first  # the plan actually fired

    def test_store_corruption_faults_recover_through_quarantine(
            self, tmp_path):
        # FIG-10 is the cheapest spec that actually replays a stored
        # trace, so its --quick run exercises the store.read site.
        baseline = run_all(stream=io.StringIO(), only=["FIG-10"],
                           quick=True, trace_dir=str(tmp_path / "t"),
                           run_dir=str(tmp_path / "r"))
        stream = io.StringIO()
        chaotic = run_all(stream=stream, only=["FIG-10"], quick=True,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r2"),
                          retries=2, backoff=0.0,
                          fault_plan="store.read:corrupt:times=1",
                          fault_seed=5)
        assert _claims(chaotic) == _claims(baseline)
        assert "1 quarantined payloads" in stream.getvalue()


class TestRetryBudget:
    def test_retry_exhausted_fails_one_experiment_not_the_suite(
            self, tmp_path):
        stream = io.StringIO()
        results = run_all(stream=stream, only=LIGHT,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"),
                          retries=1, backoff=0.0,
                          fault_plan="worker.task:error:times=99",
                          fault_seed=5)
        # Both experiments completed as *failure records*; the run
        # itself finished and stayed accountable.
        assert len(results) == 2
        assert all(not r.all_hold for r in results)
        assert all(r.data["failure"]["error"] == "RetryExhausted"
                   for r in results)
        assert "FAILED" in stream.getvalue()

    def test_failed_experiments_are_not_journaled(self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"),
                retries=0, backoff=0.0,
                fault_plan="worker.task:error:times=99")
        key = run_key(scale=1, quick=False, suite=LIGHT,
                      trace_dir=str(tmp_path / "t"))
        journal = RunJournal(key, root=tmp_path / "r")
        assert journal.completed() == {}


class TestTimeout:
    def test_hung_worker_is_bounded_by_task_timeout(self, tmp_path):
        """A 60s-hang fault must not block the run: the pool is torn
        down at --task-timeout and the task charged, so the whole
        suite ends in a few seconds."""
        stream = io.StringIO()
        start = time.time()
        results = run_all(stream=stream, only=["TAB-ADDR"], jobs=2,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"),
                          retries=0, backoff=0.0, task_timeout=1.0,
                          fault_plan="worker.task:slow:delay=60",
                          fault_seed=5)
        elapsed = time.time() - start
        assert elapsed < 30, f"hung worker not bounded ({elapsed:.0f}s)"
        (result,) = results
        assert result.data["failure"]["error"] == "RetryExhausted"
        assert "task-timeout" in stream.getvalue()

    def test_slow_but_under_timeout_succeeds(self, tmp_path):
        results = run_all(stream=io.StringIO(), only=["TAB-ADDR"],
                          jobs=2, trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"),
                          task_timeout=60.0,
                          fault_plan="worker.task:slow:delay=0.1",
                          fault_seed=5)
        assert all(r.all_hold for r in results)


class TestSerialResilience:
    def test_serial_crash_fault_is_retried_without_killing_parent(
            self, tmp_path):
        stream = io.StringIO()
        results = run_all(stream=stream, only=["TAB-ADDR"],
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"),
                          retries=2, backoff=0.0,
                          fault_plan="worker.task:crash:times=1")
        assert all(r.all_hold for r in results)
        assert "WorkerCrash" in stream.getvalue()

    def test_plan_is_disarmed_after_the_run(self, tmp_path):
        run_all(stream=io.StringIO(), only=["TAB-ADDR"],
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"),
                retries=2, backoff=0.0,
                fault_plan="worker.task:crash:times=1")
        assert faults.active_plan() is None


class TestJournalAndResume:
    def test_resume_skips_completed_experiments(self, tmp_path):
        first = run_all(stream=io.StringIO(), only=LIGHT,
                        trace_dir=str(tmp_path / "t"),
                        run_dir=str(tmp_path / "r"))
        stream = io.StringIO()
        resumed = run_all(stream=stream, only=LIGHT, resume=True,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"))
        assert _claims(resumed) == _claims(first)
        output = stream.getvalue()
        assert "served from the run journal" in output
        assert "2 resumed from journal" in output

    def test_interrupted_run_resumes_only_the_missing_part(
            self, tmp_path):
        # Simulate an interrupt after one experiment: journal one
        # record by hand for the *two-experiment* run key.
        solo = run_all(stream=io.StringIO(), only=[LIGHT[0]],
                       trace_dir=str(tmp_path / "t"),
                       run_dir=str(tmp_path / "solo"))
        key = run_key(scale=1, quick=False, suite=LIGHT,
                      trace_dir=str(tmp_path / "t"))
        journal = RunJournal(key, root=tmp_path / "r")
        journal.start(resume=False)
        journal.record(LIGHT[0], solo[0])
        stream = io.StringIO()
        results = run_all(stream=stream, only=LIGHT, resume=True,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"))
        assert [r.experiment.split()[0] for r in results] == LIGHT
        assert all(r.all_hold for r in results)
        output = stream.getvalue()
        assert f"journaled: {LIGHT[0]}" in output
        assert f"journaled: {LIGHT[1]}" not in output

    def test_without_resume_the_journal_is_cleared_and_rerun(
            self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"))
        stream = io.StringIO()
        run_all(stream=stream, only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"))
        assert "served from the run journal" not in stream.getvalue()

    def test_torn_record_is_ignored_and_rerun(self, tmp_path):
        run_all(stream=io.StringIO(), only=LIGHT,
                trace_dir=str(tmp_path / "t"),
                run_dir=str(tmp_path / "r"))
        key = run_key(scale=1, quick=False, suite=LIGHT,
                      trace_dir=str(tmp_path / "t"))
        journal = RunJournal(key, root=tmp_path / "r")
        record = next(journal.directory.glob("*.result"))
        record.write_bytes(record.read_bytes()[:10])  # torn write
        stream = io.StringIO()
        results = run_all(stream=stream, only=LIGHT, resume=True,
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"))
        assert all(r.all_hold for r in results)
        assert "1 resumed from journal" in stream.getvalue()

    def test_run_key_separates_different_runs(self):
        base = dict(scale=1, quick=False, suite=LIGHT, trace_dir=None)
        assert run_key(**base) == run_key(**base)
        assert run_key(**{**base, "scale": 2}) != run_key(**base)
        assert run_key(**{**base, "quick": True}) != run_key(**base)
        assert run_key(**{**base, "suite": LIGHT[:1]}) != run_key(**base)

    def test_journal_records_are_atomic_and_typed(self, tmp_path):
        results = run_all(stream=io.StringIO(), only=[LIGHT[0]],
                          trace_dir=str(tmp_path / "t"),
                          run_dir=str(tmp_path / "r"))
        key = run_key(scale=1, quick=False, suite=[LIGHT[0]],
                      trace_dir=str(tmp_path / "t"))
        journal = RunJournal(key, root=tmp_path / "r")
        completed = journal.completed()
        assert list(completed) == [LIGHT[0]]
        assert _claims([completed[LIGHT[0]]]) == _claims(results)
        assert not list(journal.directory.glob("*.tmp"))


class TestCliFlags:
    def test_run_cli_accepts_the_robustness_flags(self, tmp_path,
                                                  capsys):
        from repro.cli import main as cli_main
        assert cli_main(["run", "--only", "TAB-ADDR",
                         "--trace-dir", str(tmp_path / "t"),
                         "--run-dir", str(tmp_path / "r"),
                         "--retries", "2", "--retry-backoff", "0",
                         "--task-timeout", "120",
                         "--faults", "worker.task:error:times=1",
                         "--fault-seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "paper claims reproduced" in out
        assert "robustness:" in out

    def test_run_cli_resume(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        args = ["run", "--only", "TAB-ADDR",
                "--trace-dir", str(tmp_path / "t"),
                "--run-dir", str(tmp_path / "r")]
        assert cli_main(args) == 0
        capsys.readouterr()
        assert cli_main(args + ["--resume"]) == 0
        assert "served from the run journal" in capsys.readouterr().out
