"""Tests for the Fith language system (repro.fith, section 5)."""

import pytest

from repro.errors import DoesNotUnderstandTrap, FithError
from repro.fith.code import FithOp, MACHINE_OP_SELECTORS
from repro.fith.interp import FithMachine
from repro.fith.programs import (
    CORPUS,
    combined_trace,
    polymorphic_workload,
    trace_for,
)


def run_fith(source: str, max_steps: int = 2_000_000) -> FithMachine:
    machine = FithMachine(trace=True)
    machine.run_source(source, max_steps=max_steps)
    return machine


def outputs(machine: FithMachine):
    return [word.value for word in machine.output]


class TestStackOps:
    def test_push_and_print(self):
        assert outputs(run_fith("1 2 3 . . .")) == [3, 2, 1]

    def test_dup_drop_swap_over_rot(self):
        assert outputs(run_fith("5 dup + .")) == [10]
        assert outputs(run_fith("1 2 drop .")) == [1]
        assert outputs(run_fith("1 2 swap . .")) == [1, 2]
        assert outputs(run_fith("1 2 over . . .")) == [1, 2, 1]
        assert outputs(run_fith("1 2 3 rot . . .")) == [1, 3, 2]

    def test_underflow(self):
        with pytest.raises(FithError):
            run_fith("drop")

    def test_dup_on_empty_stack(self):
        with pytest.raises(FithError, match="dup on empty stack"):
            run_fith("dup")

    def test_literals(self):
        machine = run_fith("1.5 . #foo . true . nil .")
        assert outputs(machine) == [1.5, "foo", "true", "nil"]


class TestArithmetic:
    def test_integer_ops(self):
        assert outputs(run_fith("7 3 + . 7 3 - . 7 3 * . 7 3 / . 7 3 mod .")) \
            == [10, 4, 21, 2, 1]

    def test_float_and_mixed(self):
        machine = run_fith("1.5 2.5 + . 2 1.5 * .")
        assert outputs(machine) == [4.0, 3.0]

    def test_comparisons(self):
        machine = run_fith("1 2 < . 2 1 < . 3 3 <= . 2 2 = . 2 3 <> .")
        assert outputs(machine) == ["true", "false", "true", "true", "true"]

    def test_min_max_abs_neg(self):
        assert outputs(run_fith("3 5 min . 3 5 max . 0 7 - abs . 4 neg .")) \
            == [3, 5, 7, -4]

    def test_division_by_zero(self):
        with pytest.raises(FithError):
            run_fith("1 0 /")

    def test_booleans(self):
        machine = run_fith("true false and . true false or . true not .")
        assert outputs(machine) == ["false", "true", "false"]


class TestControlFlow:
    def test_if_else_then(self):
        assert outputs(run_fith(": f 0 > if 1 else 2 then ; 5 f . 0 5 - f .")) \
            == [1, 2]

    def test_if_without_else(self):
        assert outputs(run_fith(": f dup 0 > if drop 99 then ; 5 f .")) == [99]

    def test_begin_until(self):
        machine = run_fith("""
        variable n
        0 n !
        : count begin n @ 1 + dup n ! 5 >= until ;
        count n @ .
        """)
        assert outputs(machine) == [5]

    def test_begin_while_repeat(self):
        machine = run_fith("""
        variable total
        0 total !
        variable k
        0 k !
        : sum begin k @ 10 < while total @ k @ + total ! k @ 1 + k ! repeat ;
        sum total @ .
        """)
        assert outputs(machine) == [45]

    def test_do_loop_with_index(self):
        machine = run_fith("""
        variable acc
        0 acc !
        5 0 do acc @ i + acc ! loop
        acc @ .
        """)
        assert outputs(machine) == [10]

    def test_nested_do_loops_j(self):
        machine = run_fith("""
        variable acc
        0 acc !
        3 0 do 3 0 do acc @ j 10 * i + + acc ! loop loop
        acc @ .
        """)
        # sum over outer j, inner i of (10j + i) = 90 + 9 = 99
        assert outputs(machine) == [99]

    def test_unbalanced_control(self):
        with pytest.raises(FithError):
            FithMachine().load(": f if ;")
        with pytest.raises(FithError):
            FithMachine().load("begin 1")

    def test_i_outside_loop(self):
        with pytest.raises(FithError):
            run_fith("i")


class TestDefinitionsAndDispatch:
    def test_colon_definition(self):
        assert outputs(run_fith(": square dup * ; 9 square .")) == [81]

    def test_class_specific_definition(self):
        machine = run_fith("""
        :: SmallInteger describe drop 1 ;
        :: Float describe drop 2 ;
        5 describe . 5.0 describe .
        """)
        assert outputs(machine) == [1, 2]

    def test_recursion_is_late_bound(self):
        assert outputs(run_fith(
            ":: SmallInteger fact dup 2 < if drop 1 else dup 1 - fact * "
            "then ; 5 fact .")) == [120]

    def test_redefinition_wins(self):
        machine = run_fith(": f 1 ; : g f ; : f 2 ; 0 g .")
        # g sends f; the send is late bound, so the new f answers 2.
        assert outputs(machine) == [2]

    def test_unknown_word_is_dnu(self):
        with pytest.raises(DoesNotUnderstandTrap):
            run_fith("1 zorble")

    def test_definition_without_semicolon(self):
        with pytest.raises(FithError):
            FithMachine().load(": f 1")

    def test_on_unknown_class(self):
        with pytest.raises(FithError):
            FithMachine().load(":: Zorp f 1 ;")


class TestObjectsAndVariables:
    def test_class_and_instances(self):
        machine = run_fith("""
        class Pair 2
        #Pair new dup 0 11 put dup 1 31 put
        dup 0 at swap 1 at + .
        """)
        assert outputs(machine) == [42]

    def test_arrays(self):
        machine = run_fith("""
        variable arr
        4 array arr !
        4 0 do arr @ i i i * put loop
        arr @ 3 at .
        arr @ size .
        """)
        assert outputs(machine) == [9, 4]

    def test_variables_are_cells(self):
        machine = run_fith("variable x 42 x ! x @ .")
        assert outputs(machine) == [42]

    def test_index_bounds(self):
        with pytest.raises(FithError):
            run_fith("1 array dup 5 at")


class TestTracing:
    def test_trace_fields(self):
        machine = run_fith("1 2 + .")
        events = machine.trace
        assert len(events) == 5   # push, push, send +, send ., halt
        assert events[0].dispatched is False          # push
        assert events[2].dispatched is True           # +
        add = events[2]
        assert machine.opcodes.selector_of(add.opcode) == "+"
        # TOS at dispatch of + was the 2 (a SmallInteger).
        assert add.receiver_class == \
            machine.registry.by_name("SmallInteger").class_tag

    def test_addresses_disjoint_across_words(self):
        machine = run_fith(": f 1 ; : g 2 ; 0 f drop 0 g drop")
        addresses = {event.address for event in machine.trace}
        assert len(addresses) > 4

    def test_trace_disabled_by_default(self):
        machine = FithMachine()
        machine.run_source("1 2 + drop")
        assert machine.trace is None

    def test_machine_ops_have_opcodes(self):
        machine = run_fith("1 drop")
        for event in machine.trace:
            assert event.opcode is not None

    def test_empty_stack_receiver_class(self):
        machine = run_fith(": f 1 drop ; f")
        first_send = next(e for e in machine.trace if e.dispatched)
        assert first_send.receiver_class == -1


class TestCorpus:
    EXPECTED = {
        "hanoi": [1023],
        "sieve": [35],               # primes below 150
        "fib": [377],                # fib(14)
        "collatz": [701],
        "matrix": [8.0],
    }

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_runs_and_traces(self, name):
        events = trace_for(name, scale=1)
        assert len(events) > 1000
        assert any(event.dispatched for event in events)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_golden_outputs(self, name):
        machine = FithMachine()
        machine.run_source(CORPUS[name](1), max_steps=10_000_000)
        assert [w.value for w in machine.output] == self.EXPECTED[name]

    def test_sort_is_sorted(self):
        machine = FithMachine()
        machine.run_source(CORPUS["sort"](1), max_steps=10_000_000)
        verdict = machine.output[0]
        assert verdict.value == "true"

    def test_combined_trace_rebases_addresses(self):
        events = combined_trace(scale=1, names=["fib", "collatz"])
        fib_only = trace_for("fib", 1)
        assert len(events) > len(fib_only)
        # Addresses from the two programs do not collide.
        assert len({e.address for e in events}) >= \
            len({e.address for e in fib_only})

    def test_polymorphic_workload_deterministic(self):
        assert polymorphic_workload(seed=5) == polymorphic_workload(seed=5)
        assert polymorphic_workload(seed=5) != polymorphic_workload(seed=6)

    def test_polymorphic_workload_runs(self):
        machine = FithMachine(trace=True)
        machine.run_source(polymorphic_workload(classes=4, selectors=6,
                                                rounds=50),
                           max_steps=2_000_000)
        keys = {e.itlb_key for e in machine.trace if e.dispatched}
        assert len(keys) > 10
