"""Tests for the single-pass sweep subsystem (repro.sweep).

The load-bearing guarantee is *bitwise equivalence*: for every LRU
configuration on a power-of-two grid, the stack-distance engine must
produce exactly the hit/miss counts (and therefore bit-identical
float ratios) that per-configuration ``simulate_itlb`` /
``simulate_icache`` runs produce — across every warm-up window
variant, including the quirky ones pinned in test_tracesim.py, and
under *both* measurement-semantics versions ("paper" preserves the
quirks, "v2" fixes them).  CI runs the equivalence tests by name
(``-k "equivalence and paper"`` / ``-k "equivalence and v2"``) as a
dedicated gate.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.experiments import fig10, fig11
from repro.experiments.registry import get as get_experiment
from repro.sweep import (
    HierarchySpec,
    PAPER_SIZES,
    SweepSpec,
    next_use_times,
    paper_hierarchy,
    run_hierarchy,
    run_sweep,
)
from repro.trace.cachesim import simulate_icache, simulate_itlb
from repro.trace.events import TraceEvent


def _mixed_trace(n=4000, seed=7):
    """Phased locality + random stragglers + a non-dispatched mix."""
    rnd = random.Random(seed)
    events = []
    for i in range(n):
        if rnd.random() < 0.3:
            address = rnd.randrange(600)
        else:
            address = (i * 7) % 97 + (i // 500) * 64
        events.append(TraceEvent(address, rnd.randrange(60),
                                 rnd.randrange(5),
                                 dispatched=rnd.random() < 0.7))
    return events


@pytest.fixture(scope="module")
def events():
    return _mixed_trace()


GRID = dict(sizes=PAPER_SIZES, associativities=(1, 2, 4, "full"))

#: Warm-up variants for the equivalence pins.  1.0 is gone on purpose:
#: SweepSpec/CLI now reject it (the simulate_* edge behaviour at the
#: whole-trace cut stays pinned in test_tracesim.py); 0.9 keeps a cut
#: deep in the trace in the mix.
WINDOWS = [
    {"double_pass": True},
    {"warmup_fraction": 0.25},
    {"warmup_fraction": 0.0},
    {"warmup_fraction": 0.9},
]

SEMANTICS = ("paper", "v2")


class TestReplayInterfaces:
    """replay (pair stream) and replay_columns (parallel columns) are
    the same engine; pair streams may be one-shot iterables."""

    def _refs(self):
        return [(i * 3 % 7, i * 3 % 7) for i in range(50)]

    def test_replay_accepts_a_generator(self):
        from repro.sweep.engine import MultiConfigLRU
        refs = self._refs()
        from_list = MultiConfigLRU({1: 2})
        from_list.replay(refs)
        from_gen = MultiConfigLRU({1: 2})
        from_gen.replay(ref for ref in refs)   # one-shot iterable
        assert from_gen.total == from_list.total == len(refs)
        assert from_gen.hits(1, 2) == from_list.hits(1, 2)

    def test_replay_columns_windowing_matches_slicing(self):
        from repro.sweep.engine import MultiConfigLRU
        refs = self._refs()
        blocks = [block for block, _ in refs]
        whole = MultiConfigLRU({1: 2}, full_cap=4)
        whole.replay(refs[:20], count=False)
        whole.replay(refs[20:], count=True)
        windowed = MultiConfigLRU({1: 2}, full_cap=4)
        windowed.replay_columns(blocks, blocks, stop=20, count=False)
        windowed.replay_columns(blocks, blocks, start=20, count=True)
        assert windowed.total == whole.total
        assert windowed.hits(1, 2) == whole.hits(1, 2)
        assert windowed.full_hits(4) == whole.full_hits(4)


class TestSinglePassGridEquivalence:
    """The acceptance-critical pins: engine == grid, bitwise, under
    both measurement-semantics versions."""

    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("window", WINDOWS,
                             ids=[str(w) for w in WINDOWS])
    def test_itlb_equivalence(self, events, window, semantics):
        spec = SweepSpec("itlb", engine="single-pass",
                         semantics=semantics, **GRID, **window)
        surface = run_sweep(spec, events)
        for assoc in GRID["associativities"]:
            for size in PAPER_SIZES:
                stats = simulate_itlb(events, size, assoc,
                                      semantics=semantics, **window)
                assert surface.cell(assoc, size) == (stats.hits,
                                                     stats.misses)
                assert surface.ratio(assoc, size) == stats.hit_ratio

    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("window", WINDOWS,
                             ids=[str(w) for w in WINDOWS])
    def test_icache_equivalence(self, events, window, semantics):
        spec = SweepSpec("icache", engine="single-pass",
                         semantics=semantics, **GRID, **window)
        surface = run_sweep(spec, events)
        for assoc in GRID["associativities"]:
            for size in PAPER_SIZES:
                stats = simulate_icache(events, size, assoc,
                                        semantics=semantics, **window)
                assert surface.cell(assoc, size) == (stats.hits,
                                                     stats.misses)
                assert surface.ratio(assoc, size) == stats.hit_ratio

    def test_equivalence_with_line_words(self, events):
        spec = SweepSpec("icache", sizes=(16, 64, 1024),
                         associativities=(1, 2), line_words=4,
                         double_pass=True, engine="single-pass")
        surface = run_sweep(spec, events)
        for assoc in (1, 2):
            for size in (16, 64, 1024):
                stats = simulate_icache(events, size, assoc,
                                        line_words=4, double_pass=True)
                assert surface.cell(assoc, size) == (stats.hits,
                                                     stats.misses)

    def test_equivalence_unfiltered_itlb(self, events):
        spec = SweepSpec("itlb", sizes=(32, 256), associativities=(2,),
                         dispatched_only=False, double_pass=True,
                         engine="single-pass")
        surface = run_sweep(spec, events)
        for size in (32, 256):
            stats = simulate_itlb(events, size, 2,
                                  dispatched_only=False,
                                  double_pass=True)
            assert surface.cell(2, size) == (stats.hits, stats.misses)

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_equivalence_when_cut_lands_on_non_dispatched(self,
                                                          semantics):
        # Paper: the never-resetting warm-up quirk must carry over
        # exactly.  v2: the always-firing fix must carry over too.
        events = [TraceEvent(i % 9, i % 4, 1, dispatched=(i != 10))
                  for i in range(20)]
        spec = SweepSpec("itlb", sizes=(8, 16), associativities=(1, 2),
                         warmup_fraction=0.5, engine="single-pass",
                         semantics=semantics)
        surface = run_sweep(spec, events)
        for assoc in (1, 2):
            for size in (8, 16):
                stats = simulate_itlb(events, size, assoc,
                                      warmup_fraction=0.5,
                                      semantics=semantics)
                assert surface.cell(assoc, size) == (stats.hits,
                                                     stats.misses)

    def test_equivalence_one_set_configuration(self, events):
        # size == associativity: a single set, served by the
        # unbounded-depth level rather than a masked one.
        spec = SweepSpec("itlb", sizes=(16,), associativities=(16,),
                         double_pass=True, engine="single-pass")
        surface = run_sweep(spec, events)
        stats = simulate_itlb(events, 16, 16, double_pass=True)
        assert surface.cell(16, 16) == (stats.hits, stats.misses)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 25),
                              st.booleans()),
                    min_size=5, max_size=150),
           st.sampled_from([{"double_pass": True},
                            {"warmup_fraction": 0.33}]),
           st.sampled_from(SEMANTICS))
    def test_property_equivalence(self, rows, window, semantics):
        events = [TraceEvent(address, opcode, opcode % 3, dispatched)
                  for address, opcode, dispatched in rows]
        spec = SweepSpec("icache", sizes=(8, 32, 128),
                         associativities=(1, 2, "full"),
                         engine="single-pass", semantics=semantics,
                         **window)
        surface = run_sweep(spec, events)
        for assoc in (1, 2, "full"):
            for size in (8, 32, 128):
                stats = simulate_icache(events, size, assoc,
                                        semantics=semantics, **window)
                assert surface.cell(assoc, size) == (stats.hits,
                                                     stats.misses)


class TestSpecValidation:
    def test_rejects_unknown_cache_engine_policy(self):
        with pytest.raises(ValueError, match="cache kind"):
            SweepSpec("dcache")
        with pytest.raises(ValueError, match="engine"):
            SweepSpec("itlb", engine="psychic")
        with pytest.raises(ValueError, match="policy"):
            SweepSpec("itlb", policy="mru")

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="associativity"):
            SweepSpec("itlb", sizes=(8,), associativities=(3,))
        with pytest.raises(ValueError, match="line_words"):
            SweepSpec("itlb", sizes=(8,), line_words=2)
        with pytest.raises(ValueError, match="line_words"):
            SweepSpec("icache", sizes=(8,), line_words=3)
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec("itlb", sizes=())

    def test_rejects_unknown_semantics(self):
        with pytest.raises(ValueError, match="semantics"):
            SweepSpec("itlb", semantics="v3")

    @pytest.mark.parametrize("fraction", [1.0, 1.5, -0.1, 2.0])
    def test_rejects_out_of_range_warmup_fraction(self, fraction):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            SweepSpec("itlb", warmup_fraction=fraction)

    def test_eligibility(self):
        assert SweepSpec("itlb").single_pass_eligible()
        assert not SweepSpec("itlb", policy="fifo").single_pass_eligible()
        # 24 entries, 2-way: 12 sets is not a power of two.
        assert not SweepSpec("itlb", sizes=(24,),
                             associativities=(2,)).single_pass_eligible()

    def test_forced_single_pass_on_ineligible_spec_raises(self, events):
        spec = SweepSpec("itlb", policy="fifo", engine="single-pass")
        with pytest.raises(ValueError, match="not single-pass eligible"):
            run_sweep(spec, events)

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError, match="at least one level"):
            HierarchySpec("empty", ())
        with pytest.raises(ValueError, match="duplicate"):
            HierarchySpec("dup", (SweepSpec("itlb"), SweepSpec("itlb")))


class TestSemanticsV2:
    """The v2 fixes themselves (the equivalence pins above prove the
    engine mirrors them; these prove they are the *right* fixes)."""

    def test_cut_computed_over_dispatched_references(self):
        # 100 events, every other one dispatched: v2 warms 25% of the
        # 50 ITLB references, not "the references inside the first 25
        # raw events" (which the paper cut would give: 13 minus the
        # filtered boundary... see the quirk tests in test_tracesim).
        events = [TraceEvent(i, i % 3, 1, dispatched=(i % 2 == 0))
                  for i in range(100)]
        stats = simulate_itlb(events, 16, 2, warmup_fraction=0.25,
                              semantics="v2")
        assert stats.accesses == 50 - 12  # int(50 * 0.25) == 12 warmed

    def test_reset_always_fires_on_filtered_cut(self):
        # The paper quirk: cut at raw index 10 lands on the one
        # non-dispatched event, so the reset never fires and all 19
        # references are measured.  v2 resets regardless.
        events = [TraceEvent(i, i % 3, 1, dispatched=(i != 10))
                  for i in range(20)]
        paper = simulate_itlb(events, 16, 2, warmup_fraction=0.5)
        v2 = simulate_itlb(events, 16, 2, warmup_fraction=0.5,
                           semantics="v2")
        assert paper.accesses == 19          # quirk preserved
        assert v2.accesses == 19 - 9         # int(19 * 0.5) warmed

    def test_symmetric_end_of_trace(self):
        # Whole-trace warm-up (only reachable via simulate_* directly;
        # the spec/CLI layers reject fraction 1.0): paper zeroes the
        # ITLB but measures the whole trace on the icache; v2 measures
        # nothing on either.
        events = [TraceEvent(i % 7, i % 5, 1) for i in range(40)]
        assert simulate_itlb(events, 16, 2, warmup_fraction=1.0,
                             semantics="v2").accesses == 0
        assert simulate_icache(events, 16, 2, warmup_fraction=1.0,
                               semantics="v2").accesses == 0
        assert simulate_icache(events, 16, 2,
                               warmup_fraction=1.0).accesses == 40

    def test_paper_is_the_default(self, events):
        explicit = simulate_itlb(events, 64, 2, warmup_fraction=0.25,
                                 semantics="paper")
        implicit = simulate_itlb(events, 64, 2, warmup_fraction=0.25)
        assert (explicit.hits, explicit.misses) == (implicit.hits,
                                                    implicit.misses)
        assert SweepSpec("itlb").semantics == "paper"

    def test_surface_records_semantics(self, events):
        for semantics in SEMANTICS:
            surface = run_sweep(
                SweepSpec("itlb", sizes=(32,), associativities=(2,),
                          warmup_fraction=0.25, semantics=semantics),
                events)
            assert surface.meta["semantics"] == semantics
            assert surface.semantics == semantics
            assert surface.to_sweep_result().meta["semantics"] \
                == semantics

    def test_grid_engine_records_semantics_too(self, events):
        surface = run_sweep(
            SweepSpec("itlb", sizes=(32,), associativities=(2,),
                      policy="fifo", warmup_fraction=0.25,
                      semantics="v2"), events)
        assert surface.meta["engine"] == "grid"
        assert surface.meta["semantics"] == "v2"
        stats = simulate_itlb(events, 32, 2, policy="fifo",
                              warmup_fraction=0.25, semantics="v2")
        assert surface.cell(2, 32) == (stats.hits, stats.misses)

    def test_double_pass_semantics_agree_bitwise(self, events):
        from repro.sweep import run_semantics_delta
        spec = SweepSpec("itlb", sizes=(16, 64), associativities=(2,),
                         double_pass=True)
        paper, v2, delta = run_semantics_delta(spec, events)
        assert paper.counts == v2.counts
        assert all(d == 0.0 for row in delta.values()
                   for d in row.values())

    def test_fraction_window_delta_is_quantified(self, events):
        from repro.sweep import run_semantics_delta, semantics_delta_table
        spec = SweepSpec("itlb", sizes=(16, 64), associativities=(1, 2),
                         warmup_fraction=0.25)
        paper, v2, delta = run_semantics_delta(spec, events)
        assert set(delta) == {1, 2}
        assert set(delta[1]) == {16, 64}
        for assoc in (1, 2):
            for size in (16, 64):
                assert delta[assoc][size] == pytest.approx(
                    v2.ratio(assoc, size) - paper.ratio(assoc, size))
        table = semantics_delta_table(paper, v2)
        assert "v2 - paper" in table and "1-way" in table


class TestGridFallback:
    def test_fifo_policy_falls_back_and_matches_simulate(self, events):
        spec = SweepSpec("itlb", sizes=(32, 128), associativities=(2,),
                         policy="fifo", double_pass=True)
        surface = run_sweep(spec, events)
        assert surface.meta["engine"] == "grid"
        for size in (32, 128):
            stats = simulate_itlb(events, size, 2, policy="fifo",
                                  double_pass=True)
            assert surface.cell(2, size) == (stats.hits, stats.misses)

    def test_grid_pass_accounting(self, events):
        spec = SweepSpec("icache", sizes=(8, 16), associativities=(1, 2),
                         double_pass=True, engine="grid")
        surface = run_sweep(spec, events)
        assert surface.meta["trace_passes"] == 2 * 2 * 2  # cells x warm
        single = run_sweep(
            SweepSpec("icache", sizes=(8, 16), associativities=(1, 2),
                      double_pass=True, engine="single-pass"), events)
        assert single.meta["trace_passes"] == 2
        assert single.counts == surface.counts


class TestReferenceCurves:
    def _belady_hits(self, blocks, size):
        next_use = next_use_times(blocks)
        cache, current, hits = set(), {}, 0
        for i, block in enumerate(blocks):
            if block in cache:
                hits += 1
            current[block] = next_use[i]
            if block not in cache:
                if len(cache) >= size:
                    victim = max(cache,
                                 key=lambda b: (current[b], repr(b)))
                    cache.remove(victim)
                cache.add(block)
        return hits

    def test_opt_matches_brute_force_belady(self):
        rnd = random.Random(3)
        for _ in range(10):
            events = [TraceEvent(rnd.randrange(24), 1, 1)
                      for _ in range(rnd.randrange(50, 300))]
            spec = SweepSpec("icache", sizes=(1, 2, 4, 8, 16, 32),
                             associativities=(1,), warmup_fraction=0.0,
                             include_opt=True, engine="single-pass")
            surface = run_sweep(spec, events)
            blocks = [event.address for event in events]
            for size in spec.sizes:
                hits, _ = surface.opt_counts[size]
                assert hits == self._belady_hits(blocks, size)

    def test_opt_dominates_lru_at_every_size(self, events):
        spec = SweepSpec("icache", sizes=(8, 64, 512),
                         associativities=(1,), warmup_fraction=0.0,
                         include_full=True, include_opt=True)
        surface = run_sweep(spec, events)
        for size in spec.sizes:
            assert surface.opt_ratio(size) >= surface.ratio("full", size)

    def test_full_column_matches_full_simulation(self, events):
        spec = SweepSpec("itlb", sizes=(16, 64), associativities=(2,),
                         double_pass=True, include_full=True)
        surface = run_sweep(spec, events)
        assert "full" in surface.associativities
        for size in (16, 64):
            stats = simulate_itlb(events, size, "full",
                                  double_pass=True)
            assert surface.cell("full", size) == (stats.hits,
                                                  stats.misses)

    def test_opt_available_under_grid_engine(self, events):
        spec = SweepSpec("icache", sizes=(8, 32), associativities=(2,),
                         policy="fifo", warmup_fraction=0.0,
                         include_opt=True)
        surface = run_sweep(spec, events)
        assert surface.meta["engine"] == "grid"
        assert set(surface.opt_counts) == {8, 32}


class TestResultSurface:
    @pytest.fixture(scope="class")
    def surface(self):
        return run_sweep(
            SweepSpec("itlb", sizes=(8, 32, 128),
                      associativities=(1, 2), double_pass=True,
                      include_opt=True),
            _mixed_trace(1500, seed=11))

    def test_grid_iteration(self, surface):
        cells = list(surface.grid())
        assert len(cells) == 6
        assert all(0.0 <= ratio <= 1.0 for _, _, ratio in cells)

    def test_curves_and_isoratio(self, surface):
        curve = surface.curve(2)
        assert [size for size, _ in curve] == [8, 32, 128]
        ratios = dict(curve)
        threshold = surface.smallest_size_reaching(0.5, 2)
        assert threshold is None or ratios[threshold] >= 0.5
        assert set(surface.isoratio(0.5)) == {1, 2}
        assert surface.smallest_size_reaching(1.1, 2) is None

    def test_stats_view(self, surface):
        stats = surface.stats(2, 32)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.hit_ratio == surface.ratio(2, 32)

    def test_to_sweep_result_keeps_figure_shape(self, surface):
        legacy = surface.to_sweep_result()
        assert legacy.label == "ITLB"
        assert legacy.ratio(2, 32) == surface.ratio(2, 32)
        assert legacy.meta["engine"] in ("single-pass", "numpy")
        assert "2-way" in legacy.table()

    def test_table_includes_reference_columns(self, surface):
        table = surface.table()
        assert "OPT" in table and "1-way" in table

    def test_opt_ratio_requires_opt(self, events):
        surface = run_sweep(SweepSpec("itlb", sizes=(8,),
                                      associativities=(1,)), events)
        with pytest.raises(ValueError, match="OPT"):
            surface.opt_ratio(8)


class TestHierarchy:
    def test_paper_hierarchy_runs_both_levels(self, events):
        itlb, icache = run_hierarchy(paper_hierarchy(), events)
        assert itlb.label == "ITLB"
        assert icache.label == "instruction cache"
        assert itlb.meta["engine"] in ("single-pass", "numpy")
        assert itlb.meta["trace_passes"] == 2
        assert icache.meta["trace_passes"] == 2

    def test_figures_match_legacy_sweep_helpers(self, events):
        from repro.trace.cachesim import sweep_icache, sweep_itlb
        itlb, icache = run_hierarchy(paper_hierarchy(), events)
        legacy_itlb = sweep_itlb(events, double_pass=True)
        legacy_icache = sweep_icache(events, double_pass=True)
        for assoc in (1, 2, 4):
            for size in PAPER_SIZES:
                assert itlb.ratio(assoc, size) == \
                    legacy_itlb.ratio(assoc, size)
                assert icache.ratio(assoc, size) == \
                    legacy_icache.ratio(assoc, size)


class TestExperimentIntegration:
    def test_fig10_runs_on_the_engine(self, events):
        result = fig10.run(events=events, plot=False)
        assert result.data["engine"] in ("single-pass", "numpy")
        assert result.data["trace_passes"] == 2

    def test_fig11_runs_on_the_engine(self, events):
        result = fig11.run(events=events, plot=False)
        assert result.data["engine"] in ("single-pass", "numpy")
        assert result.data["trace_passes"] == 2

    def test_figure_specs_are_unsharded_single_tasks(self):
        assert get_experiment("FIG-10").shards == ()
        assert get_experiment("FIG-11").shards == ()

    def test_figures_record_semantics(self, events):
        assert fig10.run(events=events,
                         plot=False).data["semantics"] == "paper"
        assert fig11.run(events=events,
                         plot=False).data["semantics"] == "paper"

    @pytest.mark.parametrize("figure", [fig10, fig11])
    def test_figures_emit_semantics_delta_column(self, events, figure):
        result = figure.run(events=events, plot=False,
                            compare_semantics=True)
        delta = result.data["semantics_delta"]
        assert set(delta) == {1, 2, 4}
        assert "v2 - paper" in result.table
        # The figure grid itself (and its claims) stays on the
        # double-pass paper pin regardless of the comparison.
        assert result.data["sweep"].meta["semantics"] == "paper"
        baseline = figure.run(events=events, plot=False)
        assert [c.holds for c in result.claims] == \
            [c.holds for c in baseline.claims]

    def test_fig10_v2_semantics_still_supports_the_claims(self, events):
        # The quirk fixes must not change the scientific conclusions:
        # the double-pass figure grid is quirk-free, so v2 reproduces
        # the same claim outcomes bit-for-bit.
        paper = fig10.run(events=events, plot=False)
        v2 = fig10.run(events=events, plot=False, semantics="v2")
        assert v2.data["semantics"] == "v2"
        assert [(c.claim, c.holds) for c in v2.claims] == \
            [(c.claim, c.holds) for c in paper.claims]


class TestCli:
    def test_sweep_command(self, tmp_path, capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--sizes", "8,64", "--assoc", "1,2,full",
                         "--opt", "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ITLB hit ratio vs cache size" in out
        assert "instruction cache hit ratio vs cache size" in out
        assert "OPT" in out
        assert ("engine: single-pass" in out) or ("engine: numpy" in out)

    def test_sweep_single_cache_with_warmup_and_plot(self, tmp_path,
                                                     capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--cache", "icache", "--sizes", "8,16",
                         "--assoc", "1", "--warmup", "0.5", "--plot",
                         "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fraction 0.5" in out
        assert "legend" in out           # the ASCII plot rendered
        assert "ITLB" not in out

    def test_sweep_rejects_bad_grids(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--sizes", "eight",
                      "--trace-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--assoc", "semi",
                      "--trace-dir", str(tmp_path)])

    @pytest.mark.parametrize("fraction", ["1.0", "-0.25", "nan", "two"])
    def test_sweep_rejects_out_of_range_warmup(self, tmp_path, fraction):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--warmup", fraction,
                      "--trace-dir", str(tmp_path)])

    def test_sweep_semantics_flag(self, tmp_path, capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--cache", "itlb", "--sizes", "8,16",
                         "--assoc", "1", "--warmup", "0.25",
                         "--semantics", "v2",
                         "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "semantics: v2" in out

    def test_sweep_compare_semantics_prints_delta(self, tmp_path,
                                                  capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--cache", "itlb", "--sizes", "8,16",
                         "--assoc", "1,2", "--warmup", "0.25",
                         "--compare-semantics",
                         "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "v2 - paper" in out

    def test_sweep_compare_semantics_under_double_pass_notes_parity(
            self, tmp_path, capsys):
        code = cli_main(["sweep", "monomorphic", "--quick",
                         "--cache", "itlb", "--sizes", "8,16",
                         "--assoc", "1", "--compare-semantics",
                         "--trace-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "quirk-free" in out
        assert "v2 - paper" not in out

    def test_list_workloads_show_params(self, capsys):
        assert cli_main(["list", "--workloads"]) == 0
        out = capsys.readouterr().out
        assert "defaults: " in out
        assert "phase_length=700" in out      # the paper defaults
        assert "quick:    phase_length=280" in out
        assert "v1" in out                    # generator version
