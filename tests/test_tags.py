"""Tests for tagged memory words (repro.memory.tags)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TagMismatch
from repro.memory.tags import (
    SMALL_INTEGER_MAX,
    SMALL_INTEGER_MIN,
    Tag,
    Word,
    fits_small_integer,
)


class TestTag:
    def test_six_primitive_tags(self):
        assert len(Tag) == 6

    def test_pointer_is_not_primitive(self):
        assert not Tag.OBJECT_POINTER.is_primitive

    def test_other_tags_are_primitive(self):
        for tag in Tag:
            if tag is not Tag.OBJECT_POINTER:
                assert tag.is_primitive

    def test_default_class_tag_is_zero_extended_tag(self):
        # Section 3.2: "for primitives, this 16-bit tag is the four bit
        # tag zero extended".
        for tag in Tag:
            if tag.is_primitive:
                assert tag.default_class_tag() == int(tag)

    def test_tags_fit_four_bits(self):
        for tag in Tag:
            assert 0 <= int(tag) < 16


class TestSmallIntegerRange:
    def test_bounds(self):
        assert fits_small_integer(SMALL_INTEGER_MAX)
        assert fits_small_integer(SMALL_INTEGER_MIN)
        assert not fits_small_integer(SMALL_INTEGER_MAX + 1)
        assert not fits_small_integer(SMALL_INTEGER_MIN - 1)

    def test_zero(self):
        assert fits_small_integer(0)

    @given(st.integers(min_value=SMALL_INTEGER_MIN,
                       max_value=SMALL_INTEGER_MAX))
    def test_in_range_constructs(self, value):
        word = Word.small_integer(value)
        assert word.value == value
        assert word.tag is Tag.SMALL_INTEGER

    @given(st.integers().filter(lambda v: not fits_small_integer(v)))
    def test_out_of_range_raises(self, value):
        with pytest.raises(TagMismatch):
            Word.small_integer(value)


class TestWordConstructors:
    def test_uninitialized_is_shared(self):
        assert Word.uninitialized() is Word.uninitialized()
        assert Word.uninitialized().is_uninitialized

    def test_float(self):
        word = Word.floating(2.5)
        assert word.is_float
        assert word.value == 2.5
        assert word.class_tag == int(Tag.FLOAT)

    def test_atom(self):
        word = Word.atom("nil")
        assert word.tag is Tag.ATOM
        assert word.value == "nil"

    def test_instruction_masks_to_32_bits(self):
        word = Word.instruction((1 << 40) | 0xDEADBEEF)
        assert word.value == 0xDEADBEEF

    def test_pointer_carries_class_tag(self):
        word = Word.pointer(0x123, 42)
        assert word.is_pointer
        assert word.class_tag == 42
        assert word.value == 0x123

    def test_pointer_requires_class_tag(self):
        with pytest.raises(TagMismatch):
            Word(Tag.OBJECT_POINTER, 0x123)

    def test_class_tag_range_enforced(self):
        with pytest.raises(TagMismatch):
            Word.pointer(0, 1 << 16)
        with pytest.raises(TagMismatch):
            Word.pointer(0, -2)

    def test_is_number(self):
        assert Word.small_integer(1).is_number
        assert Word.floating(1.0).is_number
        assert not Word.atom("x").is_number


class TestWordSemantics:
    def test_expect_matching(self):
        assert Word.small_integer(7).expect(Tag.SMALL_INTEGER) == 7

    def test_expect_mismatch(self):
        with pytest.raises(TagMismatch):
            Word.small_integer(7).expect(Tag.FLOAT)

    def test_same_object_identity(self):
        assert Word.small_integer(3).same_object_as(Word.small_integer(3))
        assert not Word.small_integer(3).same_object_as(Word.floating(3.0))
        assert Word.atom("a").same_object_as(Word.atom("a"))
        assert not Word.atom("a").same_object_as(Word.atom("b"))

    def test_words_are_immutable(self):
        word = Word.small_integer(1)
        with pytest.raises(Exception):
            word.value = 2

    def test_words_are_hashable(self):
        assert len({Word.small_integer(1), Word.small_integer(1),
                    Word.small_integer(2)}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1),
           st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_pointer_roundtrip(self, address, class_tag):
        word = Word.pointer(address, class_tag)
        assert word.value == address
        assert word.class_tag == class_tag
