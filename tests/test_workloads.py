"""Tests for the scenario registry and the on-disk trace store."""

import dataclasses

import pytest

from repro.trace.events import TraceEvent
from repro.workloads import get, load_events, names, specs
from repro.workloads.spec import WorkloadSpec
from repro.workloads.store import TraceStore

#: The scenarios this PR added beyond the ported seed traces.
NEW_SCENARIOS = ("gc-churn", "megamorphic", "deep-calls",
                 "redefine-churn")


def _counting_spec(counter, *, version=1, name="synthetic"):
    """A tiny deterministic workload that counts generator runs."""
    def build(length=32):
        counter["runs"] += 1
        return [TraceEvent(i % 8, 1 + i % 3, i % 5, bool(i % 2))
                for i in range(length)]
    return WorkloadSpec(name=name, description="test-only",
                        build=build, defaults={"length": 32},
                        version=version)


class TestRegistry:
    def test_seed_traces_are_registered(self):
        for ported in ("paper", "interleaved", "monomorphic"):
            assert ported in names()

    def test_new_scenarios_are_registered(self):
        assert len(NEW_SCENARIOS) >= 4
        for scenario in NEW_SCENARIOS:
            assert scenario in names()

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="megamorphic"):
            get("no-such-workload")

    def test_paper_defaults_match_seed_calibration(self):
        spec = get("paper")
        assert spec.resolve() == {
            "scale": 1, "classes": 20, "selectors": 32, "rounds": 450,
            "phase_length": 700, "stray_percent": 2, "hot_selectors": 10}
        # --quick shrinks only the per-phase repetition, as the seed
        # harness did.
        assert spec.resolve(quick=True)["phase_length"] == 280

    def test_resolve_scale_and_overrides(self):
        spec = get("paper")
        assert spec.resolve(scale=3)["scale"] == 3
        assert spec.resolve(overrides={"rounds": 7})["rounds"] == 7
        with pytest.raises(KeyError, match="no parameter"):
            spec.resolve(overrides={"bogus": 1})


class TestStore:
    def test_generated_once_then_disk_hit(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        first = store.load(spec)
        assert counter["runs"] == 1 and store.generated == 1
        # Same process: memo hit, no disk or generator traffic.
        assert store.load(spec) is first
        assert counter["runs"] == 1
        # Fresh store over the same directory: disk hit.
        second = TraceStore(tmp_path)
        assert second.load(spec) == first
        assert counter["runs"] == 1
        assert second.hits == 1 and second.generated == 0

    def test_same_params_byte_identical(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        blob_a = TraceStore.serialize(spec.generate(spec.resolve()))
        blob_b = TraceStore.serialize(spec.generate(spec.resolve()))
        assert blob_a == blob_b

    def test_params_change_key(self, tmp_path):
        spec = _counting_spec({"runs": 0})
        assert TraceStore.key_for(spec, {"length": 32}) != \
            TraceStore.key_for(spec, {"length": 33})

    def test_version_bump_invalidates(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        v1 = _counting_spec(counter, version=1)
        v2 = _counting_spec(counter, version=2)
        path_v1 = store.path_for(v1, v1.resolve())
        path_v2 = store.path_for(v2, v2.resolve())
        assert path_v1 != path_v2
        store.load(v1)
        store.load(v2)
        assert counter["runs"] == 2
        assert path_v1.exists() and path_v2.exists()

    def test_roundtrip_preserves_events(self):
        events = [TraceEvent(12345, 7, -1, False),
                  TraceEvent(0, 0, 0, True)]
        assert TraceStore.deserialize(
            TraceStore.serialize(events)) == events

    def test_corrupt_file_regenerates(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        path = store.path_for(spec, spec.resolve())
        store.load(spec)
        path.write_bytes(b"RTRC\x01garbage")
        again = TraceStore(tmp_path)
        events = again.load(spec)
        assert counter["runs"] == 2
        assert len(events) == 32
        # And the store healed the entry on disk.
        assert TraceStore(tmp_path).load(spec) == events
        assert counter["runs"] == 2

    def test_sidecar_metadata(self, tmp_path):
        store = TraceStore(tmp_path)
        store.load(_counting_spec({"runs": 0}))
        (entry,) = store.entries()
        assert entry["workload"] == "synthetic"
        assert entry["events"] == 32
        assert store.cached_names() == {"synthetic": 1}


class TestScenarios:
    """Every registered scenario generates a plausible trace."""

    @pytest.mark.parametrize("name", NEW_SCENARIOS)
    def test_scenario_generates_dispatched_events(self, name, tmp_path):
        events = load_events(name, quick=True,
                             store=TraceStore(tmp_path))
        assert len(events) > 1_000
        dispatched = [e for e in events if e.dispatched]
        assert dispatched, f"{name} never dispatched"
        assert len({e.address for e in events}) > 10

    def test_scenarios_are_deterministic(self, tmp_path):
        for name in NEW_SCENARIOS:
            spec = get(name)
            params = spec.resolve(quick=True)
            assert TraceStore.serialize(spec.generate(params)) == \
                TraceStore.serialize(spec.generate(params)), name

    def test_megamorphic_is_megamorphic(self, tmp_path):
        spec = get("megamorphic")
        events = spec.generate(spec.resolve(overrides={"scale": 1}))
        poke = spec.build.__module__  # noqa: F841 (documentation only)
        classes = {e.receiver_class for e in events if e.dispatched}
        # One instance per class cycles through a single call site.
        assert len(classes) >= 26

    def test_redefine_churn_moves_the_code_footprint(self):
        spec = get("redefine-churn")
        few = spec.generate(spec.resolve(overrides={"epochs": 2}))
        many = spec.generate(spec.resolve(overrides={"epochs": 4}))
        # Each epoch compiles its redefined methods at fresh
        # addresses, so more epochs widen the address working set.
        assert len({e.address for e in many}) > \
            len({e.address for e in few})

    def test_deep_calls_outruns_the_context_cache(self):
        spec = get("deep-calls")
        events = spec.generate(spec.resolve(overrides={"depth": 100}))
        sends = sum(1 for e in events if e.dispatched)
        # Call-dominated: at least a quarter of the stream dispatches.
        assert sends / len(events) > 0.25


class TestSpecHygiene:
    def test_specs_are_frozen(self):
        spec = get("paper")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.version = 99

    def test_every_spec_documents_itself(self):
        for spec in specs():
            assert spec.description
            assert spec.version >= 1
