"""Tests for the scenario registry and the on-disk trace store."""

import dataclasses

import pytest

from repro.trace.events import TraceEvent
from repro.workloads import get, load_events, names, specs
from repro.workloads.spec import WorkloadSpec
from repro.workloads.store import TraceStore

#: The scenarios this PR added beyond the ported seed traces.
NEW_SCENARIOS = ("gc-churn", "megamorphic", "deep-calls",
                 "redefine-churn")


def _counting_spec(counter, *, version=1, name="synthetic"):
    """A tiny deterministic workload that counts generator runs."""
    def build(length=32):
        counter["runs"] += 1
        return [TraceEvent(i % 8, 1 + i % 3, i % 5, bool(i % 2))
                for i in range(length)]
    return WorkloadSpec(name=name, description="test-only",
                        build=build, defaults={"length": 32},
                        version=version)


class TestRegistry:
    def test_seed_traces_are_registered(self):
        for ported in ("paper", "interleaved", "monomorphic"):
            assert ported in names()

    def test_new_scenarios_are_registered(self):
        assert len(NEW_SCENARIOS) >= 4
        for scenario in NEW_SCENARIOS:
            assert scenario in names()

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="megamorphic"):
            get("no-such-workload")

    def test_paper_defaults_match_seed_calibration(self):
        spec = get("paper")
        assert spec.resolve() == {
            "scale": 1, "classes": 20, "selectors": 32, "rounds": 450,
            "phase_length": 700, "stray_percent": 2, "hot_selectors": 10}
        # --quick shrinks only the per-phase repetition, as the seed
        # harness did.
        assert spec.resolve(quick=True)["phase_length"] == 280

    def test_resolve_scale_and_overrides(self):
        spec = get("paper")
        assert spec.resolve(scale=3)["scale"] == 3
        assert spec.resolve(overrides={"rounds": 7})["rounds"] == 7
        with pytest.raises(KeyError, match="no parameter"):
            spec.resolve(overrides={"bogus": 1})


class TestStore:
    def test_generated_once_then_disk_hit(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        first = store.load(spec)
        assert counter["runs"] == 1 and store.generated == 1
        # Same process: memo hit, no disk or generator traffic.
        assert store.load(spec) is first
        assert counter["runs"] == 1
        # Fresh store over the same directory: disk hit.
        second = TraceStore(tmp_path)
        assert second.load(spec) == first
        assert counter["runs"] == 1
        assert second.hits == 1 and second.generated == 0

    def test_same_params_byte_identical(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        blob_a = TraceStore.serialize(spec.generate(spec.resolve()))
        blob_b = TraceStore.serialize(spec.generate(spec.resolve()))
        assert blob_a == blob_b

    def test_params_change_key(self, tmp_path):
        spec = _counting_spec({"runs": 0})
        assert TraceStore.key_for(spec, {"length": 32}) != \
            TraceStore.key_for(spec, {"length": 33})

    def test_version_bump_invalidates(self, tmp_path):
        counter = {"runs": 0}
        store = TraceStore(tmp_path)
        v1 = _counting_spec(counter, version=1)
        v2 = _counting_spec(counter, version=2)
        path_v1 = store.path_for(v1, v1.resolve())
        path_v2 = store.path_for(v2, v2.resolve())
        assert path_v1 != path_v2
        store.load(v1)
        store.load(v2)
        assert counter["runs"] == 2
        assert path_v1.exists() and path_v2.exists()

    def test_roundtrip_preserves_events(self):
        events = [TraceEvent(12345, 7, -1, False),
                  TraceEvent(0, 0, 0, True)]
        assert TraceStore.deserialize(
            TraceStore.serialize(events)) == events

    def test_corrupt_file_regenerates(self, tmp_path):
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        path = store.path_for(spec, spec.resolve())
        store.load(spec)
        path.write_bytes(b"RTRC\x01garbage")
        again = TraceStore(tmp_path)
        events = again.load(spec)
        assert counter["runs"] == 2
        assert len(events) == 32
        # And the store healed the entry on disk.
        assert TraceStore(tmp_path).load(spec) == events
        assert counter["runs"] == 2

    def test_sidecar_metadata(self, tmp_path):
        store = TraceStore(tmp_path)
        store.load(_counting_spec({"runs": 0}))
        (entry,) = store.entries()
        assert entry["workload"] == "synthetic"
        assert entry["events"] == 32
        assert store.cached_names() == {"synthetic": 1}


class TestSidecarResilience:
    """The .json sidecar is regenerable metadata: corrupting or
    deleting it must never hide or invalidate a valid binary payload,
    and the store heals it on the next touch."""

    def _store_with_entry(self, tmp_path, counter):
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        store.load(spec)
        path = store.path_for(spec, spec.resolve())
        return spec, path, path.with_suffix(".json")

    @pytest.mark.parametrize("damage", ["missing", "garbage",
                                        "not-a-dict"])
    def test_entries_survive_and_heal_sidecar_damage(self, tmp_path,
                                                     damage):
        counter = {"runs": 0}
        _, path, sidecar = self._store_with_entry(tmp_path, counter)
        if damage == "missing":
            sidecar.unlink()
        elif damage == "garbage":
            sidecar.write_text("{not json !")
        else:
            sidecar.write_text("[1, 2, 3]")
        fresh = TraceStore(tmp_path)
        (entry,) = fresh.entries()
        assert entry["workload"] == "synthetic"
        assert entry["events"] == 32
        assert entry["dispatched"] == 16
        assert entry["recovered"] is True
        # Version/params are unrecoverable from the payload alone.
        assert entry["version"] is None and entry["params"] is None
        assert fresh.cached_names() == {"synthetic": 1}
        # The sidecar was healed on disk: the next enumeration reads
        # it straight back, no reconstruction marker re-computed.
        import json
        healed = json.loads(sidecar.read_text())
        assert healed["workload"] == "synthetic"
        assert healed["recovered"] is True

    def test_load_remains_a_hit_and_rewrites_full_sidecar(self,
                                                          tmp_path):
        counter = {"runs": 0}
        spec, path, sidecar = self._store_with_entry(tmp_path, counter)
        sidecar.write_text("corrupt")
        fresh = TraceStore(tmp_path)
        events = fresh.load(spec)
        assert counter["runs"] == 1      # binary payload served as-is
        assert fresh.hits == 1 and fresh.generated == 0
        assert len(events) == 32
        # Loading knows the spec and params, so the healed sidecar is
        # complete -- not the reconstructed stub enumeration writes.
        import json
        healed = json.loads(sidecar.read_text())
        assert healed["workload"] == "synthetic"
        assert healed["version"] == 1
        assert healed["params"] == {"length": 32}
        assert "recovered" not in healed

    def test_corrupt_binary_is_still_skipped_by_entries(self, tmp_path):
        counter = {"runs": 0}
        _, path, sidecar = self._store_with_entry(tmp_path, counter)
        path.write_bytes(b"RTRC\x01garbage")
        sidecar.unlink()
        assert TraceStore(tmp_path).entries() == []

    def test_trace_cli_survives_corrupt_sidecar(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.cli import main as cli_main
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert cli_main(["trace", "monomorphic", "--quick",
                         "--trace-dir", str(tmp_path)]) == 0
        for sidecar in tmp_path.glob("*.json"):
            sidecar.write_text("]] nope")
        assert cli_main(["trace", "monomorphic", "--quick",
                         "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        assert cli_main(["list", "--workloads",
                         "--trace-dir", str(tmp_path)]) == 0
        assert "[cached: 1 parameterization]" in capsys.readouterr().out


class TestByteSwap:
    """The big-endian path of the binary format: the int columns are
    little-endian on disk regardless of host, so a big-endian host
    (``_SWAP`` true) byteswaps them on the way in and out (the
    dispatched bitset is byte-order independent).  Monkeypatching the
    flag on a little-endian host simulates the *mechanism* in mirror
    image: serialize and deserialize must stay inverses under either
    setting, with every column word byte-reversed relative to the
    native blob -- exactly the transformation that makes a real
    big-endian host land on the little-endian disk layout."""

    EVENTS = [TraceEvent(12345, 7, -1, False),
              TraceEvent(0, 0, 0, True),
              TraceEvent(-70000, 255, 4, True)]

    def _blob(self, monkeypatch, swap):
        import repro.trace.columnar as columnar_module
        monkeypatch.setattr(columnar_module, "_SWAP", swap)
        return TraceStore.serialize(self.EVENTS)

    @pytest.mark.parametrize("swap", [False, True],
                             ids=["native", "swapped"])
    def test_roundtrip_both_ways(self, monkeypatch, swap):
        import repro.trace.columnar as columnar_module
        monkeypatch.setattr(columnar_module, "_SWAP", swap)
        blob = TraceStore.serialize(self.EVENTS)
        assert TraceStore.deserialize(blob) == self.EVENTS

    def test_swapped_writer_flips_column_words_only(self, monkeypatch):
        native = self._blob(monkeypatch, False)
        swapped = self._blob(monkeypatch, True)
        # Header (magic, format byte, little-endian count) is
        # byte-order independent ...
        assert native[:9] == swapped[:9]
        # ... every int-column word (three columns of 4-byte words,
        # each block followed by its CRC32 trailer) is the 4-byte
        # reversal of its native counterpart ...
        assert native != swapped
        n = len(self.EVENTS)
        block = 4 * n + 4  # column data + CRC32 trailer
        for column in range(3):
            base = 9 + column * block
            for offset in range(base, base + 4 * n, 4):
                assert swapped[offset:offset + 4] == \
                    native[offset:offset + 4][::-1]
            # The CRC32 trailer covers the block's *on-disk* bytes,
            # so it tracks the swap: each writer's trailer matches
            # its own layout, and the two differ.
            assert native[base + 4 * n:base + block] != \
                swapped[base + 4 * n:base + block]
            import zlib
            assert swapped[base + 4 * n:base + block] == \
                zlib.crc32(swapped[base:base + 4 * n]).to_bytes(
                    4, "little")
        # ... and the trailing dispatched bitset (plus its CRC) is
        # untouched.
        bits_at = 9 + 3 * block
        assert native[bits_at:] == swapped[bits_at:]

    def test_cross_order_read_is_detected_or_differs(self, monkeypatch):
        # A blob written under one byte order and read under the other
        # must not silently round-trip: the columns decode to
        # different (byte-swapped) event fields.
        import repro.trace.columnar as columnar_module
        native = self._blob(monkeypatch, False)
        monkeypatch.setattr(columnar_module, "_SWAP", True)
        misread = TraceStore.deserialize(native)
        assert misread != self.EVENTS

    def test_store_roundtrip_under_simulated_big_endian(
            self, monkeypatch, tmp_path):
        import repro.trace.columnar as columnar_module
        monkeypatch.setattr(columnar_module, "_SWAP", True)
        counter = {"runs": 0}
        spec = _counting_spec(counter)
        store = TraceStore(tmp_path)
        events = store.load(spec)
        assert TraceStore(tmp_path).load(spec) == events
        assert counter["runs"] == 1


class TestScenarios:
    """Every registered scenario generates a plausible trace."""

    @pytest.mark.parametrize("name", NEW_SCENARIOS)
    def test_scenario_generates_dispatched_events(self, name, tmp_path):
        events = load_events(name, quick=True,
                             store=TraceStore(tmp_path))
        assert len(events) > 1_000
        dispatched = [e for e in events if e.dispatched]
        assert dispatched, f"{name} never dispatched"
        assert len({e.address for e in events}) > 10

    def test_scenarios_are_deterministic(self, tmp_path):
        for name in NEW_SCENARIOS:
            spec = get(name)
            params = spec.resolve(quick=True)
            assert TraceStore.serialize(spec.generate(params)) == \
                TraceStore.serialize(spec.generate(params)), name

    def test_megamorphic_is_megamorphic(self, tmp_path):
        spec = get("megamorphic")
        events = spec.generate(spec.resolve(overrides={"scale": 1}))
        poke = spec.build.__module__  # noqa: F841 (documentation only)
        classes = {e.receiver_class for e in events if e.dispatched}
        # One instance per class cycles through a single call site.
        assert len(classes) >= 26

    def test_redefine_churn_moves_the_code_footprint(self):
        spec = get("redefine-churn")
        few = spec.generate(spec.resolve(overrides={"epochs": 2}))
        many = spec.generate(spec.resolve(overrides={"epochs": 4}))
        # Each epoch compiles its redefined methods at fresh
        # addresses, so more epochs widen the address working set.
        assert len({e.address for e in many}) > \
            len({e.address for e in few})

    def test_deep_calls_outruns_the_context_cache(self):
        spec = get("deep-calls")
        events = spec.generate(spec.resolve(overrides={"depth": 100}))
        sends = sum(1 for e in events if e.dispatched)
        # Call-dominated: at least a quarter of the stream dispatches.
        assert sends / len(events) > 0.25


class TestSpecHygiene:
    def test_specs_are_frozen(self):
        spec = get("paper")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.version = 99

    def test_every_spec_documents_itself(self):
        for spec in specs():
            assert spec.description
            assert spec.version >= 1
