"""Fidelity tests pinned to specific passages of the paper."""

import pytest

from repro.core.encoding import Instruction, disassemble
from repro.core.machine import COMMachine
from repro.core.registers import ProcessStatus, RegisterFile
from repro.memory.fpa import FORMAT_16, FORMAT_36
from repro.memory.tags import Tag, Word
from repro.smalltalk import compile_program


class TestFigure9:
    """Section 4's compiled-code example:

        foo | | ^self * (self - 1) bar.

    compiles to five instructions on the COM (compute self-1, pass the
    result pointer, call bar, multiply, return).  We compile the same
    method with our Smalltalk compiler and execute it.
    """

    SOURCE = """
    SmallInteger >> bar
        "A stand-in definition so foo has something to call."
        ^self + 100

    SmallInteger >> foo
        ^self * (self - 1) bar

    main
        ^7 foo
    """

    def test_executes_like_the_paper(self):
        machine = COMMachine()
        main = compile_program(machine, self.SOURCE)
        result = machine.run_program(main)
        # 7 * ((7-1) bar) = 7 * 106
        assert result.value == 7 * 106

    def test_code_shape_close_to_figure_9(self):
        # The paper's hand-compiled foo is 5 instructions; ours should
        # be in the same small neighbourhood (we use the three-operand
        # send form instead of the explicit movea + zero-operand send).
        machine = COMMachine()
        compile_program(machine, self.SOURCE)
        cls = machine.registry.by_name("SmallInteger")
        foo = machine.method_for(cls, "foo")
        assert foo.instruction_count <= 6

    def test_call_happens_through_result_pointer(self):
        # bar's return value must land exactly where foo's expression
        # needs it -- the arg0 indirection of section 4.
        machine = COMMachine()
        main = compile_program(machine, self.SOURCE)
        machine.run_program(main)
        assert machine.cycles.calls == 2   # main's send of foo, foo's bar


class TestSection32Registers:
    """'The processor state of the COM consists of only six registers.'"""

    def test_register_file_contents(self):
        registers = RegisterFile()
        # CP, NCP, IP, SN, PS (+ FP lives as the context pool's head).
        assert hasattr(registers, "cp")
        assert hasattr(registers, "ncp")
        assert hasattr(registers, "ip")
        assert hasattr(registers, "sn")
        assert hasattr(registers, "ps")

    def test_process_switch_saves_cp_sn_ps(self):
        # "The CP, SN, and PS registers must be saved on a process
        # switch."
        registers = RegisterFile()
        state = registers.process_switch_state()
        assert set(state) == {"cp", "sn", "ps"}

    def test_process_status_roundtrip(self):
        for privileged in (False, True):
            for halted in (False, True):
                status = ProcessStatus(privileged=privileged, halted=halted)
                again = ProcessStatus.unpack(status.pack())
                assert again == status


class TestSection32Tags:
    """'Every word of memory has a four bit tag which is used to
    identify primitive types: uninitialized, small integer, floating
    point number, atom, instruction and object pointer.'"""

    def test_exactly_the_papers_six_types(self):
        assert {tag.name for tag in Tag} == {
            "UNINITIALIZED", "SMALL_INTEGER", "FLOAT", "ATOM",
            "INSTRUCTION", "OBJECT_POINTER",
        }

    def test_sixteen_bit_class_tag_for_pointers(self):
        # "For object pointers, this 16-bit tag identifies the object
        # class and is used in the method lookup."
        machine = COMMachine()
        address = machine.heap.allocate(machine.array_class, 4)
        pointer = machine.heap.pointer_to(address)
        assert pointer.class_tag == machine.array_class.class_tag


class TestSection22AddressFormats:
    def test_paper_formats_exist(self):
        assert FORMAT_16.exponent_bits == 4
        assert FORMAT_36.exponent_bits == 5
        assert FORMAT_36.mantissa_bits == 31

    def test_the_0x8345_sentence(self):
        """'For example the 16-bit floating point address 0x8345 has an
        exponent of 8.  Thus the offset field is the byte 0x45 and the
        segment number is 0x83.'"""
        address = FORMAT_16.from_packed(0x8345)
        assert (address.exponent, address.offset,
                address.packed_segment_name) == (8, 0x45, 0x83)


class TestDisassemblerRoundTrip:
    def test_compiled_method_disassembles(self):
        machine = COMMachine()
        main = compile_program(machine, """
        SmallInteger >> f
            ^self + 1
        main
            ^3 f
        """)
        words = [machine.heap.load(main.code_address, i).value
                 for i in range(main.instruction_count)]
        lines = disassemble(words, machine.opcodes)
        assert len(lines) == main.instruction_count
        # Every line decodes back to the same encoding.
        for word, line in zip(words, lines):
            assert f"{word:08x}" in line
            assert Instruction.decode(word).encode() == word
