"""Tests for the stack bytecode compiler and VM (repro.smalltalk.stackgen)."""

import pytest

from repro.core.machine import COMMachine
from repro.errors import CompileError, FithError
from repro.smalltalk import compile_program
from repro.smalltalk.stackgen import (
    SOp,
    StackCompiler,
    StackVM,
    run_stack_program,
)


def run_both(source: str):
    """Run a source on both back ends; returns (com_word, stack_word)."""
    machine = COMMachine()
    main = compile_program(machine, source)
    com = machine.run_program(main, max_instructions=2_000_000)
    stack, vm = run_stack_program(source, max_instructions=2_000_000)
    return com, stack, machine, vm


class TestStackExecution:
    def test_arithmetic(self):
        result, vm = run_stack_program("main\n    ^2 + 3 * 4")
        assert result.value == 20     # left-assoc Smalltalk precedence

    def test_temps_and_control(self):
        result, _ = run_stack_program("""
        main | total |
            total := 0.
            1 to: 10 do: [:k | total := total + k].
            ^total
        """)
        assert result.value == 55

    def test_method_dispatch(self):
        result, _ = run_stack_program("""
        class A extends Object
        class B extends A
        A >> f
            ^1
        B >> f
            ^2
        main | b |
            b := B new.
            ^b f
        """)
        assert result.value == 2

    def test_instance_fields(self):
        result, _ = run_stack_program("""
        class P extends Object fields: x y
        P >> set
            x := 3. y := 4. ^self
        P >> sum
            ^x + y
        main | p |
            p := P new.
            p set.
            ^p sum
        """)
        assert result.value == 7

    def test_while(self):
        result, _ = run_stack_program("""
        main | i |
            i := 0.
            [i < 5] whileTrue: [i := i + 1].
            ^i
        """)
        assert result.value == 5

    def test_and_or(self):
        result, _ = run_stack_program("""
        main | n |
            n := 0.
            ((1 < 2) and: [2 < 3]) ifTrue: [n := n + 1].
            ((1 < 2) or: [3 < 2]) ifTrue: [n := n + 10].
            ((2 < 1) or: [2 < 3]) ifTrue: [n := n + 100].
            ^n
        """)
        assert result.value == 111

    def test_division_by_zero(self):
        with pytest.raises(FithError):
            run_stack_program("main\n    ^1 / 0")

    def test_instruction_budget(self):
        with pytest.raises(FithError):
            run_stack_program("""
            main | i |
                i := 0.
                [true] whileTrue: [i := i + 1].
                ^i
            """, max_instructions=100)


class TestBackendAgreement:
    SOURCES = [
        "main\n    ^6 * 7",
        """
        SmallInteger >> fib
            self < 2 ifTrue: [^self].
            ^(self - 1) fib + (self - 2) fib
        main
            ^11 fib
        """,
        """
        main | total |
            total := 0.
            1 to: 25 do: [:i | total := total + (i * i)].
            ^total
        """,
        """
        class Box extends Object fields: v
        Box >> hold: n
            v := n. ^self
        Box >> get
            ^v
        main | b |
            b := Box new.
            b hold: 99.
            ^b get
        """,
        """
        main | n len |
            n := 27. len := 0.
            [n > 1] whileTrue: [
                (n \\\\ 2) = 0 ifTrue: [n := n / 2]
                              ifFalse: [n := (3 * n) + 1].
                len := len + 1
            ].
            ^len
        """,
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_same_result(self, source):
        com, stack, _machine, _vm = run_both(source)
        assert com.same_object_as(stack)

    @pytest.mark.parametrize("source", SOURCES)
    def test_stack_needs_more_instructions(self, source):
        # The section-5 design-study direction: the stack machine
        # always executes more instructions than three-address code.
        com, stack, machine, vm = run_both(source)
        assert vm.instructions > machine.cycles.instructions


class TestStackCompiler:
    def test_bytecode_shapes(self):
        compiler = StackCompiler()
        compiler.compile_program("main\n    ^1 + 2")
        ops = [instr.op for instr in compiler.main.code]
        assert ops == [SOp.PUSH_LIT, SOp.PUSH_LIT, SOp.SEND,
                       SOp.RETURN_TOP, SOp.HALT]

    def test_sends_counted(self):
        _result, vm = run_stack_program("main\n    ^1 + 2 + 3")
        assert vm.sends == 2

    def test_unknown_variable(self):
        with pytest.raises(CompileError):
            run_stack_program("main\n    ^zorp")

    def test_class_literal_is_atom(self):
        compiler = StackCompiler()
        compiler.compile_program("""
        class K extends Object
        main
            ^K new
        """)
        first = compiler.main.code[0]
        assert first.op is SOp.PUSH_LIT
        assert first.literal.value == "K"
