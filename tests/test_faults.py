"""Tests for the seeded fault-injection framework (repro.faults)."""

import os

import pytest

from repro import faults
from repro.errors import (InjectedIOError, InjectedTaskError,
                          WorkerCrash)
from repro.faults import ActiveFaults, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts and ends with no plan armed anywhere."""
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    monkeypatch.delenv(faults.ENV_EPOCH, raising=False)
    monkeypatch.setattr(faults, "_ACTIVE", None)
    monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
    monkeypatch.setattr(faults, "_IN_WORKER", False)
    yield
    faults.install(None)


class TestPlanParsing:
    def test_cli_syntax_round_trips_through_json(self):
        plan = FaultPlan.parse(
            "store.read:corrupt:p=0.5,worker.task:crash:times=2,"
            "worker.task:slow:delay=1.5", seed=42)
        assert plan.seed == 42
        assert len(plan.specs) == 3
        assert plan.specs[0] == FaultSpec("store.read", "corrupt",
                                          probability=0.5)
        assert plan.specs[1].times == 2
        assert plan.specs[2].delay == 1.5
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_plan_accepted_directly(self):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec("worker.start", "io-error"),))
        assert FaultPlan.parse(plan.to_json()) == plan

    def test_empty_plan(self):
        assert FaultPlan.parse("").specs == ()

    @pytest.mark.parametrize("bad", [
        "nowhere:crash",                 # unknown site
        "worker.task:meteor",            # unknown kind
        "worker.task",                   # no kind
        "worker.task:crash:times",       # option without value
        "worker.task:crash:zeal=3",      # unknown option
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("store.read", "corrupt", probability=1.5)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec("worker.task", "slow", delay=-1)


class TestDeterminism:
    def _fires(self, seed, epoch=0, calls=200):
        active = ActiveFaults(
            FaultPlan(seed=seed, specs=(
                FaultSpec("worker.task", "error", probability=0.3),)),
            epoch=epoch)
        return [active.pick("worker.task", "TAB-X") is not None
                for _ in range(calls)]

    def test_same_seed_same_sequence(self):
        assert self._fires(1) == self._fires(1)

    def test_different_seed_different_sequence(self):
        assert self._fires(1) != self._fires(2)

    def test_epoch_changes_the_rolls(self):
        assert self._fires(1, epoch=0) != self._fires(1, epoch=1)

    def test_sequence_is_per_key_so_scheduling_cannot_perturb_it(self):
        plan = FaultPlan(seed=9, specs=(
            FaultSpec("worker.task", "error", probability=0.3),))
        a = ActiveFaults(plan)
        interleaved = [(a.pick("worker.task", "A"),
                        a.pick("worker.task", "B")) for _ in range(50)]
        b = ActiveFaults(plan)
        a_only = [b.pick("worker.task", "A") for _ in range(50)]
        assert [pair[0] is not None for pair in interleaved] == \
            [fire is not None for fire in a_only]

    def test_times_caps_fires_per_key(self):
        active = ActiveFaults(FaultPlan(seed=0, specs=(
            FaultSpec("worker.task", "error", times=2),)))
        fires = [active.pick("worker.task", "K") is not None
                 for _ in range(5)]
        assert fires == [True, True, False, False, False]
        # A different key has its own budget.
        assert active.pick("worker.task", "L") is not None


class TestInjection:
    def _arm(self, spec_text, seed=0):
        faults.install(FaultPlan.parse(spec_text, seed=seed))

    def test_no_plan_is_a_no_op(self):
        payload = b"hello"
        assert faults.inject("store.read", key="x",
                             payload=payload) is payload

    def test_io_error(self):
        self._arm("store.read:io-error")
        with pytest.raises(InjectedIOError):
            faults.inject("store.read", key="f.trace", payload=b"x")
        # It is an OSError: real IO handlers catch it.
        self._arm("store.read:io-error")
        with pytest.raises(OSError):
            faults.inject("store.read", key="f.trace", payload=b"x")

    def test_task_error(self):
        self._arm("worker.task:error")
        with pytest.raises(InjectedTaskError):
            faults.inject("worker.task", key="TAB-X")

    def test_corrupt_flips_exactly_one_bit(self):
        self._arm("store.read:corrupt")
        payload = bytes(range(64))
        mutated = faults.inject("store.read", key="f", payload=payload)
        assert mutated != payload and len(mutated) == len(payload)
        diff = [a ^ b for a, b in zip(payload, mutated) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_truncate_halves(self):
        self._arm("store.write:truncate")
        assert faults.inject("store.write", key="f",
                             payload=b"0123456789") == b"01234"

    def test_crash_outside_worker_raises_not_exits(self):
        self._arm("worker.task:crash")
        with pytest.raises(WorkerCrash):
            faults.inject("worker.task", key="TAB-X")

    def test_slow_sleeps(self):
        import time
        self._arm("worker.task:slow:delay=0.05")
        start = time.time()
        faults.inject("worker.task", key="TAB-X")
        assert time.time() - start >= 0.05

    def test_probability_zero_never_fires(self):
        self._arm("worker.task:error:p=0")
        for _ in range(50):
            faults.inject("worker.task", key="TAB-X")
        assert faults.fired_count() == 0


class TestEnvThreading:
    def test_install_exports_and_uninstall_clears(self):
        plan = FaultPlan.parse("worker.task:error", seed=5)
        faults.install(plan)
        assert os.environ[faults.ENV_PLAN] == plan.to_json()
        assert faults.active_plan() == plan
        faults.install(None)
        assert faults.ENV_PLAN not in os.environ
        assert faults.active_plan() is None

    def test_fresh_process_arms_from_env(self, monkeypatch):
        plan = FaultPlan.parse("worker.task:error", seed=5)
        faults.install(plan)
        # Simulate a child that inherited only the environment.
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ACTIVE_SOURCE", None)
        assert faults.active_plan() == plan
        with pytest.raises(InjectedTaskError):
            faults.inject("worker.task", key="TAB-X")

    def test_ensure_arms_without_env(self, monkeypatch):
        plan = FaultPlan.parse("worker.task:error", seed=5)
        payload = plan.to_json()
        monkeypatch.delenv(faults.ENV_PLAN, raising=False)
        faults.ensure(payload)
        assert faults.active_plan() == plan

    def test_advance_epoch_bumps_env_and_instance(self):
        faults.install(FaultPlan.parse("worker.task:error:p=0.5"))
        assert faults.advance_epoch() == 1
        assert os.environ[faults.ENV_EPOCH] == "1"
        assert faults.advance_epoch() == 2

    def test_advance_epoch_without_plan_is_noop(self):
        assert faults.advance_epoch() == 0

    def test_pool_workers_inherit_the_plan(self, tmp_path):
        """A real child process fires the same plan via the
        environment -- the harness's worker-arming path."""
        from concurrent.futures import ProcessPoolExecutor
        faults.install(FaultPlan.parse("worker.task:error", seed=3))
        with ProcessPoolExecutor(max_workers=1) as pool:
            kind = pool.submit(_probe_child).result(timeout=60)
        assert kind == "InjectedTaskError"


def _probe_child() -> str:
    """Top-level child probe (picklable by reference)."""
    from repro import faults as child_faults
    try:
        child_faults.inject("worker.task", key="PROBE")
    except Exception as error:  # noqa: BLE001 - reporting the type
        return type(error).__name__
    return "none"
