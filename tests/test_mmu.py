"""Tests for three-level addressing (repro.memory.mmu, section 3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AliasTrap, BoundsTrap, ProtectionTrap, SegmentFault
from repro.memory.fpa import address_format
from repro.memory.mmu import MMU
from repro.memory.physical import default_hierarchy
from repro.memory.tags import Word


@pytest.fixture
def mmu():
    return MMU(address_format(36), arena_words=1 << 16)


class TestAllocation:
    def test_allocate_and_access(self, mmu):
        address = mmu.allocate_object(0, 10, class_tag=7)
        mmu.write(0, address.step(3), Word.small_integer(5))
        assert mmu.read(0, address.step(3)).value == 5

    def test_class_of(self, mmu):
        address = mmu.allocate_object(0, 4, class_tag=9)
        assert mmu.class_of(0, address) == 9

    def test_exponent_matches_size(self, mmu):
        assert mmu.allocate_object(0, 1, 1).exponent == 0
        assert mmu.allocate_object(0, 32, 1).exponent == 5
        assert mmu.allocate_object(0, 33, 1).exponent == 6

    def test_free(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        mmu.free_object(0, address)
        with pytest.raises(SegmentFault):
            mmu.read(0, address)

    def test_unknown_team(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        with pytest.raises(SegmentFault):
            mmu.read(5, address)

    def test_bounds_checked(self, mmu):
        address = mmu.allocate_object(0, 3, 1)   # exponent 2, span 4
        with pytest.raises(BoundsTrap):
            mmu.read(0, address.step(3))         # length is 3


class TestTranslation:
    def test_atlb_warms(self, mmu):
        address = mmu.allocate_object(0, 8, 1)
        first = mmu.translate(0, address)
        second = mmu.translate(0, address)
        assert first.atlb_hit is False
        assert second.atlb_hit is True
        assert first.absolute == second.absolute

    def test_absolute_is_base_plus_offset(self, mmu):
        address = mmu.allocate_object(0, 8, 1)
        base = mmu.translate(0, address).absolute
        assert mmu.translate(0, address.step(5)).absolute == base + 5

    def test_alignment_no_carry(self, mmu):
        # Segment bases are multiples of the block size, so base+offset
        # never carries out of the offset field (no adder needed).
        for size in (1, 5, 17, 200):
            address = mmu.allocate_object(0, size, 1)
            base = mmu.translate(0, address).absolute
            assert base % address.span == 0


class TestGrowAndAlias:
    def test_grow_within_span(self, mmu):
        address = mmu.allocate_object(0, 3, 1)
        grown = mmu.grow_object(0, address, 4)
        assert grown == address
        mmu.write(0, address.step(3), Word.small_integer(1))

    def test_grow_out_of_span_returns_new_name(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        mmu.write(0, address.step(1), Word.small_integer(77))
        grown = mmu.grow_object(0, address, 100)
        assert grown.exponent > address.exponent
        # Contents survive the move.
        assert mmu.read(0, grown.step(1)).value == 77

    def test_old_name_valid_within_old_bounds(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        mmu.write(0, address.step(2), Word.small_integer(5))
        mmu.grow_object(0, address, 100)
        # "Accesses to the object through the old segment number are
        # allowed as long as they do not exceed the bounds set by the
        # old exponent."
        assert mmu.read(0, address.step(2)).value == 5

    def test_old_and_new_share_storage(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        grown = mmu.grow_object(0, address, 64)
        mmu.write(0, grown.step(1), Word.small_integer(9))
        assert mmu.read(0, address.step(1)).value == 9

    def test_alias_forwarding_via_read(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        grown = mmu.grow_object(0, address, 64)
        mmu.write(0, grown.step(40), Word.small_integer(3))
        # Reading beyond the old descriptor's clipped length through the
        # old name traps; MMU.read retries through the forward... but
        # offsets beyond the old *span* are not even encodable in the
        # old name, so in-span-but-beyond-length is the trap window.
        table = mmu.team_table(0)
        descriptor = table.descriptor_for(address)
        assert descriptor.forward == grown
        assert descriptor.length <= address.span

    def test_forward_of(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        assert mmu.forward_of(0, address) is None
        grown = mmu.grow_object(0, address, 64)
        assert mmu.forward_of(0, address) == grown

    def test_grow_through_stale_pointer_chases_forward(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        first = mmu.grow_object(0, address, 64)
        second = mmu.grow_object(0, address, 200)
        assert second.exponent == 8
        assert mmu.forward_of(0, first) == second


class TestAliasTrapWindow:
    def test_stale_access_beyond_clipped_length_traps(self, mmu):
        # Allocate with length 2 in a span-4 segment, grow to 64: the
        # old descriptor keeps length min(64, 4) = 4... to create the
        # trap window the old length must be < old span.  Use length 2:
        address = mmu.allocate_object(0, 2, 1)   # exponent 1, span 2
        grown = mmu.grow_object(0, address, 64)
        # old name now forwards; any out-of-bounds offset traps.  The
        # old span is 2, so offset 1 is fine but nothing beyond is
        # encodable; emulate the trap by shrinking the clip:
        table = mmu.team_table(0)
        descriptor = table.descriptor_for(address)
        descriptor.length = 1
        with pytest.raises(AliasTrap) as excinfo:
            mmu.translate(0, address.step(1))
        assert excinfo.value.new_address is not None
        # The handler path (read) retries transparently:
        mmu.write(0, grown.step(1), Word.small_integer(123))
        assert mmu.read(0, address.step(1)).value == 123
        assert mmu.alias_traps_taken >= 1


class TestCapabilities:
    def test_share_read_only(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        mmu.write(0, address, Word.small_integer(1))
        shared = mmu.share_object(0, address, 7, write=False)
        assert mmu.read(7, shared).value == 1
        with pytest.raises(ProtectionTrap):
            mmu.write(7, shared, Word.small_integer(2))

    def test_shared_storage_is_common(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        shared = mmu.share_object(0, address, 7)
        mmu.write(7, shared.step(2), Word.small_integer(42))
        assert mmu.read(0, address.step(2)).value == 42

    def test_no_read_capability(self, mmu):
        address = mmu.allocate_object(0, 4, 1)
        shared = mmu.share_object(0, address, 7, read=False, write=True)
        with pytest.raises(ProtectionTrap):
            mmu.read(7, shared)


class TestHierarchyIntegration:
    def test_accesses_flow_through_hierarchy(self):
        mmu = MMU(address_format(36), arena_words=1 << 16,
                  hierarchy=default_hierarchy())
        address = mmu.allocate_object(0, 16, 1)
        for i in range(16):
            mmu.write(0, address.step(i), Word.small_integer(i))
        for i in range(16):
            assert mmu.read(0, address.step(i)).value == i
        top = mmu.hierarchy.devices[0].stats
        assert top.accesses == 32
        assert top.hits > 0


class TestPropertyRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 64),
                              st.integers(0, 100)),
                    min_size=1, max_size=20))
    def test_many_objects_are_isolated(self, specs):
        mmu = MMU(address_format(36), arena_words=1 << 18)
        objects = []
        for size, value in specs:
            address = mmu.allocate_object(0, size, 1)
            mmu.write(0, address, Word.small_integer(value))
            objects.append((address, value))
        for address, value in objects:
            assert mmu.read(0, address).value == value
